"""Smoke tests: every script in ``examples/`` imports and runs.

Each example's ``main()`` accepts scale parameters (defaulting to the
showcase scale documented in its header) so the suite can execute the real
code path in a couple of seconds.  A broken example is a documentation bug:
these scripts are the first thing the README points new users at.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: Tiny-scale keyword arguments per example (must all be valid ``main`` params).
TINY_PARAMS = {
    "quickstart": {"query_count": 8, "object_count": 300},
    "city_courier_comparison": {"query_count": 8, "object_count": 300,
                                "sweep_query_count": 6},
    "fleet_rush_hour": {"query_count": 3, "object_count": 300,
                        "pedestrians": 2, "vehicles": 1, "hotspot": 1},
    "adaptive_knn_ramp": {"query_count": 20, "window": 5},
    "joey_motel_search": {"motel_count": 300},
}


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_is_covered():
    on_disk = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(TINY_PARAMS), (
        "examples/ and TINY_PARAMS disagree; add tiny parameters for new "
        f"examples: {sorted(on_disk.symmetric_difference(TINY_PARAMS))}")


@pytest.mark.parametrize("name", sorted(TINY_PARAMS))
def test_example_runs_at_tiny_scale(name, capsys):
    module = _load_example(name)
    assert module.__doc__, f"examples/{name}.py lacks a header docstring"
    module.main(**TINY_PARAMS[name])
    output = capsys.readouterr().out
    assert output.strip(), f"examples/{name}.py printed nothing"


@pytest.mark.parametrize("name", sorted(TINY_PARAMS))
def test_example_headers_reference_current_interfaces(name):
    """Headers must not reference CLI flags or symbols that no longer exist."""
    text = (EXAMPLES_DIR / f"{name}.py").read_text(encoding="utf-8")
    assert f"python examples/{name}.py" in text, (
        f"examples/{name}.py header lost its run instructions")
    for stale in ("--num-queries", "--n-objects", "repro-spatial-cache ",
                  "run_simulation(", "repro sim "):
        assert stale not in text, (
            f"examples/{name}.py references the retired interface {stale!r}")
