"""STM01's runtime companion: audited ``state_dict`` pairs round-trip exactly.

The STM01 rule proves *coverage* statically; these tests prove the audited
snapshot pairs actually reproduce the content digest (or the full state
dict) through ``from_state_dict``/``load_state_dict``/``restore_state`` for
the three audited classes: :class:`ProactiveCache`,
:class:`AdaptiveDepthController` and :class:`ProactiveSession`.
"""

from __future__ import annotations

import hashlib
import json
import random

from repro.core.adaptive import AdaptiveDepthController
from repro.core.cache import ProactiveCache
from repro.core.items import CachedIndexNode, CachedObject, CacheEntry
from repro.core.replacement import make_policy
from repro.core.supporting_index import SupportingIndexPolicy
from repro.geometry import Rect
from repro.rtree import SizeModel
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_environment
from repro.sim.sessions import ProactiveSession


def _digest(state: dict) -> str:
    canonical = json.dumps(state, sort_keys=False, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _grown_cache(seed: int = 13) -> ProactiveCache:
    rng = random.Random(seed)
    cache = ProactiveCache(capacity_bytes=30_000, size_model=SizeModel(),
                           replacement_policy=make_policy("GRD3"))
    node_ids = []
    for step in range(40):
        cache.tick()
        node_id = step + 1
        elements = {"0": CacheEntry(mbr=Rect(0.1, 0.1, 0.2, 0.2), code="0",
                                    child_id=None, object_id=None)}
        parent = rng.choice(node_ids) if node_ids and rng.random() < 0.5 else None
        if cache.insert_node_snapshot(
                CachedIndexNode(node_id=node_id, level=rng.randint(0, 2),
                                elements=elements), parent):
            node_ids.append(node_id)
        if node_ids and rng.random() < 0.6:
            x, y = rng.random() * 0.9, rng.random() * 0.9
            cache.insert_object(
                CachedObject(object_id=1000 + step, mbr=Rect(x, y, x + 0.02, y + 0.02),
                             size_bytes=rng.randint(200, 900)),
                rng.choice(node_ids))
    return cache


def test_proactive_cache_digest_roundtrips():
    cache = _grown_cache()
    restored = ProactiveCache.from_state_dict(cache.state_dict(),
                                              size_model=cache.size_model)
    assert restored.content_digest() == cache.content_digest()
    # And the round trip is stable: snapshot-of-restore == snapshot.
    assert restored.state_dict() == cache.state_dict()


def test_adaptive_controller_state_roundtrips():
    policy = SupportingIndexPolicy.adaptive(initial_depth=2)
    controller = AdaptiveDepthController(policy=policy, sensitivity=0.3,
                                         report_period=5)
    rng = random.Random(3)
    for _ in range(37):
        controller.record_query(cached_result_bytes=rng.uniform(0.0, 5000.0),
                                saved_result_bytes=rng.uniform(0.0, 4000.0))
    twin_policy = SupportingIndexPolicy.adaptive(initial_depth=2)
    twin = AdaptiveDepthController(policy=twin_policy, sensitivity=0.3,
                                  report_period=5)
    twin.load_state_dict(controller.state_dict())
    assert _digest(twin.state_dict()) == _digest(controller.state_dict())
    assert twin.depth == controller.depth


def test_proactive_session_digest_roundtrips():
    config = SimulationConfig.tiny(query_count=20, object_count=300)
    environment = build_environment(config)
    session = ProactiveSession(environment.tree, config)
    for record in environment.trace.records[:12]:
        session.process(record)
    snapshot = session.state_dict()

    twin = ProactiveSession(environment.tree, config)
    twin.restore_state(snapshot)
    assert twin.cache.content_digest() == session.cache.content_digest()
    assert _digest(twin.state_dict()) == _digest(snapshot)

    # The restored session keeps producing identical behaviour.
    for record in environment.trace.records[12:16]:
        a = session.process(record)
        b = twin.process(record)
        assert a.downlink_bytes == b.downlink_bytes
    assert twin.cache.content_digest() == session.cache.content_digest()
