"""The lint runner (path walking, JSON document, syntax errors) and the
``repro lint`` CLI surface (exit codes, rule selection, output formats)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    DEFAULT_CONFIG,
    JSON_SCHEMA_VERSION,
    SYNTAX_ERROR_RULE,
    Finding,
    lint_paths,
    lint_source,
    package_relative,
    render_json,
    render_text,
    rule_catalogue,
    sort_findings,
)
from repro.cli import main


# --------------------------------------------------------------------------- #
# findings plumbing
# --------------------------------------------------------------------------- #
def test_findings_sort_deterministically():
    findings = [
        Finding(rule="DET02", path="b.py", line=3, col=1, message="m"),
        Finding(rule="DET01", path="b.py", line=3, col=1, message="m"),
        Finding(rule="DET02", path="a.py", line=9, col=0, message="m"),
        Finding(rule="DET02", path="b.py", line=1, col=0, message="m"),
    ]
    ordered = sort_findings(findings)
    assert [(f.path, f.line, f.rule) for f in ordered] == [
        ("a.py", 9, "DET02"), ("b.py", 1, "DET02"),
        ("b.py", 3, "DET01"), ("b.py", 3, "DET02")]


def test_finding_render_is_gcc_style():
    finding = Finding(rule="DET01", path="src/x.py", line=4, col=2,
                      message="call to the global RNG")
    assert finding.render() == "src/x.py:4:2: DET01 call to the global RNG"


def test_package_relative_strips_checkout_prefix():
    assert package_relative("/work/repo/src/repro/core/cache.py") == \
        "repro/core/cache.py"
    assert package_relative("tests/analysis/fixture.py") == \
        "tests/analysis/fixture.py"


# --------------------------------------------------------------------------- #
# runner behaviour
# --------------------------------------------------------------------------- #
def test_syntax_error_becomes_syn01_finding():
    findings = lint_source("src/repro/sim/x.py", "def broken(:\n")
    assert [finding.rule for finding in findings] == [SYNTAX_ERROR_RULE]


def test_lint_paths_walks_directories_deterministically(tmp_path):
    package = tmp_path / "repro" / "sim"
    package.mkdir(parents=True)
    (package / "b.py").write_text("import time\nv = time.time()\n")
    (package / "a.py").write_text("value = 1\n")
    (package / "skip.txt").write_text("not python\n")
    findings, checked = lint_paths([str(tmp_path)])
    assert checked == 2
    assert [finding.rule for finding in findings] == ["DET02", "OBS01"]
    assert findings[0].path.endswith("b.py")


def test_rule_catalogue_lists_every_project_rule():
    rules = {rule for rule, _ in rule_catalogue()}
    assert rules == {"DET01", "DET02", "DET03", "DET04", "DUR01",
                     "FLT01", "OBS01", "STM01", "SLT01", "PRT01", "TYP01"}
    assert rules == set(DEFAULT_CONFIG.rules())


# --------------------------------------------------------------------------- #
# report formats
# --------------------------------------------------------------------------- #
def test_render_text_clean_and_dirty():
    assert "no findings" in render_text([], 3)
    finding = Finding(rule="DET01", path="x.py", line=1, col=0, message="m")
    report = render_text([finding], 3)
    assert "x.py:1:0: DET01 m" in report
    assert "1 finding(s) in 3 file(s)" in report


def test_json_document_schema():
    finding = Finding(rule="DET02", path="x.py", line=2, col=4,
                      message="wall-clock read")
    document = json.loads(render_json([finding], 5, rules=["DET02", "DET01"]))
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["tool"] == "repro lint"
    assert document["rules"] == ["DET01", "DET02"]
    assert document["checked_files"] == 5
    assert document["counts"] == {"DET02": 1}
    assert document["findings"] == [{
        "rule": "DET02", "path": "x.py", "line": 2, "col": 4,
        "message": "wall-clock read"}]


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
def test_cli_clean_run_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text('"""Clean module."""\nvalue = 1\n')
    assert main(["lint", str(tmp_path)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_findings_exit_nonzero(tmp_path, capsys):
    (tmp_path / "bad.py").write_text("import time\nv = time.time()\n")
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", str(tmp_path)])
    assert excinfo.value.code == 1
    assert "DET02" in capsys.readouterr().out


def test_cli_rules_subset(tmp_path):
    (tmp_path / "bad.py").write_text("import time\nv = time.time()\n")
    # The only finding is DET02; restricting to DET01 yields a clean run.
    assert main(["lint", "--rules", "DET01", str(tmp_path)]) == 0


def test_cli_unknown_rule_is_an_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--rules", "NOPE99", str(tmp_path)])
    assert "unknown rule" in str(excinfo.value)


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "bad.py").write_text("import time\nv = time.time()\n")
    with pytest.raises(SystemExit):
        main(["lint", "--format", "json", str(tmp_path)])
    document = json.loads(capsys.readouterr().out)
    assert document["counts"] == {"DET02": 1}


def test_cli_output_file_written_even_on_clean_run(tmp_path, capsys):
    (tmp_path / "ok.py").write_text('"""Clean module."""\nvalue = 1\n')
    report = tmp_path / "findings.json"
    assert main(["lint", "--output", str(report), str(tmp_path)]) == 0
    capsys.readouterr()
    document = json.loads(report.read_text())
    assert document["findings"] == []
    assert document["checked_files"] == 1


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule in ("DET01", "DET02", "DET03", "DET04",
                 "FLT01", "STM01", "SLT01", "PRT01", "TYP01"):
        assert rule in output
