"""Per-rule checker tests: every rule fires on a violating fixture and stays
silent on the compliant twin.

Fixtures are inline sources linted through :func:`repro.analysis.lint_source`
with fake ``src/repro/...`` paths, so the path-scoped rules see the same
package-relative paths they would in the real tree.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_source


def rules_at(path: str, source: str, only=()):
    """The distinct rule ids found in ``source`` linted as ``path``."""
    return sorted({finding.rule for finding in
                   lint_source(path, source, rules=only)})


# --------------------------------------------------------------------------- #
# DET01 — unseeded global RNG
# --------------------------------------------------------------------------- #
def test_det01_fires_on_global_random_call():
    source = "import random\nvalue = random.random()\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET01"]) == ["DET01"]


def test_det01_fires_on_from_import_alias():
    source = "from random import choice as pick\nitem = pick([1, 2])\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET01"]) == ["DET01"]


def test_det01_fires_on_numpy_global_rng():
    source = "import numpy\nvalue = numpy.random.rand(3)\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET01"]) == ["DET01"]


def test_det01_silent_on_seeded_generator():
    source = ("import random\n"
              "rng = random.Random(7)\n"
              "value = rng.random()\n")
    assert rules_at("src/repro/sim/x.py", source, ["DET01"]) == []


def test_det01_silent_on_numpy_default_rng():
    source = ("import numpy\n"
              "rng = numpy.random.default_rng(7)\n"
              "value = rng.random()\n")
    assert rules_at("src/repro/sim/x.py", source, ["DET01"]) == []


# --------------------------------------------------------------------------- #
# DET02 — wall-clock reads
# --------------------------------------------------------------------------- #
def test_det02_fires_on_time_time():
    source = "import time\nstamp = time.time()\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET02"]) == ["DET02"]


def test_det02_fires_on_aliased_perf_counter():
    source = "from time import perf_counter as tick\nstamp = tick()\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET02"]) == ["DET02"]


def test_det02_fires_on_datetime_now():
    source = "import datetime\nstamp = datetime.datetime.now()\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET02"]) == ["DET02"]


def test_det02_out_of_scope_in_perf_package():
    source = "import time\nstamp = time.time()\n"
    assert rules_at("src/repro/perf/x.py", source, ["DET02"]) == []


def test_det02_out_of_scope_in_cli():
    source = "import time\nstamp = time.time()\n"
    assert rules_at("src/repro/cli.py", source, ["DET02"]) == []


def test_det02_silent_on_simulated_clock():
    source = "def advance(clock: float, dt: float) -> float:\n    return clock + dt\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET02"]) == []


# --------------------------------------------------------------------------- #
# DET03 — set iteration order
# --------------------------------------------------------------------------- #
def test_det03_fires_on_for_over_set_literal():
    source = "for item in {3, 1, 2}:\n    print(item)\n"
    assert rules_at("src/repro/core/x.py", source, ["DET03"]) == ["DET03"]


def test_det03_fires_on_list_of_set_call():
    source = "items = list(set([3, 1, 2]))\n"
    assert rules_at("src/repro/core/x.py", source, ["DET03"]) == ["DET03"]


def test_det03_fires_on_comprehension_over_set_union():
    source = "out = [x for x in {1} | {2}]\n"
    assert rules_at("src/repro/updates/x.py", source, ["DET03"]) == ["DET03"]


def test_det03_silent_when_sorted():
    source = "for item in sorted({3, 1, 2}):\n    print(item)\n"
    assert rules_at("src/repro/core/x.py", source, ["DET03"]) == []


def test_det03_out_of_scope_outside_decision_packages():
    source = "for item in {3, 1, 2}:\n    print(item)\n"
    assert rules_at("src/repro/datasets/x.py", source, ["DET03"]) == []


# --------------------------------------------------------------------------- #
# DET04 — id()/hash() ordering keys
# --------------------------------------------------------------------------- #
def test_det04_fires_on_key_id():
    source = "out = sorted(items, key=id)\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET04"]) == ["DET04"]


def test_det04_fires_on_lambda_hash_key():
    source = "best = min(items, key=lambda item: (item.rank, hash(item)))\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET04"]) == ["DET04"]


def test_det04_fires_on_sort_method():
    source = "items.sort(key=lambda item: id(item))\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET04"]) == ["DET04"]


def test_det04_silent_on_domain_key():
    source = "out = sorted(items, key=lambda item: item.object_id)\n"
    assert rules_at("src/repro/sim/x.py", source, ["DET04"]) == []


# --------------------------------------------------------------------------- #
# FLT01 — exact float equality
# --------------------------------------------------------------------------- #
def test_flt01_fires_on_float_literal_equality():
    source = "flag = area == 0.0\n"
    assert rules_at("src/repro/sim/x.py", source, ["FLT01"]) == ["FLT01"]


def test_flt01_fires_on_division_inequality():
    source = "flag = ratio != total / count\n"
    assert rules_at("src/repro/sim/x.py", source, ["FLT01"]) == ["FLT01"]


def test_flt01_silent_on_integer_equality():
    source = "flag = count == 0\n"
    assert rules_at("src/repro/sim/x.py", source, ["FLT01"]) == []


def test_flt01_silent_on_epsilon_comparison():
    source = "flag = abs(area - expected) <= 1e-9\n"
    assert rules_at("src/repro/sim/x.py", source, ["FLT01"]) == []


# --------------------------------------------------------------------------- #
# STM01 — state_dict coverage
# --------------------------------------------------------------------------- #
_STM01_VIOLATION = '''
class Tracker:
    __slots__ = ("clock", "hits", "window")

    def state_dict(self):
        return {"clock": self.clock, "hits": self.hits}
'''

_STM01_COMPLIANT = '''
class Tracker:
    __slots__ = ("clock", "hits", "window")

    def state_dict(self):
        return {"clock": self.clock, "hits": self.hits,
                "window": list(self.window)}
'''

_STM01_STUB = '''
class Tracker:
    __slots__ = ("clock", "hits")

    def state_dict(self):
        raise NotImplementedError("no snapshots")
'''


def test_stm01_fires_on_missing_field():
    findings = lint_source("src/repro/sim/x.py", _STM01_VIOLATION,
                           rules=["STM01"])
    assert [f.rule for f in findings] == ["STM01"]
    assert "window" in findings[0].message


def test_stm01_silent_when_all_fields_captured():
    assert rules_at("src/repro/sim/x.py", _STM01_COMPLIANT, ["STM01"]) == []


def test_stm01_silent_on_raising_stub():
    assert rules_at("src/repro/sim/x.py", _STM01_STUB, ["STM01"]) == []


def test_stm01_reads_dataclass_fields():
    source = '''
from dataclasses import dataclass

@dataclass
class Counter:
    ticks: int
    drops: int

    def state_dict(self):
        return {"ticks": self.ticks}
'''
    findings = lint_source("src/repro/sim/x.py", source, rules=["STM01"])
    assert [f.rule for f in findings] == ["STM01"]
    assert "drops" in findings[0].message


def test_stm01_private_field_matches_public_key():
    source = '''
class Window:
    __slots__ = ("_entries",)

    def state_dict(self):
        return {"entries": list(self._entries)}
'''
    assert rules_at("src/repro/sim/x.py", source, ["STM01"]) == []


# --------------------------------------------------------------------------- #
# SLT01 — hot-path dataclass slots
# --------------------------------------------------------------------------- #
_SLT01_VIOLATION = '''
from dataclasses import dataclass

@dataclass
class Cost:
    bytes_down: int = 0
'''

_SLT01_COMPLIANT = '''
from dataclasses import dataclass

from repro._compat import DATACLASS_SLOTS

@dataclass(**DATACLASS_SLOTS)
class Cost:
    bytes_down: int = 0
'''


def test_slt01_fires_in_hot_package():
    assert rules_at("src/repro/core/x.py", _SLT01_VIOLATION,
                    ["SLT01"]) == ["SLT01"]


def test_slt01_silent_with_dataclass_slots():
    assert rules_at("src/repro/core/x.py", _SLT01_COMPLIANT, ["SLT01"]) == []


def test_slt01_silent_with_literal_slots_kwarg():
    source = ("from dataclasses import dataclass\n"
              "@dataclass(slots=True)\n"
              "class Cost:\n"
              "    bytes_down: int = 0\n")
    assert rules_at("src/repro/geometry/x.py", source, ["SLT01"]) == []


def test_slt01_out_of_scope_outside_hot_packages():
    assert rules_at("src/repro/sim/x.py", _SLT01_VIOLATION, ["SLT01"]) == []


# --------------------------------------------------------------------------- #
# PRT01 — protocol surfaces
# --------------------------------------------------------------------------- #
_PRT01_VIOLATION = '''
from repro.storage.backend import StorageBackend

class HalfBackend(StorageBackend):
    def allocate(self, level):
        return None

    def get(self, node_id):
        return None
'''

_PRT01_COMPLIANT = '''
from repro.storage.backend import StorageBackend

class FullBackend(StorageBackend):
    def __init__(self):
        self.reads = 0
        self.writes = 0

    def allocate(self, level):
        return None

    def get(self, node_id):
        return None

    def peek(self, node_id):
        return None

    def free(self, node_id):
        return None

    def node_ids(self):
        return []

    def __contains__(self, node_id):
        return False

    def __len__(self):
        return 0
'''


def test_prt01_fires_on_partial_backend():
    findings = lint_source("src/repro/sim/x.py", _PRT01_VIOLATION,
                           rules=["PRT01"])
    assert [f.rule for f in findings] == ["PRT01"]
    assert "free" in findings[0].message


def test_prt01_silent_on_full_backend():
    assert rules_at("src/repro/sim/x.py", _PRT01_COMPLIANT, ["PRT01"]) == []


def test_prt01_checks_duck_typed_router():
    source = '''
class ShardRouter:
    def execute(self, query):
        return None
'''
    findings = lint_source("src/repro/sim/x.py", source, rules=["PRT01"])
    assert [f.rule for f in findings] == ["PRT01"]
    assert "root_mbr" in findings[0].message


def test_prt01_skips_the_defining_class():
    source = '''
class StorageBackend:
    def allocate(self, level):
        return None
'''
    assert rules_at("src/repro/sim/x.py", source, ["PRT01"]) == []


# --------------------------------------------------------------------------- #
# TYP01 — annotations in strict packages
# --------------------------------------------------------------------------- #
def test_typ01_fires_on_unannotated_function():
    source = "def scale(value):\n    return value * 2\n"
    findings = lint_source("src/repro/rtree/x.py", source, rules=["TYP01"])
    assert {f.rule for f in findings} == {"TYP01"}
    messages = " ".join(f.message for f in findings)
    assert "value" in messages and "return" in messages


def test_typ01_silent_on_annotated_function():
    source = "def scale(value: float) -> float:\n    return value * 2\n"
    assert rules_at("src/repro/rtree/x.py", source, ["TYP01"]) == []


def test_typ01_ignores_self_and_cls():
    source = ('class Box:\n'
              '    def area(self) -> float:\n'
              '        return 1.0\n'
              '    @classmethod\n'
              '    def unit(cls) -> "Box":\n'
              '        return cls()\n')
    assert rules_at("src/repro/rtree/x.py", source, ["TYP01"]) == []


def test_typ01_out_of_scope_outside_strict_packages():
    source = "def scale(value):\n    return value * 2\n"
    assert rules_at("src/repro/sim/x.py", source, ["TYP01"]) == []


# --------------------------------------------------------------------------- #
# DUR01 — raw writable open() on a durable path
# --------------------------------------------------------------------------- #
def test_dur01_fires_on_writable_open_in_storage():
    source = 'with open("out.bin", "wb") as f:\n    f.write(b"x")\n'
    assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == ["DUR01"]


def test_dur01_fires_on_append_and_update_modes():
    for mode in ("ab", "r+b", "w", "a", "x", "r+"):
        source = f'handle = open("out.bin", "{mode}")\n'
        assert rules_at("src/repro/storage/x.py", source,
                        ["DUR01"]) == ["DUR01"], mode


def test_dur01_fires_on_keyword_mode_and_io_open():
    source = 'handle = open("out.bin", mode="wb")\n'
    assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == ["DUR01"]
    source = 'import io\nhandle = io.open("out.bin", "wb")\n'
    assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == ["DUR01"]
    source = 'import os\nhandle = os.fdopen(3, "wb")\n'
    assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == ["DUR01"]


def test_dur01_fires_on_computed_mode():
    source = 'handle = open("out.bin", mode_variable)\n'
    assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == ["DUR01"]


def test_dur01_silent_on_read_modes():
    for source in ('handle = open("in.bin")\n',
                   'handle = open("in.bin", "rb")\n',
                   'handle = open("in.txt", "r", encoding="utf-8")\n'):
        assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == []


def test_dur01_silent_on_local_shadowing_open():
    source = ('def open(path, mode):\n'
              '    return None\n')
    # A def named open is not the builtin; only calls are checked anyway.
    assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == []


def test_dur01_scope_covers_restart_but_not_sim():
    source = 'handle = open("out.bin", "wb")\n'
    assert rules_at("src/repro/sim/restart.py", source,
                    ["DUR01"]) == ["DUR01"]
    assert rules_at("src/repro/sim/fleet.py", source, ["DUR01"]) == []
    assert rules_at("src/repro/core/x.py", source, ["DUR01"]) == []


def test_dur01_waivable_with_allow_comment():
    source = ('with open("t.bin", "wb") as f:  # repro: allow[DUR01]\n'
              '    f.write(b"x")\n')
    assert rules_at("src/repro/storage/x.py", source, ["DUR01"]) == []


# --------------------------------------------------------------------------- #
# OBS01 — wall-clock reads bypassing the obs funnel
# --------------------------------------------------------------------------- #
def test_obs01_fires_on_direct_perf_counter():
    source = "import time\nv = time.perf_counter()\n"
    assert rules_at("src/repro/sim/x.py", source, ["OBS01"]) == ["OBS01"]


def test_obs01_fires_in_perf_unlike_det02():
    # perf/ is DET02-exempt but NOT OBS01-exempt: the harness must use
    # the audited funnel too (or carry a site-level waiver).
    source = "import time\nv = time.perf_counter()\n"
    assert rules_at("src/repro/perf/x.py", source) == ["OBS01"]


def test_obs01_silent_on_the_funnel_itself():
    source = ("from repro.obs.instrument import perf_clock\n"
              "v = perf_clock()\n")
    assert rules_at("src/repro/sim/x.py", source, ["OBS01"]) == []


def test_obs01_silent_outside_instrumented_packages():
    source = "import time\nv = time.perf_counter()\n"
    assert rules_at("src/repro/experiments/x.py", source, ["OBS01"]) == []
    assert rules_at("src/repro/obs/x.py", source, ["OBS01"]) == []


def test_obs01_waivable_with_allow_comment():
    source = ("import time\n"
              "v = time.perf_counter()  "
              "# repro: allow[DET02, OBS01] timing the funnel itself\n")
    assert rules_at("src/repro/sim/x.py", source) == []


# --------------------------------------------------------------------------- #
# cross-rule isolation: each violating fixture trips exactly its own rule
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("path,source,rule", [
    ("src/repro/sim/a.py", "import random\nv = random.random()\n", "DET01"),
    # experiments/ is outside OBS01's scope, so the clock trips DET02 alone.
    ("src/repro/experiments/b.py", "import time\nv = time.time()\n", "DET02"),
    ("src/repro/core/c.py", "for x in {1, 2}:\n    print(x)\n", "DET03"),
    ("src/repro/sim/d.py", "v = sorted(items, key=id)\n", "DET04"),
    ("src/repro/sim/e.py", "v = x == 0.5\n", "FLT01"),
    ("src/repro/sim/f.py", _STM01_VIOLATION, "STM01"),
    ("src/repro/core/g.py", _SLT01_VIOLATION, "SLT01"),
    ("src/repro/sim/h.py", _PRT01_VIOLATION, "PRT01"),
    ("src/repro/rtree/i.py", "def f(x):\n    return x\n", "TYP01"),
    ("src/repro/storage/j.py", 'h = open("f.bin", "wb")\n', "DUR01"),
    # perf/ is DET02-excluded, so the raw clock trips OBS01 alone.
    ("src/repro/perf/k.py", "import time\nv = time.perf_counter()\n", "OBS01"),
])
def test_violating_fixture_trips_exactly_one_rule(path, source, rule):
    assert rules_at(path, source) == [rule]
