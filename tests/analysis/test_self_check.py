"""The tree lints itself: ``repro lint src`` must be clean at HEAD.

This is the acceptance criterion of the static-analysis PR and the guard
that keeps it true: any commit that introduces a finding (or leaves a
suppression comment with nothing to suppress — those surface as SUP01
findings) fails this test before it ever reaches the CI lint job.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import UNUSED_SUPPRESSION_RULE, lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_is_lint_clean():
    findings, checked = lint_paths([str(SRC)])
    rendered = "\n".join(finding.render() for finding in findings)
    assert checked > 100, "lint walked suspiciously few files"
    assert not findings, f"repro lint src is dirty at HEAD:\n{rendered}"


def test_source_tree_has_no_unused_suppressions():
    # Subsumed by the clean-tree assertion, but kept separate so a stale
    # waiver fails with a message naming the comment line to delete.
    findings, _ = lint_paths([str(SRC)])
    stale = [finding.render() for finding in findings
             if finding.rule == UNUSED_SUPPRESSION_RULE]
    assert not stale, "stale suppression comments:\n" + "\n".join(stale)
