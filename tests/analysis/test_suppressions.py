"""Suppression comments: placement, usage tracking and SUP01 reporting."""

from __future__ import annotations

from repro.analysis import UNUSED_SUPPRESSION_RULE, SuppressionSheet, lint_source


def test_trailing_suppression_waives_same_line_finding():
    source = "import time\nv = time.time()  # repro: allow[DET02] display only\n"
    assert lint_source("src/repro/sim/x.py", source, rules=["DET02"]) == []


def test_standalone_suppression_waives_next_line():
    source = ("import time\n"
              "# repro: allow[DET02] display only\n"
              "v = time.time()\n")
    assert lint_source("src/repro/sim/x.py", source, rules=["DET02"]) == []


def test_multiline_rationale_reaches_the_code_line():
    source = ("import time\n"
              "# repro: allow[DET02] a rationale long enough that it\n"
              "# wraps onto a second comment line before the code\n"
              "v = time.time()\n")
    assert lint_source("src/repro/sim/x.py", source, rules=["DET02"]) == []


def test_suppression_names_multiple_rules():
    source = ("import time\n"
              "v = sorted(xs, key=id) if time.time() else None"
              "  # repro: allow[DET02, DET04] fixture\n")
    assert lint_source("src/repro/sim/x.py", source,
                       rules=["DET02", "DET04"]) == []


def test_suppression_is_rule_specific():
    source = "import time\nv = time.time()  # repro: allow[DET04] wrong rule\n"
    findings = lint_source("src/repro/sim/x.py", source,
                           rules=["DET02", "DET04"])
    rules = [finding.rule for finding in findings]
    assert "DET02" in rules  # the real finding survives
    assert UNUSED_SUPPRESSION_RULE in rules  # and the stale waiver is flagged


def test_suppression_only_covers_its_own_line():
    source = ("import time\n"
              "a = time.time()  # repro: allow[DET02] here only\n"
              "b = time.time()\n")
    findings = lint_source("src/repro/sim/x.py", source, rules=["DET02"])
    assert [finding.line for finding in findings] == [3]


def test_unused_suppression_reported_as_sup01():
    source = "value = 1  # repro: allow[DET02] nothing to waive\n"
    findings = lint_source("src/repro/sim/x.py", source, rules=["DET02"])
    assert [finding.rule for finding in findings] == [UNUSED_SUPPRESSION_RULE]
    assert findings[0].line == 1


def test_unused_suppression_ignored_when_rule_not_enabled():
    # A DET02 waiver must not be called stale by a DET04-only run: the rule
    # it waives never executed.
    source = "import time\nv = time.time()  # repro: allow[DET02] accounting\n"
    assert lint_source("src/repro/sim/x.py", source, rules=["DET04"]) == []


def test_hash_inside_string_is_not_a_suppression():
    sheet = SuppressionSheet.from_source(
        'text = "# repro: allow[DET02] not a comment"\n')
    assert len(sheet) == 0


def test_sup01_itself_cannot_be_waived():
    sheet = SuppressionSheet.from_source(
        "value = 1  # repro: allow[SUP01] waiving the waiver\n")
    assert len(sheet) == 0


def test_rule_ids_are_case_insensitive():
    source = "import time\nv = time.time()  # repro: allow[det02] lower case\n"
    assert lint_source("src/repro/sim/x.py", source, rules=["DET02"]) == []
