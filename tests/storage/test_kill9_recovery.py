"""SIGKILL a real process mid-commit and recover its store.

The fault-injection matrix proves recovery for every synthetic crash
offset; this smoke test proves the same end-to-end with an actual
``kill -9`` — no atexit hooks, no flushed buffers, whatever byte the
kernel had landed is what recovery gets.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.rtree import SizeModel, assert_tree_valid, bulk_load_str
from repro.storage.paged import load_tree, save_tree, wal_summary
from repro.storage.wal import scan_wal, wal_path

from tests.conftest import make_records

CHECKPOINT_OBJECTS = 60
BATCH_SIZE = 3

# Prints "BATCH <n>" after each durably committed batch of BATCH_SIZE
# inserts (ids 10000, 10001, ...), then loops forever until killed.
_CHILD = textwrap.dedent("""
    import sys

    from repro.core.server import ServerQueryProcessor
    from repro.geometry import Rect
    from repro.storage.paged import load_tree
    from repro.updates import DatasetUpdater
    from repro.updates.stream import UpdateEvent

    tree = load_tree(sys.argv[1], writable=True)
    updater = DatasetUpdater(tree, ServerQueryProcessor(tree))
    # Fresh ids even when resuming a store a previous run already grew.
    base = max([oid for oid in tree.objects if oid >= 10000], default=9999) + 1
    index = 0
    while True:
        events = []
        for _ in range({batch_size}):
            x = (index * 37 % 100) / 100.0
            y = (index * 61 % 100) / 100.0
            events.append(UpdateEvent(
                index=index, arrival_time=float(index), kind="insert",
                object_id=base + index,
                mbr=Rect(x, y, min(1.0, x + 0.01), min(1.0, y + 0.01)),
                size_bytes=500 + index))
            index += 1
        updater.apply_batch(events)
        print("BATCH", index // {batch_size}, flush=True)
""").format(batch_size=BATCH_SIZE)


def test_kill9_mid_commit_recovers_to_last_committed_batch(tmp_path):
    records = make_records(CHECKPOINT_OBJECTS, seed=8)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=512))
    store = str(tmp_path / "victim.rpro")
    save_tree(tree, store)
    script = tmp_path / "writer_child.py"
    script.write_text(_CHILD)

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen([sys.executable, str(script), store],
                             stdout=subprocess.PIPE, text=True, env=env)
    try:
        acked = 0
        assert child.stdout is not None
        for line in child.stdout:
            if line.startswith("BATCH"):
                acked = int(line.split()[1])
            if acked >= 3:
                break
        # SIGKILL while the child is (very likely) inside a later commit.
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on failure
            child.kill()
            child.wait()
    assert acked >= 3

    # Durability: every acknowledged batch survived the kill.
    scan = scan_wal(wal_path(store))
    assert scan.tail_state in ("clean", "torn")
    committed = len(scan.records)
    assert committed >= acked

    recovered = load_tree(store, recover=True)
    try:
        # All inserts use fresh ids, so the object count is an exact oracle
        # for "recovered to the last committed batch, nothing more or less".
        assert len(recovered.objects) == \
            CHECKPOINT_OBJECTS + BATCH_SIZE * committed
        assert_tree_valid(recovered)
    finally:
        recovered.store.close()

    # Recovery truncated any torn tail: the store reopens cleanly and the
    # write path still works.
    summary = wal_summary(store)
    assert summary["tail_state"] == "clean"
    assert summary["records"] == committed
    reopened = load_tree(store, writable=True)
    reopened.store.close()


@pytest.mark.slow
def test_kill9_repeated_rounds(tmp_path):
    """Three kill → recover → keep-writing rounds against one store."""
    records = make_records(CHECKPOINT_OBJECTS, seed=9)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=512))
    store = str(tmp_path / "victim.rpro")
    save_tree(tree, store)
    script = tmp_path / "writer_child.py"
    script.write_text(_CHILD)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    total_committed = 0
    for _ in range(3):
        child = subprocess.Popen([sys.executable, str(script), store],
                                 stdout=subprocess.PIPE, text=True, env=env)
        try:
            acked = 0
            assert child.stdout is not None
            for line in child.stdout:
                if line.startswith("BATCH"):
                    acked += 1
                if acked >= 2:
                    break
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup on failure
                child.kill()
                child.wait()
        recovered = load_tree(store, recover=True)
        try:
            assert_tree_valid(recovered)
            survivors = len(recovered.objects) - CHECKPOINT_OBJECTS
            assert survivors % BATCH_SIZE == 0  # whole batches only
            assert survivors // BATCH_SIZE >= total_committed + acked
            total_committed = survivors // BATCH_SIZE
        finally:
            recovered.store.close()
