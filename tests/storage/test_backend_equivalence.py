"""Backend invariance: the file store must be indistinguishable from memory.

The contract of :mod:`repro.storage` is that swapping the in-memory page
store for the paged file backend changes *nothing* observable about query
processing: identical results, identical per-query visited-page counts,
identical byte accounting, identical eviction decisions — under every
replacement policy.  Only the physical I/O counters may differ.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import build_shared_state, build_tree, generate_trace
from repro.sim.sessions import make_session
from repro.storage import save_tree

CONFIG = SimulationConfig.tiny(query_count=30, object_count=600)

ALL_POLICIES = ("GRD1", "GRD2", "GRD3", "LRU", "MRU", "FAR")


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("equiv") / "server.rpro"
    save_tree(build_tree(CONFIG), str(path))
    return str(path)


def _replay(store_path, policy, model="APRO"):
    """Per-query deterministic observations plus store-level counters."""
    config = CONFIG.with_overrides(replacement_policy=policy)
    shared = build_shared_state(config, store_path=store_path)
    session = make_session(model, shared.tree, config, server=shared.server)
    per_query = []
    for record in generate_trace(config):
        reads_before = shared.tree.store.reads
        cost = session.process(record)
        per_query.append({
            "visited_pages": cost.server_page_reads,
            "logical_reads": shared.tree.store.reads - reads_before,
            "uplink": cost.uplink_bytes,
            "downlink": cost.downlink_bytes,
            "result_bytes": cost.result_bytes,
            "saved_bytes": cost.saved_bytes,
            "response_time": cost.response_time,
            "contacted": cost.contacted_server,
        })
    return per_query, shared.tree.store.reads, session


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_file_backend_matches_memory_under_policy(store_path, policy):
    memory_rows, memory_reads, memory_session = _replay(None, policy)
    file_rows, file_reads, file_session = _replay(store_path, policy)
    assert file_rows == memory_rows
    assert file_reads == memory_reads
    # The eviction decisions were identical too: same final cache, byte for
    # byte (items, metadata, orderings).
    assert (file_session.cache.content_digest()
            == memory_session.cache.content_digest())


@pytest.mark.parametrize("model", ("FPRO", "CPRO"))
def test_file_backend_matches_memory_other_index_forms(store_path, model):
    memory_rows, memory_reads, _ = _replay(None, "GRD3", model=model)
    file_rows, file_reads, _ = _replay(store_path, "GRD3", model=model)
    assert file_rows == memory_rows
    assert file_reads == memory_reads


def test_query_level_page_counts_are_nonzero(store_path):
    """Sanity: the comparison above is not vacuously over all-zero counts."""
    rows, total_reads, _ = _replay(store_path, "GRD3")
    assert total_reads > 0
    assert any(row["visited_pages"] > 0 for row in rows)


def test_tiny_buffer_changes_io_not_decisions(store_path):
    """A pathological 1-page buffer degrades I/O, never correctness."""
    from repro.storage import load_tree
    from repro.core.server import ServerQueryProcessor
    from repro.sim.runner import build_partition_trees

    config = CONFIG
    trace = generate_trace(config)

    def replay_with_buffer(buffer_pages):
        tree = load_tree(store_path, buffer_pages=buffer_pages)
        server = ServerQueryProcessor(
            tree, size_model=tree.size_model,
            partition_trees=build_partition_trees(tree.all_nodes()))
        session = make_session("APRO", tree, config, server=server)
        rows = [(session.process(record).server_page_reads) for record in trace]
        return rows, tree.store.reads, tree.store.io_stats()

    big_rows, big_reads, big_io = replay_with_buffer(256)
    tiny_rows, tiny_reads, tiny_io = replay_with_buffer(1)
    assert tiny_rows == big_rows
    assert tiny_reads == big_reads
    assert tiny_io["file_reads"] >= big_io["file_reads"]


def test_io_stats_exclude_startup_scans(store_path):
    """Counters measure query I/O: zero right after the state is built."""
    shared = build_shared_state(CONFIG, store_path=store_path)
    assert shared.tree.store.io_stats() == {"file_reads": 0, "file_writes": 0,
                                            "buffer_hits": 0}
    shared.tree.store.close()


def test_store_with_mismatched_meta_is_rejected(tmp_path):
    from repro.storage import StorageError
    path = tmp_path / "meta.rpro"
    save_tree(build_tree(CONFIG), str(path),
              meta={"dataset": CONFIG.dataset_name,
                    "object_count": CONFIG.object_count})
    # Matching config loads fine...
    build_shared_state(CONFIG, store_path=str(path)).tree.store.close()
    # ...a different object count is refused with a clear message.
    with pytest.raises(StorageError, match="object_count"):
        build_shared_state(CONFIG.with_overrides(object_count=999),
                           store_path=str(path))
    # Meta keys outside the known set are ignored.
    other = tmp_path / "free.rpro"
    save_tree(build_tree(CONFIG), str(other), meta={"note": "anything"})
    build_shared_state(CONFIG.with_overrides(object_count=999),
                       store_path=str(other)).tree.store.close()
