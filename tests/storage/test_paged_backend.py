"""Behavioural tests for the paged file backend itself."""

from __future__ import annotations

import pytest

from repro.rtree import SizeModel, bulk_load_str
from repro.rtree.tree import PageStore
from repro.storage import (
    MemoryBackend,
    PagedFileBackend,
    ReadOnlyStorageError,
    StorageBackend,
    StorageError,
    load_tree,
    save_tree,
)

from tests.conftest import make_records


@pytest.fixture()
def store_file(tmp_path):
    tree = bulk_load_str(make_records(200, seed=21),
                         size_model=SizeModel(page_bytes=256))
    path = tmp_path / "tree.rpro"
    save_tree(tree, str(path))
    return str(path), tree


def test_memory_backend_is_the_page_store():
    assert MemoryBackend is PageStore
    assert isinstance(PageStore(), StorageBackend)


def test_paged_backend_satisfies_the_contract(store_file):
    path, tree = store_file
    backend = PagedFileBackend(path)
    assert isinstance(backend, StorageBackend)
    assert len(backend) == len(tree.store)
    assert set(backend.node_ids()) == set(tree.store.node_ids())
    assert tree.root_id in backend
    assert 10**9 not in backend


def test_logical_read_counter_semantics(store_file):
    path, tree = store_file
    backend = PagedFileBackend(path)
    root_id = tree.root_id
    backend.get(root_id)
    backend.get(root_id)
    assert backend.reads == 2
    backend.peek(root_id)
    assert backend.reads == 2  # peek never counts a logical read


def test_lru_buffer_caps_decoded_pages(store_file):
    path, tree = store_file
    backend = PagedFileBackend(path, buffer_pages=2)
    ids = backend.node_ids()[:4]
    for node_id in ids:
        backend.get(node_id)
    assert backend.io_stats()["file_reads"] == 4
    # The two most recent stay buffered; re-reading them is free.
    backend.get(ids[-1])
    backend.get(ids[-2])
    assert backend.io_stats()["file_reads"] == 4
    assert backend.io_stats()["buffer_hits"] == 2
    # The first one was evicted: reading it again hits the file.
    backend.get(ids[0])
    assert backend.io_stats()["file_reads"] == 5


def test_zero_buffer_reads_the_file_every_time(store_file):
    path, tree = store_file
    backend = PagedFileBackend(path, buffer_pages=0)
    for _ in range(3):
        backend.get(tree.root_id)
    assert backend.io_stats() == {"file_reads": 3, "file_writes": 0,
                                  "buffer_hits": 0}


def test_backend_is_read_only(store_file):
    path, _ = store_file
    backend = PagedFileBackend(path)
    with pytest.raises(ReadOnlyStorageError):
        backend.allocate(level=0)
    with pytest.raises(ReadOnlyStorageError):
        backend.free(1)


def test_loaded_tree_rejects_mutation(store_file):
    path, _ = store_file
    loaded = load_tree(path)
    record = make_records(1, seed=99)[0]
    with pytest.raises(ReadOnlyStorageError):
        loaded.insert(ObjectRecordWithFreshId(record))
    with pytest.raises(ReadOnlyStorageError):
        loaded.delete(next(iter(loaded.objects)))


def ObjectRecordWithFreshId(record):
    """A copy of ``record`` with an id no store-backed tree contains."""
    from repro.rtree.entry import ObjectRecord
    return ObjectRecord(object_id=10**9, mbr=record.mbr,
                        size_bytes=record.size_bytes)


def test_closed_backend_raises(store_file):
    path, tree = store_file
    backend = PagedFileBackend(path, buffer_pages=0)
    backend.close()
    with pytest.raises(StorageError):
        backend.get(tree.root_id)
    backend.close()  # idempotent


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.rpro"
    path.write_bytes(b"definitely not a page store")
    with pytest.raises(StorageError):
        PagedFileBackend(str(path))


def test_buffer_pages_must_be_non_negative(store_file):
    path, _ = store_file
    with pytest.raises(ValueError):
        PagedFileBackend(path, buffer_pages=-1)


def test_rtree_rejects_populated_store_in_init(store_file):
    path, _ = store_file
    from repro.rtree import RTree
    with pytest.raises(ValueError):
        RTree(store=PagedFileBackend(path))
