"""Atomic whole-file writes and the snapshot error paths they protect."""

import os

import pytest

from repro.core.cache import ProactiveCache
from repro.rtree import SizeModel
from repro.storage import StorageError
from repro.storage.atomic import atomic_write_bytes, atomic_write_text
from repro.storage.snapshot import (
    dumps_state,
    load_cache_snapshot,
    load_state,
    save_cache_snapshot,
    save_state,
)


# --------------------------------------------------------------------------- #
# atomic replacement
# --------------------------------------------------------------------------- #
def test_atomic_write_creates_and_replaces(tmp_path):
    path = str(tmp_path / "artefact.bin")
    atomic_write_bytes(path, b"first version")
    with open(path, "rb") as handle:
        assert handle.read() == b"first version"
    atomic_write_text(path, "second version")
    with open(path, "rb") as handle:
        assert handle.read() == "second version".encode("utf-8")
    # No temp siblings survive a successful write.
    assert os.listdir(tmp_path) == ["artefact.bin"]


def test_atomic_write_failure_keeps_old_file_and_no_temp(tmp_path, monkeypatch):
    path = str(tmp_path / "artefact.bin")
    atomic_write_bytes(path, b"survivor")

    def exploding_fsync(fileno):
        raise OSError("disk on fire")

    monkeypatch.setattr("repro.storage.atomic.fsync_handle", exploding_fsync)
    with pytest.raises(OSError, match="disk on fire"):
        atomic_write_bytes(path, b"never lands")
    # The target still holds the previous complete content; the temp
    # sibling was cleaned up rather than left to confuse the next writer.
    with open(path, "rb") as handle:
        assert handle.read() == b"survivor"
    assert os.listdir(tmp_path) == ["artefact.bin"]


# --------------------------------------------------------------------------- #
# state snapshots
# --------------------------------------------------------------------------- #
def _state():
    return {"format": 1, "items": [3, 1, 2], "weights": {"b": 0.1, "a": 2.5}}


def test_state_roundtrip_is_byte_stable(tmp_path):
    path = str(tmp_path / "state.json")
    save_state(_state(), path)
    loaded = load_state(path)
    assert loaded == _state()
    # Order-preserving canonical JSON: save → load → save is byte-stable.
    assert list(loaded["weights"]) == ["b", "a"]
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.read()
    save_state(loaded, path)
    with open(path, "r", encoding="utf-8") as handle:
        assert handle.read() == first
    assert first == dumps_state(_state()) + "\n"


def test_truncated_snapshot_raises_storage_error(tmp_path):
    path = str(tmp_path / "state.json")
    save_state(_state(), path)
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
    with pytest.raises(StorageError, match="truncated or corrupt"):
        load_state(path)


def test_non_object_snapshot_raises_storage_error(tmp_path):
    path = str(tmp_path / "state.json")
    path_obj = tmp_path / "state.json"
    path_obj.write_text("[1, 2, 3]\n")
    with pytest.raises(StorageError, match="not a JSON object"):
        load_state(path)


def test_cache_snapshot_rejects_unknown_format(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = ProactiveCache(capacity_bytes=4096, size_model=SizeModel())
    save_cache_snapshot(cache, path)
    restored = load_cache_snapshot(path, size_model=SizeModel())
    assert restored.capacity_bytes == 4096

    state = load_state(path)
    state["format"] = 99
    save_state(state, path)
    with pytest.raises(StorageError, match="unsupported cache snapshot"):
        load_cache_snapshot(path, size_model=SizeModel())
