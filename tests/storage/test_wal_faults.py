"""Fault-injection tests: torn writes, bit rot, and the crash-point matrix."""

import os
import random

import pytest

from repro.core.server import ServerQueryProcessor
from repro.geometry import Rect
from repro.rtree import SizeModel, assert_tree_valid, bulk_load_str
from repro.storage import StorageError
from repro.storage.faults import (
    FaultyFile,
    InjectedCrash,
    assert_crash_point_recovery,
    corrupt_byte,
    crash_point_offsets,
    faulty_opener,
)
from repro.storage.paged import load_tree, save_tree
from repro.storage.wal import (
    HEADER_SIZE,
    WalRecord,
    WalWriter,
    repair_wal,
    scan_wal,
    wal_path,
)
from repro.updates import DatasetUpdater
from repro.updates.stream import UpdateEvent

from tests.conftest import make_records


# --------------------------------------------------------------------------- #
# FaultyFile unit behaviour
# --------------------------------------------------------------------------- #
def test_faulty_file_crashes_after_byte_budget(tmp_path):
    path = str(tmp_path / "budget.bin")
    handle = FaultyFile(open(path, "wb"), crash_after_bytes=10)
    assert handle.write(b"123456") == 6
    with pytest.raises(InjectedCrash):
        handle.write(b"789012345")  # would land bytes 7..15
    handle.close()
    # Exactly the budget landed on disk — the prefix a dead process leaves.
    assert os.path.getsize(path) == 10
    with open(path, "rb") as check:
        assert check.read() == b"1234567890"


def test_faulty_file_short_write_cuts_one_op(tmp_path):
    path = str(tmp_path / "short.bin")
    handle = FaultyFile(open(path, "wb"), short_write_at_op=(1, 2))
    handle.write(b"aaaa")
    with pytest.raises(InjectedCrash):
        handle.write(b"bbbb")
    handle.close()
    with open(path, "rb") as check:
        assert check.read() == b"aaaabb"


def test_faulty_file_garbles_in_flight_without_crashing(tmp_path):
    path = str(tmp_path / "garble.bin")
    handle = FaultyFile(open(path, "wb"), garble_at=(5, 0xFF))
    handle.write(b"0123")
    handle.write(b"4567")  # offset 5 is this write's second byte
    handle.close()
    with open(path, "rb") as check:
        data = check.read()
    assert data[:5] == b"01234"
    assert data[5] == ord("5") ^ 0xFF
    assert data[6:] == b"67"


def test_faulty_file_stays_dead_after_crash(tmp_path):
    path = str(tmp_path / "dead.bin")
    handle = FaultyFile(open(path, "wb"), crash_after_bytes=0)
    with pytest.raises(InjectedCrash):
        handle.write(b"x")
    for operation in (lambda: handle.write(b"y"), handle.flush,
                      handle.fileno, handle.tell):
        with pytest.raises(InjectedCrash):
            operation()
    handle.close()  # closing a dead handle is fine (the OS does it too)


# --------------------------------------------------------------------------- #
# WalWriter under injected crashes
# --------------------------------------------------------------------------- #
def _record(version, blob=b"payload-bytes"):
    return WalRecord(version=version, root_id=1, height=1, next_page_id=2,
                     pages=((1, blob),), objects=((version, blob),))


def test_crash_mid_append_leaves_recoverable_torn_tail(tmp_path):
    log = str(tmp_path / "log.wal")
    writer = WalWriter(log, store_crc=5)
    writer.append(_record(1))
    committed = os.path.getsize(log)
    writer.close()

    crasher = WalWriter(log, store_crc=5,
                        opener=faulty_opener(crash_after_bytes=7))
    with pytest.raises(InjectedCrash):
        crasher.append(_record(2))
    crasher.close()
    assert os.path.getsize(log) == committed + 7

    scan = scan_wal(log)
    assert scan.tail_state == "torn"
    assert len(scan.records) == 1
    repair_wal(log)
    assert os.path.getsize(log) == committed
    survivor = WalWriter(log, store_crc=5)
    survivor.append(_record(2))
    survivor.close()
    assert [r.version for r in scan_wal(log).records] == [1, 2]


def test_garbled_append_is_corrupt_not_torn(tmp_path):
    log = str(tmp_path / "log.wal")
    writer = WalWriter(log, store_crc=5,
                       opener=faulty_opener(garble_at=(HEADER_SIZE + 20, 0x40)))
    writer.append(_record(1))  # lands fully, but one payload byte is rotten
    writer.close()
    scan = scan_wal(log)
    assert scan.tail_state == "corrupt"
    assert "checksum" in scan.tail_error
    with pytest.raises(StorageError, match="force"):
        repair_wal(log)


# --------------------------------------------------------------------------- #
# crash-point matrix over a real durable store
# --------------------------------------------------------------------------- #
def _store_with_history(tmp_path, batches=4, batch_size=5):
    """A checkpoint + WAL of ``batches`` commits, with per-batch oracles."""
    records = make_records(90, seed=52)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=512))
    path = str(tmp_path / "store.rpro")
    save_tree(tree, path)
    live = load_tree(path, writable=True)
    updater = DatasetUpdater(live, ServerQueryProcessor(live))
    states = [dict(live.objects)]
    rng = random.Random(13)
    index = 0
    for _ in range(batches):
        events = []
        for _ in range(batch_size):
            kind = ("insert", "modify", "delete")[index % 3]
            object_id = 500 + index if kind == "insert" else rng.randrange(90)
            mbr = size = None
            if kind in ("insert", "modify"):
                x, y = rng.random(), rng.random()
                mbr = Rect(x, y, min(1.0, x + 0.01), min(1.0, y + 0.01))
                size = 600 + index
            events.append(UpdateEvent(index=index, arrival_time=float(index),
                                      kind=kind, object_id=object_id,
                                      mbr=mbr, size_bytes=size))
            index += 1
        updater.apply_batch(events)
        states.append(dict(live.objects))
    live.store.close()
    return path, states


def test_crash_point_matrix_sampled(tmp_path):
    path, states = _store_with_history(tmp_path)
    offsets = crash_point_offsets(path)
    boundaries = {0, HEADER_SIZE, offsets[-1]}
    boundaries.update(scan_wal(wal_path(path)).record_ends)
    # Every record boundary, its neighbours, and a stride sample between.
    sampled = sorted(boundary + delta for boundary in boundaries
                     for delta in (-1, 0, 1)
                     if boundary + delta in set(offsets))
    sampled += [offset for offset in offsets[::17] if offset not in sampled]
    work = tmp_path / "clones"
    work.mkdir()
    checked = assert_crash_point_recovery(path, states, str(work),
                                          offsets=sorted(set(sampled)))
    assert checked >= len(boundaries) * 2


@pytest.mark.slow
def test_crash_point_matrix_exhaustive(tmp_path):
    path, states = _store_with_history(tmp_path)
    work = tmp_path / "clones"
    work.mkdir()
    checked = assert_crash_point_recovery(path, states, str(work))
    log_size = os.path.getsize(wal_path(path))
    # [0] plus every byte length from the header to the full log.
    assert checked == log_size - HEADER_SIZE + 2


def test_matrix_harness_rejects_bad_oracle_counts(tmp_path):
    path, states = _store_with_history(tmp_path, batches=2)
    work = tmp_path / "clones"
    work.mkdir()
    with pytest.raises(ValueError, match="oracle states"):
        assert_crash_point_recovery(path, states[:-1], str(work))


def test_garbled_wal_refuses_silent_recovery(tmp_path):
    path, states = _store_with_history(tmp_path, batches=2)
    log = wal_path(path)
    corrupt_byte(log, scan_wal(log).record_ends[0] + 40)
    with pytest.raises(StorageError, match="corrupt"):
        load_tree(path, recover=True)
    # After a forced repair the first batch's state is recovered.
    repair_wal(log, force=True)
    tree = load_tree(path, recover=True)
    try:
        assert {k: (r.size_bytes, r.mbr) for k, r in tree.objects.items()} \
            == {k: (r.size_bytes, r.mbr) for k, r in states[1].items()}
        assert_tree_valid(tree)
    finally:
        tree.store.close()
