"""Tests for the write-ahead log: codec, writer, scanner, recovery, pack."""

import os
import random

import pytest

from repro.core.server import ServerQueryProcessor
from repro.geometry import Rect
from repro.rtree import SizeModel, assert_tree_valid, bulk_load_str
from repro.storage import StorageError
from repro.storage.paged import (
    PagedFileBackend,
    file_crc32,
    load_tree,
    pack,
    save_tree,
    wal_summary,
)
from repro.storage.wal import (
    COMMIT_MARKER,
    HEADER_SIZE,
    WalRecord,
    WalWriter,
    decode_record,
    encode_record,
    repair_wal,
    reset_wal,
    scan_wal,
    truncate_to,
    wal_header,
    wal_path,
)
from repro.updates import DatasetUpdater
from repro.updates.stream import UpdateEvent

from tests.conftest import make_records


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _sample_record(version=1, pages=None, objects=None):
    return WalRecord(version=version, root_id=7, height=2, next_page_id=41,
                     pages=pages if pages is not None else
                     ((3, b"page-three"), (9, None), (12, b"")),
                     objects=objects if objects is not None else
                     ((100, b"object-blob"), (100, None), (101, b"x" * 300)))


def _durable_store(tmp_path, count=120, page_bytes=256):
    """A checkpointed store reopened writable, with updater wiring."""
    records = make_records(count, seed=33)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=page_bytes))
    path = str(tmp_path / "store.rpro")
    save_tree(tree, path)
    live = load_tree(path, writable=True)
    server = ServerQueryProcessor(live)
    updater = DatasetUpdater(live, server)
    return path, live, updater


def _events(count, start_index=0, id_base=1000, seed=77):
    rng = random.Random(seed)
    events = []
    for offset in range(count):
        index = start_index + offset
        kind = ("insert", "delete", "modify")[offset % 3]
        if kind == "insert":
            object_id = id_base + offset
        else:
            object_id = rng.randrange(0, 120)
        mbr = size = None
        if kind in ("insert", "modify"):
            x, y = rng.random(), rng.random()
            mbr = Rect(x, y, min(1.0, x + 0.004), min(1.0, y + 0.004))
            size = 400 + offset
        events.append(UpdateEvent(index=index, arrival_time=float(index),
                                  kind=kind, object_id=object_id,
                                  mbr=mbr, size_bytes=size))
    return events


def _object_state(tree):
    return {object_id: (record.size_bytes, record.mbr)
            for object_id, record in tree.objects.items()}


# --------------------------------------------------------------------------- #
# record codec
# --------------------------------------------------------------------------- #
def test_record_roundtrip_preserves_everything():
    record = _sample_record()
    assert decode_record(encode_record(record)) == record


def test_record_roundtrip_handles_empty_and_order():
    empty = WalRecord(version=0, root_id=-1, height=0, next_page_id=0,
                      pages=(), objects=())
    assert decode_record(encode_record(empty)) == empty
    # Operational object order (drop then upsert of the same id) survives.
    record = _sample_record(objects=((5, None), (5, b"after"), (6, None)))
    assert decode_record(encode_record(record)).objects == \
        ((5, None), (5, b"after"), (6, None))


def test_decode_rejects_trailing_and_truncated_payloads():
    payload = encode_record(_sample_record())
    with pytest.raises(ValueError, match="trailing"):
        decode_record(payload + b"x")
    with pytest.raises(ValueError):
        decode_record(payload[:-1])


# --------------------------------------------------------------------------- #
# writer + scanner
# --------------------------------------------------------------------------- #
def test_writer_appends_scannable_records(tmp_path):
    log = str(tmp_path / "log.wal")
    writer = WalWriter(log, store_crc=123)
    first = _sample_record(version=1)
    second = _sample_record(version=2, pages=((1, b"p"),), objects=())
    writer.append(first)
    end = writer.append(second)
    writer.close()
    assert os.path.getsize(log) == end
    scan = scan_wal(log)
    assert scan.tail_state == "clean"
    assert scan.records == [first, second]
    assert scan.committed_version == 2
    assert scan.store_crc == 123
    assert scan.record_ends[-1] == end
    assert scan.tail_bytes == 0


def test_writer_refuses_foreign_log(tmp_path):
    log = str(tmp_path / "log.wal")
    WalWriter(log, store_crc=1).close()
    with pytest.raises(StorageError, match="header mismatch"):
        WalWriter(log, store_crc=2)


def test_scan_classifies_torn_vs_corrupt(tmp_path):
    log = str(tmp_path / "log.wal")
    writer = WalWriter(log, store_crc=9)
    writer.append(_sample_record(version=1))
    writer.append(_sample_record(version=2))
    writer.close()
    clean = scan_wal(log)
    full = os.path.getsize(log)

    # Every proper prefix that is not a record boundary scans as torn
    # with exactly the already-committed records intact.
    with open(log, "rb") as handle:
        data = handle.read()
    for cut in (full - 1, full - len(COMMIT_MARKER),
                clean.record_ends[0] + 3, HEADER_SIZE + 1):
        torn_log = str(tmp_path / "torn.wal")
        with open(torn_log, "wb") as handle:
            handle.write(data[:cut])
        scan = scan_wal(torn_log)
        assert scan.tail_state == "torn", cut
        expected = sum(1 for end in clean.record_ends if end <= cut)
        assert len(scan.records) == expected
        assert scan.committed_length == ([HEADER_SIZE]
                                         + clean.record_ends)[expected]

    # In-place damage on a complete frame is corrupt, not torn.
    bad_log = str(tmp_path / "bad.wal")
    with open(bad_log, "wb") as handle:
        handle.write(data)
    from repro.storage.faults import corrupt_byte
    corrupt_byte(bad_log, clean.record_ends[0] + 30)
    scan = scan_wal(bad_log)
    assert scan.tail_state == "corrupt"
    assert len(scan.records) == 1  # the first record survives

    # Bad magic and short headers are corrupt too.
    corrupt_byte(bad_log, 0)
    assert scan_wal(bad_log).tail_state == "corrupt"
    with open(str(tmp_path / "short.wal"), "wb") as handle:
        handle.write(wal_header(9)[:HEADER_SIZE - 2])
    assert scan_wal(str(tmp_path / "short.wal")).tail_state == "corrupt"


def test_scan_missing_and_empty_logs_are_clean(tmp_path):
    missing = scan_wal(str(tmp_path / "nope.wal"))
    assert (missing.tail_state, missing.records) == ("clean", [])
    empty = str(tmp_path / "empty.wal")
    open(empty, "wb").close()
    assert scan_wal(empty).tail_state == "clean"


def test_repair_wal_truncates_torn_requires_force_for_corrupt(tmp_path):
    log = str(tmp_path / "log.wal")
    writer = WalWriter(log, store_crc=4)
    writer.append(_sample_record(version=1))
    writer.close()
    committed = os.path.getsize(log)
    with open(log, "ab") as handle:
        handle.write(b"\x01\x02\x03")
    scan = repair_wal(log)
    assert os.path.getsize(log) == committed
    assert len(scan.records) == 1

    from repro.storage.faults import corrupt_byte
    corrupt_byte(log, committed - 2)  # inside the commit marker
    with pytest.raises(StorageError, match="force"):
        repair_wal(log)
    repair_wal(log, force=True)
    assert os.path.getsize(log) == HEADER_SIZE

    # Unreadable header: repair (forced) removes the file entirely.
    corrupt_byte(log, 1)
    with pytest.raises(StorageError):
        repair_wal(log)
    repair_wal(log, force=True)
    assert not os.path.exists(log)


def test_truncate_to_guards_the_header(tmp_path):
    log = str(tmp_path / "log.wal")
    reset_wal(log, 1)
    with pytest.raises(ValueError, match="header"):
        truncate_to(log, HEADER_SIZE - 1)


# --------------------------------------------------------------------------- #
# durable updater commits
# --------------------------------------------------------------------------- #
def test_durable_updater_commits_one_record_per_batch(tmp_path):
    path, live, updater = _durable_store(tmp_path)
    events = _events(30)
    for start in range(0, 30, 5):
        updater.apply_batch(events[start:start + 5])
    log_scan = scan_wal(wal_path(path))
    assert log_scan.tail_state == "clean"
    assert len(log_scan.records) == updater.wal_commits == 6
    assert log_scan.committed_version == updater.registry.dataset_version
    assert updater.summary()["wal_commits"] == 6
    summary = wal_summary(path)
    assert summary["records"] == 6
    assert summary["wal_bytes"] > HEADER_SIZE
    live.store.close()


def test_recovery_reproduces_live_state_exactly(tmp_path):
    path, live, updater = _durable_store(tmp_path)
    for start in range(0, 36, 4):
        updater.apply_batch(_events(36)[start:start + 4])
    expected_state = _object_state(live)
    expected_order = list(live.objects)
    expected_root, expected_height = live.root_id, live.height
    live.store.close()

    recovered = load_tree(path, recover=True)
    try:
        assert _object_state(recovered) == expected_state
        # Replay preserves dict insertion order, not just content.
        assert list(recovered.objects) == expected_order
        assert (recovered.root_id, recovered.height) == \
            (expected_root, expected_height)
        assert_tree_valid(recovered)
    finally:
        recovered.store.close()


def test_nonrecovering_load_refuses_a_live_wal(tmp_path):
    path, live, updater = _durable_store(tmp_path)
    updater.apply_batch(_events(4))
    live.store.close()
    with pytest.raises(StorageError, match="recover"):
        load_tree(path)
    # Explicit recovery (or writable mode, which implies it) still works.
    tree = load_tree(path, recover=True)
    tree.store.close()


def test_stale_wal_is_ignored(tmp_path):
    path, live, updater = _durable_store(tmp_path)
    updater.apply_batch(_events(6))
    live.store.close()
    # Simulate pack crashing after publishing the folded checkpoint but
    # before deleting the log: re-checkpoint over the store, keep the log.
    recovered = load_tree(path, recover=True)
    log = wal_path(path)
    with open(log, "rb") as handle:
        stale_log = handle.read()
    try:
        save_tree(recovered, path)
    finally:
        recovered.store.close()
    with open(log, "wb") as handle:
        handle.write(stale_log)
    assert wal_summary(path)["stale"] is True
    # A plain (non-recover) load no longer trips over the superseded log,
    # and an opened-writable store starts a fresh log for the new CRC.
    tree = load_tree(path, writable=True)
    try:
        assert scan_wal(log).store_crc == file_crc32(path)
        assert scan_wal(log).records == []
    finally:
        tree.store.close()


def test_pack_folds_wal_and_reclaims_dead_pages(tmp_path):
    path, live, updater = _durable_store(tmp_path)
    for start in range(0, 24, 6):
        updater.apply_batch(_events(24)[start:start + 6])
    expected_state = _object_state(live)
    version = updater.registry.dataset_version
    live.store.close()

    before = wal_summary(path)
    assert before["dead_pages"] > 0
    info = pack(path)
    assert info["records_folded"] == before["records"] == 4
    assert info["committed_version"] == version
    assert info["dead_pages_reclaimed"] == before["dead_pages"]
    assert not os.path.exists(wal_path(path))

    packed = load_tree(path)
    try:
        assert _object_state(packed) == expected_state
        # Pack writes the canonical checkpoint form: sorted object order,
        # exactly like a fresh save_tree of the same content.
        assert list(packed.objects) == sorted(packed.objects)
        assert_tree_valid(packed)
    finally:
        packed.store.close()
    after = wal_summary(path)
    assert after["wal_present"] is False
    assert after["dead_pages"] == 0


def test_pack_refuses_corrupt_wal(tmp_path):
    from repro.storage.faults import corrupt_byte
    path, live, updater = _durable_store(tmp_path)
    updater.apply_batch(_events(5))
    live.store.close()
    corrupt_byte(wal_path(path), HEADER_SIZE + 20)
    with pytest.raises(StorageError, match="corrupt"):
        pack(path)


def test_wal_summary_reports_torn_tails_without_mutating(tmp_path):
    path, live, updater = _durable_store(tmp_path)
    for start in range(0, 8, 4):
        updater.apply_batch(_events(8)[start:start + 4])
    live.store.close()
    log = wal_path(path)
    size = os.path.getsize(log)
    with open(log, "r+b") as handle:
        handle.truncate(size - 5)
    summary = wal_summary(path)
    assert summary["tail_state"] == "torn"
    assert summary["tail_bytes"] > 0
    assert summary["records"] == 1
    # The scan-only summary must not repair the file.
    assert os.path.getsize(log) == size - 5


def test_writable_backend_requires_wal_for_commit(tmp_path):
    records = make_records(40, seed=3)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=256))
    path = str(tmp_path / "plain.rpro")
    save_tree(tree, path)
    cow = load_tree(path, copy_on_write=True)
    try:
        assert isinstance(cow.store, PagedFileBackend)
        assert cow.store.wal is None
        with pytest.raises(StorageError, match="write-ahead log"):
            cow.store.commit_record(_sample_record())
    finally:
        cow.store.close()
