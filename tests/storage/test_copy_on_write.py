"""Tests for the paged backend's copy-on-write overlay."""

import os

import pytest

from repro.rtree import SizeModel, assert_tree_valid, bulk_load_str
from repro.rtree.entry import ObjectRecord
from repro.geometry import Rect
from repro.storage import ReadOnlyStorageError, StorageError
from repro.storage.paged import load_tree, read_header, save_tree

from tests.conftest import make_records


@pytest.fixture()
def store_path(tmp_path):
    records = make_records(150, seed=21)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=256))
    path = str(tmp_path / "cow.rpro")
    save_tree(tree, path, meta={"dataset": "TEST"})
    return path


def test_read_only_tree_still_refuses_mutation(store_path):
    tree = load_tree(store_path)
    with pytest.raises(ReadOnlyStorageError, match="copy_on_write"):
        tree.insert(ObjectRecord(object_id=999,
                                 mbr=Rect(0.1, 0.1, 0.2, 0.2),
                                 size_bytes=100))
    with pytest.raises(ReadOnlyStorageError):
        tree.store.allocate(level=0)
    with pytest.raises(ReadOnlyStorageError):
        tree.store.free(tree.root_id)
    with pytest.raises(ReadOnlyStorageError):
        tree.store.edit(tree.root_id)


def test_cow_mutations_survive_buffer_eviction(store_path):
    # A 2-page buffer evicts constantly; without the overlay the in-place
    # mutations would be lost on re-decode.
    tree = load_tree(store_path, buffer_pages=2, copy_on_write=True)
    for object_id in range(150, 190):
        x = (object_id - 150) / 40.0
        tree.insert(ObjectRecord(object_id=object_id,
                                 mbr=Rect(x, x, min(1.0, x + 0.003),
                                          min(1.0, x + 0.003)),
                                 size_bytes=500))
    for object_id in range(0, 60, 3):
        assert tree.delete(object_id)
    assert_tree_valid(tree)
    tree.validate()
    assert len(tree) == 150 + 40 - 20
    # The file itself is untouched: a fresh read-only load sees the original.
    original = load_tree(store_path)
    assert len(original) == 150
    assert_tree_valid(original)


def test_cow_tree_can_be_recheckpointed(store_path, tmp_path):
    tree = load_tree(store_path, copy_on_write=True)
    tree.insert(ObjectRecord(object_id=500, mbr=Rect(0.4, 0.4, 0.41, 0.41),
                             size_bytes=750))
    assert tree.delete(3)
    out = str(tmp_path / "next.rpro")
    header = save_tree(tree, out)
    assert header["meta"] == {"dataset": "TEST"}  # meta carries over
    reloaded = load_tree(out)
    assert sorted(reloaded.objects) == sorted(tree.objects)
    assert_tree_valid(reloaded)


def test_cow_logical_counters_match_memory_semantics(store_path):
    tree = load_tree(store_path, copy_on_write=True)
    writes_before = tree.store.writes
    node = tree.store.allocate(level=0)
    assert tree.store.writes == writes_before + 1
    assert node.node_id in tree.store
    assert node.node_id in tree.store.node_ids()
    tree.store.free(node.node_id)
    assert node.node_id not in tree.store
    with pytest.raises(KeyError):
        tree.store.free(node.node_id)


def test_cow_freed_file_page_is_tombstoned(store_path):
    tree = load_tree(store_path, copy_on_write=True)
    # Delete enough objects to force a condense that frees a file page.
    victims = sorted(tree.objects)[:80]
    pages_before = set(tree.store.node_ids())
    for object_id in victims:
        tree.delete(object_id)
    pages_after = set(tree.store.node_ids())
    freed = pages_before - pages_after
    assert freed, "expected at least one page to be condensed away"
    for node_id in freed:
        assert node_id not in tree.store
        with pytest.raises(KeyError):
            tree.store.peek(node_id)
    assert_tree_valid(tree)


def test_truncated_store_raises_storage_error(store_path, tmp_path):
    header = read_header(store_path)
    truncated = str(tmp_path / "truncated.rpro")
    size = os.path.getsize(store_path)
    with open(store_path, "rb") as source, open(truncated, "wb") as out:
        out.write(source.read(size - header["page_size"] * 2))
    with pytest.raises(StorageError, match="corrupt or truncated"):
        load_tree(truncated)
