"""Round-trip tests for the persistence subsystem.

Save → load → save of a populated tree and of a populated proactive cache
must be byte-stable, and every individual codec must reconstruct its input
exactly.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.core.cache import ProactiveCache
from repro.core.items import CachedIndexNode, CachedObject, CacheEntry
from repro.core.replacement import make_policy
from repro.geometry import Rect
from repro.rtree import RTree, SizeModel, bulk_load_str
from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.node import Node
from repro.rtree.serialize import (
    decode_node,
    decode_object,
    encode_node,
    encode_object,
)
from repro.storage import (
    load_cache_snapshot,
    load_tree,
    read_header,
    save_cache_snapshot,
    save_tree,
)
from repro.storage.snapshot import dumps_state

from tests.conftest import make_records


def _file_digest(path) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


# --------------------------------------------------------------------------- #
# codecs
# --------------------------------------------------------------------------- #
def test_node_codec_roundtrip_preserves_everything():
    rng = random.Random(11)
    entries = []
    for index in range(17):
        x, y = rng.random(), rng.random()
        mbr = Rect(x, y, min(1.0, x + rng.random() * 0.1),
                   min(1.0, y + rng.random() * 0.1))
        if index % 2:
            entries.append(Entry(mbr=mbr, object_id=1000 + index))
        else:
            entries.append(Entry(mbr=mbr, child_id=index))
    node = Node(node_id=42, level=3, entries=entries, parent_id=7)
    decoded = decode_node(encode_node(node))
    assert decoded.node_id == node.node_id
    assert decoded.level == node.level
    assert decoded.parent_id == node.parent_id
    assert decoded.entries == node.entries
    # Entry order is part of the format: re-encoding is byte-identical.
    assert encode_node(decoded) == encode_node(node)


def test_node_codec_none_parent():
    node = Node(node_id=1, level=0,
                entries=[Entry(mbr=Rect(0.1, 0.1, 0.2, 0.2), object_id=5)])
    assert decode_node(encode_node(node)).parent_id is None


def test_object_codec_roundtrip():
    record = ObjectRecord(object_id=9, mbr=Rect(0.25, 0.5, 0.75, 1.0),
                          size_bytes=12_345)
    assert decode_object(encode_object(record)) == record


def test_node_codec_rejects_garbage():
    blob = bytearray(encode_node(Node(
        node_id=1, level=0,
        entries=[Entry(mbr=Rect(0.1, 0.1, 0.2, 0.2), object_id=5)])))
    blob[24] = 99  # entry kind byte
    with pytest.raises(ValueError):
        decode_node(bytes(blob))


# --------------------------------------------------------------------------- #
# whole-tree round trips (property style over several shapes)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("count,seed,page_bytes", [
    (60, 1, 256), (250, 2, 512), (400, 3, 1024),
])
def test_tree_save_load_save_is_byte_stable(tmp_path, count, seed, page_bytes):
    tree = bulk_load_str(make_records(count, seed=seed),
                         size_model=SizeModel(page_bytes=page_bytes))
    first = tmp_path / "a.rpro"
    second = tmp_path / "b.rpro"
    save_tree(tree, str(first), meta={"seed": seed})
    loaded = load_tree(str(first), buffer_pages=4)
    loaded.validate()
    save_tree(loaded, str(second))
    assert _file_digest(first) == _file_digest(second)
    # And a third generation from the second file, for good measure.
    third = tmp_path / "c.rpro"
    save_tree(load_tree(str(second)), str(third))
    assert _file_digest(second) == _file_digest(third)


def test_tree_roundtrip_preserves_structure(tmp_path):
    tree = bulk_load_str(make_records(150, seed=9),
                         size_model=SizeModel(page_bytes=256))
    path = tmp_path / "t.rpro"
    save_tree(tree, str(path))
    loaded = load_tree(str(path))
    assert loaded.root_id == tree.root_id
    assert loaded.height == tree.height
    assert loaded.objects == tree.objects
    assert loaded.max_entries == tree.max_entries
    assert loaded.min_entries == tree.min_entries
    assert loaded.size_model == tree.size_model
    assert sorted(loaded.store.node_ids()) == sorted(tree.store.node_ids())
    for node_id in tree.store.node_ids():
        original = tree.store.peek(node_id)
        restored = loaded.store.peek(node_id)
        assert restored.entries == original.entries
        assert restored.level == original.level
        assert restored.parent_id == original.parent_id


def test_dynamic_tree_roundtrip(tmp_path, dynamic_tree):
    path = tmp_path / "dyn.rpro"
    save_tree(dynamic_tree, str(path))
    loaded = load_tree(str(path))
    loaded.validate()
    assert loaded.objects == dynamic_tree.objects


def test_header_meta_roundtrip(tmp_path):
    tree = bulk_load_str(make_records(40, seed=4),
                         size_model=SizeModel(page_bytes=256))
    path = tmp_path / "m.rpro"
    save_tree(tree, str(path), meta={"dataset": "NE", "object_count": 40})
    header = read_header(str(path))
    assert header["meta"] == {"dataset": "NE", "object_count": 40}


# --------------------------------------------------------------------------- #
# cache snapshot round trips
# --------------------------------------------------------------------------- #
def _populated_cache(seed: int, policy_name: str = "GRD3") -> ProactiveCache:
    """A cache grown through a random but deterministic insert/touch workload."""
    rng = random.Random(seed)
    cache = ProactiveCache(capacity_bytes=40_000, size_model=SizeModel(),
                           replacement_policy=make_policy(policy_name))
    node_ids = []
    for step in range(60):
        cache.tick()
        node_id = step + 1
        elements = {}
        for code in ("0", "10", "11")[:rng.randint(1, 3)]:
            x, y = rng.random() * 0.9, rng.random() * 0.9
            elements[code] = CacheEntry(
                mbr=Rect(x, y, x + 0.05, y + 0.05), code=code,
                child_id=None if rng.random() < 0.5 else 500 + step,
                object_id=None)
        parent = rng.choice(node_ids) if node_ids and rng.random() < 0.6 else None
        if cache.insert_node_snapshot(
                CachedIndexNode(node_id=node_id, level=rng.randint(0, 3),
                                elements=elements), parent):
            node_ids.append(node_id)
        if node_ids and rng.random() < 0.7:
            x, y = rng.random() * 0.9, rng.random() * 0.9
            cache.insert_object(
                CachedObject(object_id=2000 + step, mbr=Rect(x, y, x + 0.01, y + 0.01),
                             size_bytes=rng.randint(200, 4000)),
                rng.choice(node_ids))
        if rng.random() < 0.4 and cache.items:
            cache.touch(rng.choice(list(cache.items)))
    cache.validate()
    return cache


@pytest.mark.parametrize("seed,policy", [(1, "GRD3"), (2, "LRU"), (3, "FAR")])
def test_cache_snapshot_save_load_save_is_byte_stable(tmp_path, seed, policy):
    cache = _populated_cache(seed, policy)
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    save_cache_snapshot(cache, str(first))
    restored = load_cache_snapshot(str(first), size_model=cache.size_model)
    save_cache_snapshot(restored, str(second))
    assert _file_digest(first) == _file_digest(second)


def test_cache_snapshot_restores_full_state():
    cache = _populated_cache(7)
    restored = ProactiveCache.from_state_dict(cache.state_dict(),
                                              size_model=cache.size_model)
    restored.validate()
    assert restored.clock == cache.clock
    assert restored.used_bytes == cache.used_bytes
    assert restored.index_bytes() == cache.index_bytes()
    assert restored.object_bytes() == cache.object_bytes()
    assert restored.evictions == cache.evictions
    assert restored.rejected_inserts == cache.rejected_inserts
    assert list(restored.items) == list(cache.items)
    assert restored.leaf_keys() == cache.leaf_keys()
    assert restored.replacement_policy.name == cache.replacement_policy.name
    for key, state in cache.items.items():
        twin = restored.items[key]
        assert twin.insert_time == state.insert_time
        assert twin.hit_queries == state.hit_queries
        assert twin.last_access == state.last_access
        assert twin.parent_key == state.parent_key
        assert twin.cached_children == state.cached_children
    assert restored.content_digest() == cache.content_digest()


def test_cache_digest_changes_with_state():
    cache = _populated_cache(5)
    digest = cache.content_digest()
    cache.tick()
    assert cache.content_digest() != digest


def test_state_dict_is_json_canonical():
    cache = _populated_cache(6)
    text = dumps_state(cache.state_dict())
    assert dumps_state(ProactiveCache.from_state_dict(
        cache.state_dict(), size_model=cache.size_model).state_dict()) == text
