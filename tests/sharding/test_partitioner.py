"""Partitioner properties: disjoint cover, determinism, region routing."""

from __future__ import annotations

import pytest

from repro.datasets import make_dataset
from repro.geometry import Point, Rect
from repro.sharding.partitioner import (
    PARTITIONER_METHODS,
    _grid_shape,
    make_plan,
)


def _records(count=400, seed=11):
    return make_dataset("NE", count, seed=seed)


@pytest.mark.parametrize("method", PARTITIONER_METHODS)
@pytest.mark.parametrize("shards", [1, 2, 3, 4, 5, 7, 8])
def test_partition_is_a_disjoint_cover(method, shards):
    records = _records()
    plan = make_plan(records, shards, method=method)
    assert plan.shard_count == shards
    assigned = [record.object_id for slice_ in plan.shard_records
                for record in slice_]
    assert sorted(assigned) == sorted(record.object_id for record in records)
    assert len(set(assigned)) == len(assigned)


@pytest.mark.parametrize("method", PARTITIONER_METHODS)
def test_partition_is_deterministic(method):
    records = _records()
    first = make_plan(records, 5, method=method)
    second = make_plan(records, 5, method=method)
    assert first == second


def test_single_shard_keeps_original_record_order():
    """The byte-identity anchor: one shard == the single server's input."""
    records = _records()
    for method in PARTITIONER_METHODS:
        plan = make_plan(records, 1, method=method)
        assert list(plan.shard_records[0]) == records
        assert plan.regions == (Rect.unit(),)


def test_kd_balances_object_counts():
    plan = make_plan(_records(500), 5, method="kd")
    counts = [len(slice_) for slice_ in plan.shard_records]
    assert max(counts) - min(counts) <= 1


def test_grid_shape_prefers_square_grids():
    assert _grid_shape(4) == (2, 2)
    assert _grid_shape(6) == (2, 3)
    assert _grid_shape(9) == (3, 3)
    assert _grid_shape(5) == (1, 5)  # prime -> strips


@pytest.mark.parametrize("method", PARTITIONER_METHODS)
def test_objects_land_in_their_region(method):
    """Grid assignment follows regions; kd regions cover their slices' centres."""
    records = _records()
    plan = make_plan(records, 4, method=method)
    for index, slice_ in enumerate(plan.shard_records):
        region = plan.regions[index]
        for record in slice_:
            assert region.contains_point(record.mbr.center())


def test_region_index_for_routes_every_point():
    plan = make_plan(_records(), 6, method="kd")
    for point in (Point(0.01, 0.02), Point(0.99, 0.98), Point(0.5, 0.5)):
        index = plan.region_index_for(point)
        assert 0 <= index < plan.shard_count


def test_partitioner_input_validation():
    records = _records(50)
    with pytest.raises(ValueError):
        make_plan(records, 0)
    with pytest.raises(ValueError):
        make_plan(records, 3, method="voronoi")


def test_plan_summary_is_deterministic():
    plan = make_plan(_records(), 4, method="grid")
    summary = plan.summary()
    assert summary["method"] == "grid"
    assert summary["shards"] == 4
    assert sum(summary["objects_per_shard"]) == 400
    assert len(summary["regions"]) == 4
