"""Sharded update routing: ownership, regions, the virtual root's versions."""

from __future__ import annotations

import pytest

from repro.geometry import Rect
from repro.sharding import ShardedUpdater, build_sharded_state
from repro.sim.config import SimulationConfig
from repro.updates.stream import UpdateEvent

CONFIG = SimulationConfig.scaled(query_count=5, object_count=600)


def _insert(object_id, x, y, index=0, size=500):
    return UpdateEvent(index=index, arrival_time=float(index), kind="insert",
                       object_id=object_id,
                       mbr=Rect(x, y, min(1.0, x + 0.002), min(1.0, y + 0.002)),
                       size_bytes=size)


def _delete(object_id, index=0):
    return UpdateEvent(index=index, arrival_time=float(index), kind="delete",
                       object_id=object_id)


def _modify(object_id, x, y, index=0, size=700):
    return UpdateEvent(index=index, arrival_time=float(index), kind="modify",
                       object_id=object_id,
                       mbr=Rect(x, y, min(1.0, x + 0.002), min(1.0, y + 0.002)),
                       size_bytes=size)


@pytest.fixture()
def state():
    built = build_sharded_state(CONFIG, 4, "grid")
    yield built
    built.close()


def test_insert_routes_by_region(state):
    updater = ShardedUpdater(state.router)
    fresh_id = 10 ** 6
    assert updater.apply(_insert(fresh_id, 0.1, 0.1))
    expected = state.plan.region_index_for(Rect(0.1, 0.1, 0.102, 0.102).center())
    assert state.router.owner_of(fresh_id) == expected
    assert fresh_id in state.shards[expected].tree.objects
    assert fresh_id in state.view.objects


def test_duplicate_insert_is_skipped(state):
    updater = ShardedUpdater(state.router)
    existing = next(iter(state.shards[0].tree.objects))
    assert not updater.apply(_insert(existing, 0.5, 0.5))
    assert updater.summary()["skipped"] == 1
    assert updater.summary()["applied"] == 0


def test_delete_routes_to_owner_and_releases(state):
    updater = ShardedUpdater(state.router)
    victim = next(iter(state.shards[2].tree.objects))
    assert updater.apply(_delete(victim))
    assert state.router.owner_of(victim) is None
    assert victim not in state.shards[2].tree.objects
    assert not updater.apply(_delete(victim))  # second delete is a no-op
    summary = updater.summary()
    assert summary["deletes"] == 1
    assert summary["skipped"] == 1
    assert summary["live_objects"] == CONFIG.object_count - 1


def test_modify_keeps_current_owner_even_across_regions(state):
    updater = ShardedUpdater(state.router)
    victim = next(iter(state.shards[0].tree.objects))
    # Move it far across the space: ownership stays, the shard's root MBR
    # (which query pruning uses) grows to cover the new position.
    assert updater.apply(_modify(victim, 0.95, 0.95))
    assert state.router.owner_of(victim) == 0
    assert state.shards[0].tree.objects[victim].mbr.min_x == pytest.approx(0.95)
    assert state.shards[0].root_mbr.contains_point(
        state.shards[0].tree.objects[victim].mbr.center())


def test_shared_registry_stamps_all_shards(state):
    updater = ShardedUpdater(state.router)
    registry = updater.registry
    a = next(iter(state.shards[0].tree.objects))
    b = next(iter(state.shards[3].tree.objects))
    updater.apply(_modify(a, 0.2, 0.2))
    updater.apply(_delete(b))
    assert registry.object_version(a) == 2
    assert registry.object_version(b) is None
    assert registry.dataset_version == 2


def test_virtual_root_version_bumps_when_a_shard_root_changes(state):
    updater = ShardedUpdater(state.router)
    registry = updater.registry
    virtual_id = state.router.virtual_root_id
    assert registry.node_version(virtual_id) == 1
    # Mutating any shard adjusts its root MBR eventually; force it by
    # inserting far outside the shard's current extent.
    before = registry.node_version(virtual_id)
    changed = False
    for index in range(6):
        updater.apply(_insert(2 * 10 ** 6 + index, 0.001, 0.999, index=index))
        if registry.node_version(virtual_id) != before:
            changed = True
            break
    assert changed, "virtual root version never bumped despite root growth"
    virtual = state.view.store.peek(virtual_id)
    assert {entry.child_id for entry in virtual.entries} \
        == {shard.root_id for shard in state.shards if not shard.is_empty}


def test_summary_pools_per_shard_counters(state):
    updater = ShardedUpdater(state.router)
    updater.apply(_insert(10 ** 6, 0.2, 0.8))
    updater.apply(_delete(next(iter(state.shards[1].tree.objects))))
    updater.apply(_modify(next(iter(state.shards[2].tree.objects)), 0.4, 0.4))
    summary = updater.summary()
    assert summary["applied"] == 3
    assert summary["inserts"] == 1
    assert summary["deletes"] == 1
    assert summary["modifies"] == 1
    assert summary["live_objects"] == CONFIG.object_count
