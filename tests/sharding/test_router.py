"""Router correctness: fresh-query equivalence, pruning, the facade views."""

from __future__ import annotations

import pytest

from repro.geometry import Point, Rect
from repro.sharding import (
    NODE_ID_STRIDE,
    build_sharded_state,
    shard_index_for_node,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_shared_state
from repro.sim.sessions import true_results
from repro.workload.queries import JoinQuery, KNNQuery, RangeQuery


CONFIG = SimulationConfig.scaled(query_count=5, object_count=700)

QUERIES = [
    RangeQuery(window=Rect(0.2, 0.2, 0.5, 0.45)),
    RangeQuery(window=Rect(0.0, 0.0, 1.0, 1.0)),
    RangeQuery(window=Rect(0.9, 0.9, 0.95, 0.95)),
    KNNQuery(point=Point(0.31, 0.7), k=12),
    KNNQuery(point=Point(0.02, 0.97), k=5),
    KNNQuery(point=Point(0.5, 0.5), k=1),
    JoinQuery(window=Rect(0.1, 0.1, 0.6, 0.6), threshold=0.02),
    JoinQuery(window=Rect(0.0, 0.0, 1.0, 1.0), threshold=0.01),
]


@pytest.fixture(scope="module")
def single():
    return build_shared_state(CONFIG)


@pytest.mark.parametrize("shards,method", [(1, "grid"), (3, "grid"),
                                           (4, "grid"), (5, "kd"), (8, "kd")])
def test_fresh_queries_match_single_server_and_ground_truth(single, shards,
                                                            method):
    state = build_sharded_state(CONFIG, shards, method)
    try:
        for query in QUERIES:
            reference = single.server.execute(query)
            routed = state.router.execute(query)
            truth = set(true_results(single.tree, query))
            assert reference.result_object_ids() == truth
            assert routed.result_object_ids() == truth, query
    finally:
        state.close()


def test_single_shard_responses_are_byte_identical(single):
    state = build_sharded_state(CONFIG, 1)
    try:
        assert state.router.root_id == single.server.root_id
        assert state.router.root_mbr == single.server.root_mbr
        for query in QUERIES:
            reference = single.server.execute(query)
            routed = state.router.execute(query)
            assert routed.accessed_node_count == reference.accessed_node_count
            assert routed.examined_elements == reference.examined_elements
            assert ([(d.record.object_id, d.confirm_only)
                     for d in routed.deliveries]
                    == [(d.record.object_id, d.confirm_only)
                        for d in reference.deliveries])
            assert ([(s.node_id, s.level, s.parent_id,
                      sorted(e.code for e in s.elements))
                     for s in routed.index_snapshots]
                    == [(s.node_id, s.level, s.parent_id,
                         sorted(e.code for e in s.elements))
                        for s in reference.index_snapshots])
    finally:
        state.close()


def test_knn_global_bound_prunes_far_shards():
    """A corner kNN query must not visit shards across the data space."""
    state = build_sharded_state(CONFIG, 4, "grid")
    try:
        state.router.execute(KNNQuery(point=Point(0.02, 0.03), k=3))
        stats = state.router.stats
        assert sum(stats.shards_pruned) >= 1
        assert sum(stats.queries_routed) < len(state.shards)
        # Pruned shards read no pages for this query.
        for index in range(len(state.shards)):
            if stats.queries_routed[index] == 0:
                assert stats.pages_read[index] == 0
    finally:
        state.close()


def test_range_prunes_non_overlapping_shards():
    state = build_sharded_state(CONFIG, 4, "grid")
    try:
        state.router.execute(RangeQuery(window=Rect(0.01, 0.01, 0.06, 0.06)))
        assert sum(state.router.stats.queries_routed) < len(state.shards)
    finally:
        state.close()


def test_node_id_ranges_are_disjoint_and_routable():
    state = build_sharded_state(CONFIG, 5, "kd")
    try:
        for index, shard in enumerate(state.shards):
            for node_id in shard.tree.store.node_ids():
                assert shard_index_for_node(node_id) == index
        assert state.router.virtual_root_id == 5 * NODE_ID_STRIDE + 1
    finally:
        state.close()


def test_tree_view_routes_objects_and_pages():
    state = build_sharded_state(CONFIG, 3, "grid")
    try:
        view = state.view
        assert len(view.objects) == CONFIG.object_count
        assert sorted(view.objects) == list(range(CONFIG.object_count))
        some_id = next(iter(state.shards[1].tree.objects))
        assert view.objects[some_id].object_id == some_id
        assert view.object(some_id).object_id == some_id
        with pytest.raises(KeyError):
            view.objects[10 ** 9]
        # The virtual root is served like a page.
        assert state.router.virtual_root_id in view.store
        virtual = view.store.peek(state.router.virtual_root_id)
        assert {entry.child_id for entry in virtual.entries} \
            == {shard.root_id for shard in state.shards if not shard.is_empty}
        # Real pages route to their shard; unknown ranges raise.
        root0 = state.shards[0].root_id
        assert view.store.peek(root0).node_id == root0
        with pytest.raises(KeyError):
            view.store.peek(40 * NODE_ID_STRIDE + 7)
        assert not view.store.writable
    finally:
        state.close()


@pytest.mark.parametrize("shards", [1, 4])
def test_ground_truth_kernels_traverse_the_view(single, shards):
    """range/kNN/join oracles run over the facade exactly as over one tree.

    The view exposes the read-side traversal surface (root/root_id/node),
    so `GroundTruthCache` — and with it any oracle-driven session — works
    against a sharded deployment; for N > 1 the traversal crosses shard
    boundaries through the virtual root.
    """
    from repro.sim.sessions import GroundTruthCache
    state = build_sharded_state(CONFIG, shards, "grid")
    try:
        ground_truth = GroundTruthCache(state.view)
        for query in QUERIES:
            # List order is traversal-dependent (every consumer uses sets).
            expected = set(true_results(single.tree, query))
            assert set(true_results(state.view, query)) == expected
            assert set(ground_truth.results_for(query)[0]) == expected
    finally:
        state.close()


def test_virtual_root_snapshot_has_partition_codes():
    state = build_sharded_state(CONFIG, 4, "grid")
    try:
        router = state.router
        pt = router.partition_tree_for(router.virtual_root_id)
        codes = {code for code, _ in pt.full_form()}
        snapshot = router._virtual_snapshot()
        assert {element.code for element in snapshot.elements} == codes
        assert snapshot.parent_id is None
        assert snapshot.level >= 1
    finally:
        state.close()


def test_knn_distance_ties_yield_a_correct_nearest_set():
    """Exact k-th-boundary ties may pick different objects than the single
    server (router: by id; server: by traversal order), but the returned
    set must always be a correct k-nearest set — same distance multiset
    as the oracle's.  This pins the documented caveat."""
    from repro.rtree.entry import ObjectRecord
    from repro.sharding.partitioner import make_plan
    from repro.sharding.router import ShardRouter
    from repro.sharding.shard import build_shards

    records = [
        ObjectRecord(object_id=0, mbr=Rect(0.5, 0.5, 0.5, 0.5), size_bytes=10),
        ObjectRecord(object_id=1, mbr=Rect(0.1, 0.5, 0.1, 0.5), size_bytes=10),
        ObjectRecord(object_id=2, mbr=Rect(0.9, 0.5, 0.9, 0.5), size_bytes=10),
        ObjectRecord(object_id=3, mbr=Rect(0.5, 0.4, 0.5, 0.4), size_bytes=10),
        ObjectRecord(object_id=4, mbr=Rect(0.5, 0.6, 0.5, 0.6), size_bytes=10),
    ]
    plan = make_plan(records, 2, method="grid")
    router = ShardRouter(build_shards(plan), plan)
    query = KNNQuery(point=Point(0.5, 0.5), k=4)
    response = router.execute(query)
    ids = response.result_object_ids()
    assert len(ids) == 4
    point = query.point
    distances = sorted(router.tree.objects[object_id].mbr.min_dist_to_point(point)
                       for object_id in ids)
    oracle = sorted(record.mbr.min_dist_to_point(point)
                    for record in records)[:4]
    assert distances == pytest.approx(oracle)
    # Objects 1 and 2 tie at distance 0.4; exactly one of them is chosen.
    assert len(ids & {1, 2}) == 1


def test_router_rejects_empty_shard_list():
    from repro.sharding.partitioner import make_plan
    from repro.sharding.router import ShardRouter
    with pytest.raises(ValueError):
        ShardRouter([], make_plan([], 1))
