"""The partition-result cache's equivalence contract.

Cache-on fleets must be **result-identical** to cache-off fleets: same
per-query result sets and ``result_bytes`` for every client — static and
under churn, for every consistency mode, in-process and over loopback
sockets.  Skipping shards changes what travels (and therefore snapshots,
downlink and client cache contents), never what a query answers; under
versioned consistency the answers stay oracle-exact while updates land.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import (
    ClientGroupSpec,
    FleetConfig,
    default_fleet,
    run_fleet,
)
from repro.sim.sessions import make_session
from repro.sharding import (
    PartitionResultCache,
    ShardedUpdater,
    build_sharded_state,
)
from repro.updates import make_protocol


def _small_fleet(queries=10, objects=800, clients=4, **overrides):
    base = SimulationConfig.scaled(query_count=queries, object_count=objects)
    fleet = default_fleet(clients, base=base)
    return dataclasses.replace(fleet, shards=overrides.pop("shards", 3),
                               **overrides)


def _cached(fleet, cache_bytes=64 * 1024):
    return dataclasses.replace(fleet, router_cache=True,
                               router_cache_bytes=cache_bytes)


def _assert_result_identical(off, on):
    for off_client, on_client in zip(off.clients, on.clients):
        assert ([cost.result_bytes for cost in off_client.costs]
                == [cost.result_bytes for cost in on_client.costs])
        assert ([cost.query_type for cost in off_client.costs]
                == [cost.query_type for cost in on_client.costs])


# --------------------------------------------------------------------------- #
# result identity: static
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("shards,partitioner", [(3, "grid"), (4, "kd")])
def test_cache_on_static_fleet_is_result_identical(shards, partitioner):
    fleet = _small_fleet(shards=shards, partitioner=partitioner)
    _assert_result_identical(run_fleet(fleet), run_fleet(_cached(fleet)))


def test_cache_on_matches_under_byte_starved_budgets():
    """Constant eviction churn must never change answers."""
    fleet = _small_fleet()
    _assert_result_identical(run_fleet(fleet),
                             run_fleet(_cached(fleet, cache_bytes=256)))


# --------------------------------------------------------------------------- #
# result identity: dynamic, all consistency modes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("consistency", ["versioned", "ttl", "none"])
def test_cache_on_dynamic_fleet_is_result_identical(consistency):
    fleet = dataclasses.replace(_small_fleet(), update_rate=0.08,
                                consistency=consistency)
    off = run_fleet(fleet)
    on = run_fleet(_cached(fleet))
    _assert_result_identical(off, on)
    assert off.update_summary["applied"] == on.update_summary["applied"]
    assert off.update_summary["live_objects"] \
        == on.update_summary["live_objects"]


def test_cache_on_result_ids_match_per_query():
    """Stronger than bytes: per-query result id sets match cache-off."""
    base = SimulationConfig.scaled(query_count=12, object_count=800)
    fleet = default_fleet(3, base=base)
    specs = fleet.client_specs()

    def replay(with_cache):
        from repro.sim.fleet import build_fleet_events
        state = build_sharded_state(fleet.base, 4, "grid")
        try:
            if with_cache:
                state.router.attach_result_cache(
                    PartitionResultCache(capacity_bytes=64 * 1024))
            sessions = {spec.client_id: make_session(
                spec.model, state.view, spec.config, server=state.router)
                for spec in specs}
            ids_per_event = []
            for _, client_id, record in build_fleet_events(specs):
                sessions[client_id].process(record)
                ids_per_event.append((client_id,
                                      set(sessions[client_id].last_result_ids)))
            return ids_per_event, state.router.stats.summary()
        finally:
            state.close()

    reference, _ = replay(with_cache=False)
    cached, summary = replay(with_cache=True)
    assert reference == cached
    assert summary["total_skipped"] >= 0


def test_cache_on_dynamic_versioned_matches_oracle_per_query():
    """Cache-on versioned answers equal the linear-scan oracle every query."""
    from repro.sim.fleet import build_dynamic_events
    from repro.updates.oracle import oracle_results

    base = SimulationConfig.scaled(query_count=12, object_count=700)
    fleet = dataclasses.replace(
        FleetConfig.make(base, [ClientGroupSpec(name="only", clients=2)]),
        update_rate=0.1, consistency="versioned")
    specs = fleet.client_specs()
    state = build_sharded_state(fleet.base, 3, "kd")
    try:
        state.router.attach_result_cache(
            PartitionResultCache(capacity_bytes=16 * 1024))
        updater = ShardedUpdater(state.router)
        sessions = {spec.client_id: make_session(
            spec.model, state.view, spec.config, server=state.router,
            consistency=make_protocol("versioned", updater=updater,
                                      size_model=state.size_model))
            for spec in specs}
        for kind, _, client_id, payload in build_dynamic_events(fleet, specs):
            if kind == "update":
                updater.apply(payload)
            else:
                session = sessions[client_id]
                session.process(payload)
                expected = oracle_results(state.view.objects, payload.query)
                assert session.last_result_ids == set(expected), payload
    finally:
        state.close()


# --------------------------------------------------------------------------- #
# the cache must actually do something
# --------------------------------------------------------------------------- #
def test_hot_window_replay_skips_shards_and_counts_hits():
    """Repeated windows over clustered data produce real shard skips."""
    base = SimulationConfig.scaled(query_count=40, object_count=900)
    fleet = dataclasses.replace(default_fleet(4, base=base), shards=4)
    on = run_fleet(_cached(fleet))
    summary = on.shard_summary
    assert summary["router_cache"] is True
    assert summary["cache_hits"] + summary["cache_misses"] > 0
    assert summary["total_skipped"] > 0
    assert summary["total_skipped"] == sum(summary["shards_skipped"])
    # And the off-run reports zero skips with the same key set.
    off_summary = run_fleet(fleet).shard_summary
    assert off_summary["total_skipped"] == 0
    assert off_summary["cache_hits"] == off_summary["cache_misses"] == 0
    assert set(off_summary) == set(summary)


# --------------------------------------------------------------------------- #
# in-process vs loopback parity
# --------------------------------------------------------------------------- #
def test_networked_cache_on_fleet_matches_in_process():
    fleet = _cached(_small_fleet(queries=8, clients=3))
    in_process = run_fleet(fleet)
    networked = run_fleet(dataclasses.replace(fleet, transport="uds"))
    _assert_result_identical(in_process, networked)
    assert set(in_process.shard_summary) == set(networked.shard_summary)
    assert in_process.shard_summary["router_cache"] is True
    assert networked.shard_summary["router_cache"] is True


def test_shard_summary_key_set_is_stable_across_runners():
    fleet = _small_fleet(queries=6, clients=2)
    in_process = run_fleet(fleet)
    networked = run_fleet(dataclasses.replace(fleet, transport="uds"))
    assert set(in_process.shard_summary) == set(networked.shard_summary)
