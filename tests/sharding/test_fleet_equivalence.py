"""The sharded subsystem's equivalence contract, end to end.

* ``shards=1`` fleets are **byte-identical** to the classic single-server
  path: every deterministic per-query cost field, every final cache
  digest — static and dynamic, across every replacement policy.
* ``shards=N`` fleets are **result-identical**: per-query result sets and
  total object bytes pin to the single-server reference (sharding changes
  what travels on the wire, never what the query answers).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import (
    ClientGroupSpec,
    FleetConfig,
    default_fleet,
    run_fleet,
)
from repro.sim.runner import build_shared_state
from repro.sim.sessions import make_session
from repro.sharding import ShardedUpdater, build_sharded_state
from repro.updates import make_protocol

ALL_POLICIES = ("LRU", "MRU", "FAR", "GRD1", "GRD2", "GRD3")


def _small_fleet(policy="GRD3", queries=10, objects=800, clients=4):
    base = SimulationConfig.scaled(query_count=queries, object_count=objects
                                   ).with_overrides(replacement_policy=policy)
    return default_fleet(clients, base=base)


def _deterministic_cost(cost):
    return (cost.query_index, cost.query_type, cost.uplink_bytes,
            cost.downlink_bytes, cost.downloaded_result_bytes,
            cost.confirmed_cached_bytes, cost.index_downlink_bytes,
            cost.result_bytes, cost.cached_result_bytes, cost.saved_bytes,
            cost.contacted_server, cost.server_page_reads,
            cost.sync_uplink_bytes, cost.sync_downlink_bytes,
            cost.refreshed_items, cost.invalidated_items, cost.response_time)


def _assert_byte_identical(reference, sharded):
    for ref_client, sharded_client in zip(reference.clients, sharded.clients):
        assert ([_deterministic_cost(cost) for cost in ref_client.costs]
                == [_deterministic_cost(cost) for cost in sharded_client.costs])
        assert ref_client.final_cache_digest == sharded_client.final_cache_digest
        assert ref_client.final_cache_used_bytes \
            == sharded_client.final_cache_used_bytes


def _assert_result_identical(reference, sharded):
    for ref_client, sharded_client in zip(reference.clients, sharded.clients):
        assert ([cost.result_bytes for cost in ref_client.costs]
                == [cost.result_bytes for cost in sharded_client.costs])
    ref_total = sum(cost.result_bytes for client in reference.clients
                    for cost in client.costs)
    sharded_total = sum(cost.result_bytes for client in sharded.clients
                        for cost in client.costs)
    assert ref_total == sharded_total


# --------------------------------------------------------------------------- #
# shards=1: byte identity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_one_shard_static_fleet_is_byte_identical(policy):
    fleet = _small_fleet(policy=policy)
    reference = run_fleet(fleet)
    sharded = run_fleet(dataclasses.replace(fleet, shards=1))
    _assert_byte_identical(reference, sharded)


@pytest.mark.parametrize("partitioner", ["grid", "kd"])
def test_one_shard_identity_holds_for_both_partitioners(partitioner):
    fleet = _small_fleet()
    reference = run_fleet(fleet)
    sharded = run_fleet(dataclasses.replace(fleet, shards=1,
                                            partitioner=partitioner))
    _assert_byte_identical(reference, sharded)


@pytest.mark.parametrize("consistency", ["versioned", "ttl", "none"])
def test_one_shard_dynamic_fleet_is_byte_identical(consistency):
    fleet = dataclasses.replace(_small_fleet(), update_rate=0.05,
                                consistency=consistency)
    reference = run_fleet(fleet)
    sharded = run_fleet(dataclasses.replace(fleet, shards=1))
    _assert_byte_identical(reference, sharded)
    assert reference.update_summary == sharded.update_summary


# --------------------------------------------------------------------------- #
# shards=N: result identity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", ALL_POLICIES)
@pytest.mark.parametrize("shards,partitioner", [(3, "grid"), (4, "kd")])
def test_multi_shard_static_fleet_is_result_identical(policy, shards,
                                                      partitioner):
    fleet = _small_fleet(policy=policy)
    reference = run_fleet(fleet)
    sharded = run_fleet(dataclasses.replace(fleet, shards=shards,
                                            partitioner=partitioner))
    _assert_result_identical(reference, sharded)


@pytest.mark.parametrize("shards,partitioner", [(3, "grid"), (5, "kd")])
def test_multi_shard_dynamic_versioned_fleet_is_result_identical(shards,
                                                                 partitioner):
    """Under exact (versioned) consistency, churn does not break identity."""
    fleet = dataclasses.replace(_small_fleet(), update_rate=0.08,
                                consistency="versioned")
    reference = run_fleet(fleet)
    sharded = run_fleet(dataclasses.replace(fleet, shards=shards,
                                            partitioner=partitioner))
    _assert_result_identical(reference, sharded)
    assert reference.update_summary["applied"] \
        == sharded.update_summary["applied"]
    assert reference.update_summary["live_objects"] \
        == sharded.update_summary["live_objects"]


def test_multi_shard_result_ids_match_per_query():
    """Stronger than bytes: the actual per-query result id sets match."""
    base = SimulationConfig.scaled(query_count=12, object_count=800)
    fleet = default_fleet(3, base=base)
    specs = fleet.client_specs()

    def replay(server_like, tree_like):
        from repro.sim.fleet import build_fleet_events
        sessions = {spec.client_id: make_session(
            spec.model, tree_like, spec.config, server=server_like)
            for spec in specs}
        ids_per_event = []
        for _, client_id, record in build_fleet_events(specs):
            sessions[client_id].process(record)
            ids_per_event.append((client_id,
                                  set(sessions[client_id].last_result_ids)))
        return ids_per_event

    shared = build_shared_state(fleet.base)
    reference = replay(shared.server, shared.tree)
    state = build_sharded_state(fleet.base, 4, "grid")
    try:
        sharded = replay(state.router, state.view)
    finally:
        state.close()
    assert reference == sharded


def test_dynamic_multi_shard_matches_oracle_per_query():
    """Versioned sharded results equal the linear-scan oracle every query."""
    from repro.sim.fleet import build_dynamic_events
    from repro.updates.oracle import oracle_results

    base = SimulationConfig.scaled(query_count=12, object_count=700)
    fleet = dataclasses.replace(
        FleetConfig.make(base, [ClientGroupSpec(name="only", clients=2)]),
        update_rate=0.1, consistency="versioned")
    specs = fleet.client_specs()
    state = build_sharded_state(fleet.base, 3, "kd")
    try:
        updater = ShardedUpdater(state.router)
        sessions = {spec.client_id: make_session(
            spec.model, state.view, spec.config, server=state.router,
            consistency=make_protocol("versioned", updater=updater,
                                      size_model=state.size_model))
            for spec in specs}
        for kind, _, client_id, payload in build_dynamic_events(fleet, specs):
            if kind == "update":
                updater.apply(payload)
            else:
                session = sessions[client_id]
                session.process(payload)
                expected = oracle_results(state.view.objects, payload.query)
                assert session.last_result_ids == set(expected), payload
    finally:
        state.close()
