"""Per-shard persistence: manifests, reopen equivalence, COW mutation."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.sharding import (
    MANIFEST_NAME,
    build_sharded_state,
    config_meta,
    read_manifest,
    save_sharded_state,
)
from repro.sharding.storage import load_shards, shard_file_name
from repro.sim.config import SimulationConfig
from repro.sim.fleet import default_fleet, run_fleet
from repro.storage import ReadOnlyStorageError, StorageError

CONFIG = SimulationConfig.scaled(query_count=8, object_count=700)


@pytest.fixture()
def saved(tmp_path):
    state = build_sharded_state(CONFIG, 3, "grid")
    try:
        manifest = save_sharded_state(state, str(tmp_path / "shards"),
                                      meta=config_meta(CONFIG))
    finally:
        state.close()
    return str(tmp_path / "shards"), manifest


def test_manifest_round_trip(saved):
    directory, written = saved
    manifest = read_manifest(directory)
    assert manifest == written
    assert manifest["shards"] == 3
    assert manifest["partitioner"] == "grid"
    assert manifest["files"] == [shard_file_name(index) for index in range(3)]
    assert sum(manifest["objects_per_shard"]) == CONFIG.object_count
    assert manifest["meta"]["object_count"] == CONFIG.object_count


def test_loaded_shards_keep_their_id_ranges(saved):
    directory, _ = saved
    shards, plan, _ = load_shards(directory)
    try:
        memory = build_sharded_state(CONFIG, 3, "grid")
        try:
            for loaded, built in zip(shards, memory.shards):
                assert sorted(loaded.tree.store.node_ids()) \
                    == sorted(built.tree.store.node_ids())
                assert loaded.root_id == built.root_id
                assert sorted(loaded.tree.objects) == sorted(built.tree.objects)
            assert plan.regions == memory.plan.regions
        finally:
            memory.close()
    finally:
        for shard in shards:
            shard.close()


def test_loaded_shards_are_read_only_without_cow(saved):
    directory, _ = saved
    shards, _, _ = load_shards(directory)
    try:
        from repro.rtree.entry import ObjectRecord
        from repro.geometry import Rect
        with pytest.raises(ReadOnlyStorageError):
            shards[0].tree.insert(ObjectRecord(
                object_id=10 ** 6, mbr=Rect(0.1, 0.1, 0.11, 0.11),
                size_bytes=100))
    finally:
        for shard in shards:
            shard.close()


def test_sharded_fleet_from_disk_matches_memory(saved):
    directory, _ = saved
    fleet = dataclasses.replace(
        default_fleet(3, base=CONFIG), shards=3, partitioner="grid")
    memory_run = run_fleet(fleet)
    disk_run = run_fleet(fleet, store_path=directory)
    assert memory_run.deterministic_group_summary() \
        == disk_run.deterministic_group_summary()
    for memory_client, disk_client in zip(memory_run.clients,
                                          disk_run.clients):
        assert memory_client.final_cache_digest == disk_client.final_cache_digest


def test_dynamic_sharded_fleet_mutates_cow_overlay(saved):
    directory, manifest = saved
    fleet = dataclasses.replace(
        default_fleet(3, base=CONFIG), shards=3, partitioner="grid",
        update_rate=0.1, consistency="versioned")
    memory_run = run_fleet(fleet)
    disk_run = run_fleet(fleet, store_path=directory)
    assert memory_run.update_summary == disk_run.update_summary
    assert memory_run.deterministic_group_summary() \
        == disk_run.deterministic_group_summary()
    # The files stayed untouched: a fresh static run still matches.
    assert read_manifest(directory) == manifest


def test_mismatched_configuration_is_rejected(saved):
    directory, _ = saved
    other = SimulationConfig.scaled(query_count=8, object_count=900)
    with pytest.raises(StorageError):
        build_sharded_state(other, 3, "grid", store_dir=directory)
    with pytest.raises(StorageError):
        build_sharded_state(CONFIG, 2, "grid", store_dir=directory)
    with pytest.raises(StorageError):
        build_sharded_state(CONFIG, 3, "kd", store_dir=directory)


def test_corrupt_manifest_is_rejected(saved, tmp_path):
    directory, _ = saved
    with pytest.raises(StorageError):
        read_manifest(str(tmp_path))  # no manifest at all
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    with pytest.raises(StorageError):
        read_manifest(directory)


def test_missing_shard_file_is_rejected(saved):
    directory, _ = saved
    os.remove(os.path.join(directory, shard_file_name(1)))
    with pytest.raises(StorageError):
        load_shards(directory)


def test_bad_manifest_fields_are_rejected(saved):
    directory, _ = saved
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    manifest = read_manifest(directory)
    for patch in ({"kind": "something-else"},
                  {"partitioner": "voronoi"},
                  {"files": manifest["files"][:1]},
                  {"regions": manifest["regions"][:1]},
                  {"regions": None},
                  {"regions": [values[:2] for values in manifest["regions"]]},
                  {"regions": [["a", "b", "c", "d"]
                               for _ in manifest["regions"]]}):
        broken = dict(manifest)
        broken.update(patch)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(broken, handle)
        with pytest.raises(StorageError):
            read_manifest(directory)
