"""Unit tests of the router-level partition-result cache.

Crafted deployments pin each safety argument of
:mod:`repro.sharding.result_cache` in isolation: canonical variant
decomposition, existence probes, hit/miss accounting, version-stamped
invalidation, GRD eviction under byte pressure, and the three planning
surfaces (range hit-sets, kNN bounds, join gating).
"""

from __future__ import annotations

import math

import pytest

from repro.geometry import Point, Rect
from repro.rtree.entry import ObjectRecord
from repro.rtree.sizes import SizeModel
from repro.sharding import PartitionResultCache, build_sharded_state
from repro.sharding.partitioner import make_plan
from repro.sharding.result_cache import FactStore, GlobalFact, HitSetFact
from repro.sharding.router import ShardRouter
from repro.sharding.shard import build_shards
from repro.sharding.updater import ShardedUpdater
from repro.sim.config import SimulationConfig


def _dot(object_id, x, y, size=64):
    return ObjectRecord(object_id=object_id, size_bytes=size,
                        mbr=Rect(x, y, x + 0.001, y + 0.001))


def _deployment(records, shards=2, partitioner="grid", cache_bytes=64 * 1024):
    """A crafted sharded deployment with a bound result cache."""
    plan = make_plan(records, shards, method=partitioner)
    shard_servers = build_shards(plan, size_model=SizeModel(page_bytes=1024))
    router = ShardRouter(shard_servers, plan)
    cache = PartitionResultCache(capacity_bytes=cache_bytes)
    router.attach_result_cache(cache)
    return router, cache


def _two_corner_records():
    """Shard 0 dense in the left half; shard 1 only at two far corners.

    Shard 1's root MBR spans most of the right half, so root-MBR pruning
    keeps it as a candidate for central windows — exactly the weakness the
    result cache exists to close.
    """
    records = [_dot(i, 0.05 + 0.02 * (i % 10), 0.05 + 0.08 * (i % 10))
               for i in range(20)]
    records.append(_dot(100, 0.55, 0.02))
    records.append(_dot(101, 0.97, 0.97))
    return records


#: A horizontal mid-band window: overlaps both shards' root MBRs, holds
#: shard-0 objects, but no shard-1 object (nor their canonical y-band).
HOT_WINDOW = Rect(0.10, 0.40, 0.70, 0.60)


# --------------------------------------------------------------------------- #
# canonicalization
# --------------------------------------------------------------------------- #
def test_variants_snap_outward_and_contain_the_window():
    cache = PartitionResultCache()
    variants = cache.range_variants(HOT_WINDOW)
    assert [key.split(":")[0] for key, _ in variants] == ["xb", "yb", "w"]
    for _, rect in variants:
        assert rect.contains(HOT_WINDOW)
    # The snapped window is the intersection of the two bands.
    (_, x_band), (_, y_band), (_, window) = variants
    assert window.min_x == x_band.min_x and window.max_x == x_band.max_x
    assert window.min_y == y_band.min_y and window.max_y == y_band.max_y


def test_band_variants_are_shared_across_same_projection_windows():
    cache = PartitionResultCache()
    shifted = Rect(HOT_WINDOW.min_x, 0.39, HOT_WINDOW.max_x, 0.61)
    key = cache.range_variants(HOT_WINDOW)[0][0]
    assert cache.range_variants(shifted)[0][0] == key  # same x-band
    assert cache.range_variants(HOT_WINDOW)[1][0] \
        == cache.range_variants(shifted)[1][0]  # same grid-snapped y-band


def test_degenerate_and_out_of_domain_windows_snap_to_valid_cells():
    cache = PartitionResultCache()
    for window in (Rect(0.5, 0.5, 0.5, 0.5), Rect(-2.0, -2.0, -1.5, -1.5),
                   Rect(1.5, 1.5, 2.0, 2.0), Rect(-1.0, 0.2, 3.0, 0.2)):
        for _, rect in cache.range_variants(window):
            assert 0.0 <= rect.min_x < rect.max_x <= 1.0
            assert 0.0 <= rect.min_y < rect.max_y <= 1.0


def test_grid_must_be_positive():
    with pytest.raises(ValueError):
        PartitionResultCache(grid=0)
    with pytest.raises(ValueError):
        FactStore(0)


# --------------------------------------------------------------------------- #
# the fact store (GRD eviction)
# --------------------------------------------------------------------------- #
def test_fact_store_evicts_under_byte_pressure_and_respects_budget():
    store = FactStore(capacity_bytes=4 * 60)
    for index in range(12):
        store.tick()
        assert store.admit(f"f{index}", GlobalFact(value=1, stamp=0)) is not None
    assert store.used_bytes <= store.capacity_bytes
    assert store.evictions > 0
    assert len(store.items) < 12


def test_fact_store_rejects_oversized_payloads():
    store = FactStore(capacity_bytes=50)
    fact = HitSetFact(rect=Rect.unit(),
                      shards={i: (True, 0) for i in range(10)})
    assert fact.size_bytes > 50
    assert store.admit("big", fact) is None
    assert store.used_bytes == 0


def test_fact_store_resize_reaccounts_grown_facts():
    store = FactStore(capacity_bytes=10_000)
    state = store.admit("w", HitSetFact(rect=Rect.unit()))
    before = store.used_bytes
    state.payload.shards[0] = (True, 1)
    state.payload.shards[1] = (False, 1)
    store.resize(state)
    assert store.used_bytes > before
    assert store.used_bytes == state.size_bytes == state.payload.size_bytes


def test_hot_facts_survive_eviction_over_cold_ones():
    store = FactStore(capacity_bytes=6 * 60)
    store.tick()
    store.admit("hot", GlobalFact(value=1, stamp=0))
    for _ in range(20):
        store.tick()
        store.lookup("hot")
    for index in range(12):
        store.tick()
        store.admit(f"cold{index}", GlobalFact(value=1, stamp=0))
    assert "hot" in store.items


# --------------------------------------------------------------------------- #
# range planning
# --------------------------------------------------------------------------- #
def test_plan_range_skips_mbr_overlapping_but_empty_shard():
    router, cache = _deployment(_two_corner_records())
    shard1 = router.shards[1]
    assert shard1.root_mbr.intersects(HOT_WINDOW)  # root-MBR pruning keeps it
    assert not any(record.mbr.intersects(HOT_WINDOW)
                   for record in shard1.tree.objects.values())
    cache.begin_query()
    candidates = [(i, s) for i, s in router.live_shards()
                  if s.root_mbr.intersects(HOT_WINDOW)]
    allowed = cache.plan_range(HOT_WINDOW, candidates)
    assert 1 not in allowed
    assert 0 in allowed
    assert cache.misses == 1 and cache.hits == 0 and cache.probes > 0


def test_repeat_consults_hit_without_probing():
    router, cache = _deployment(_two_corner_records())
    candidates = [(i, s) for i, s in router.live_shards()]
    cache.begin_query()
    first = cache.plan_range(HOT_WINDOW, candidates)
    probes = cache.probes
    cache.begin_query()
    assert cache.plan_range(HOT_WINDOW, candidates) == first
    assert cache.probes == probes  # answered entirely from facts
    assert cache.hits == 1 and cache.misses == 1


def test_plan_range_never_excludes_a_shard_with_matching_objects():
    """The cached plan is a superset of the true per-shard hit-set."""
    records = _two_corner_records()
    router, cache = _deployment(records, shards=4)
    windows = [Rect(0.1 * i, 0.05 * j, 0.1 * i + 0.18, 0.05 * j + 0.22)
               for i in range(8) for j in range(4)]
    for window in windows:
        cache.begin_query()
        allowed = cache.plan_range(window,
                                   [(i, s) for i, s in router.live_shards()])
        for index, shard in router.live_shards():
            truly_hit = any(record.mbr.intersects(window)
                            for record in shard.tree.objects.values())
            if truly_hit:
                assert index in allowed, (window, index)


def test_record_range_delivery_establishes_positive_facts():
    router, cache = _deployment(_two_corner_records())
    window = Rect(0.05, 0.05, 0.25, 0.85)  # dense shard-0 region
    cache.begin_query()
    cache.record_range_delivery(window, 0)
    probes = cache.probes
    cache.begin_query()
    allowed = cache.plan_range(window, [(0, router.shards[0])])
    assert allowed == {0}
    assert cache.probes == probes  # the delivery observation paid for it
    assert cache.hits == 1


# --------------------------------------------------------------------------- #
# version-stamped invalidation
# --------------------------------------------------------------------------- #
def test_shard_mutation_invalidates_only_that_shards_facts():
    router, cache = _deployment(_two_corner_records())
    updater = ShardedUpdater(router)  # wires the registry
    candidates = [(i, s) for i, s in router.live_shards()]
    cache.begin_query()
    cache.plan_range(HOT_WINDOW, candidates)
    probes = cache.probes
    # A batch touches shard 1: its facts are fenced, shard 0's survive.
    updater.registry.bump_object(100)
    updater.registry.dataset_version += 1  # as the applier does per event
    cache.note_shard_mutated(1)
    cache.begin_query()
    cache.plan_range(HOT_WINDOW, candidates)
    assert cache.probes > probes  # shard 1 re-probed
    assert cache.misses == 2
    # Re-established facts are valid again at the new version.
    probes = cache.probes
    cache.begin_query()
    cache.plan_range(HOT_WINDOW, candidates)
    assert cache.probes == probes
    assert cache.hits == 1


def test_global_facts_are_fenced_by_any_mutation():
    router, cache = _deployment(_two_corner_records())
    updater = ShardedUpdater(router)
    cache.begin_query()
    cache.knn_bound(Point(0.1, 0.1), 2)
    probes = cache.probes
    updater.registry.bump_object(3)
    updater.registry.dataset_version += 1
    cache.note_shard_mutated(0)
    cache.begin_query()
    cache.knn_bound(Point(0.1, 0.1), 2)
    assert cache.probes > probes


# --------------------------------------------------------------------------- #
# kNN bounds
# --------------------------------------------------------------------------- #
def test_knn_bound_upper_bounds_the_true_kth_distance():
    records = _two_corner_records()
    router, cache = _deployment(records)
    for point, k in ((Point(0.1, 0.1), 1), (Point(0.1, 0.1), 3),
                     (Point(0.5, 0.5), 2), (Point(0.9, 0.9), 5)):
        cache.begin_query()
        bound = cache.knn_bound(point, k)
        assert bound is not None
        distances = sorted(
            math.hypot(max(r.mbr.min_x - point.x, point.x - r.mbr.max_x, 0),
                       max(r.mbr.min_y - point.y, point.y - r.mbr.max_y, 0))
            for r in records)
        assert bound >= distances[k - 1] - 1e-12


def test_knn_bound_is_none_when_k_exceeds_population():
    router, cache = _deployment([_dot(1, 0.2, 0.2), _dot(2, 0.8, 0.8)])
    cache.begin_query()
    assert cache.knn_bound(Point(0.5, 0.5), 3) is None
    cache.begin_query()
    assert cache.knn_bound(Point(0.5, 0.5), 2) is not None


def test_knn_bound_memoises_per_cell_and_k():
    router, cache = _deployment(_two_corner_records())
    cache.begin_query()
    cache.knn_bound(Point(0.11, 0.11), 2)
    probes = cache.probes
    cache.begin_query()
    # Same canonical cell: answered from the memoised square.
    cache.knn_bound(Point(0.115, 0.105), 2)
    assert cache.probes == probes
    assert cache.hits == 1


# --------------------------------------------------------------------------- #
# join gating
# --------------------------------------------------------------------------- #
def test_plan_join_pair_count_prune_proves_empty_windows():
    records = [_dot(1, 0.1, 0.1), _dot(2, 0.9, 0.9)]
    router, cache = _deployment(records)
    cache.begin_query()
    # The snapped window around (0.5, 0.5) holds zero objects: provably
    # empty before any shard is contacted.
    assert cache.plan_join(Rect(0.45, 0.45, 0.52, 0.52),
                           [(i, s) for i, s in router.live_shards()]) is None


def test_plan_join_excludes_window_empty_shards():
    router, cache = _deployment(_two_corner_records())
    cache.begin_query()
    plan = cache.plan_join(HOT_WINDOW, [(i, s) for i, s in router.live_shards()
                                        if s.root_mbr.intersects(HOT_WINDOW)])
    # Shard 0 has many objects near the window's x-band; whether the pair
    # count survives depends on the snapped window, but shard 1 can never
    # be expanded.
    assert plan is None or 1 not in plan


def test_plan_join_keeps_shards_holding_pairs():
    records = [_dot(1, 0.41, 0.41), _dot(2, 0.42, 0.42), _dot(3, 0.9, 0.1)]
    router, cache = _deployment(records)
    window = Rect(0.40, 0.40, 0.45, 0.45)
    cache.begin_query()
    plan = cache.plan_join(window, [(i, s) for i, s in router.live_shards()])
    assert plan is not None and 0 in plan


# --------------------------------------------------------------------------- #
# stats surface
# --------------------------------------------------------------------------- #
def test_stats_reports_the_deterministic_counters():
    router, cache = _deployment(_two_corner_records())
    cache.begin_query()
    cache.plan_range(HOT_WINDOW, [(i, s) for i, s in router.live_shards()])
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    assert stats["entries"] > 0
    assert 0 < stats["used_bytes"] <= stats["capacity_bytes"]
    assert set(stats) == {"entries", "used_bytes", "capacity_bytes",
                          "hits", "misses", "probes", "evictions"}


def test_cache_works_against_a_real_dataset_build():
    config = SimulationConfig.scaled(query_count=5, object_count=400)
    state = build_sharded_state(config, 3, "grid")
    try:
        cache = PartitionResultCache(capacity_bytes=8 * 1024)
        state.router.attach_result_cache(cache)
        for window in (Rect(0.2, 0.2, 0.4, 0.4), Rect(0.6, 0.1, 0.9, 0.3)):
            cache.begin_query()
            allowed = cache.plan_range(
                window, [(i, s) for i, s in state.router.live_shards()])
            for index, shard in state.router.live_shards():
                if any(record.mbr.intersects(window)
                       for record in shard.tree.objects.values()):
                    assert index in allowed
    finally:
        state.close()
