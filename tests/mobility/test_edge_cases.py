"""Mobility edge cases: boundary reflection and cross-model determinism.

The thin spots the PR-5 satellite closes: the directed model's reflection
off all four unit-square walls (including corners), pause/leg bookkeeping
across oddly sized time steps, and seed discipline *between* the two models
(the fleet derives both from one seed stream, so they must neither collide
nor couple).
"""

from __future__ import annotations

import math

import pytest

from repro.geometry import Point
from repro.mobility import (
    DirectedMovementModel,
    RandomWaypointModel,
    make_mobility_model,
)


# --------------------------------------------------------------------------- #
# directed-model boundary reflection
# --------------------------------------------------------------------------- #
def _forced_directed(start, heading, leg_length=0.5):
    """A directed model about to pick a destination along ``heading``.

    ``max_turn=0`` pins the heading, so the next `_pick_destination` call
    deterministically pushes past the wall the heading points at.
    """
    model = DirectedMovementModel(speed=0.01, seed=0, start=start,
                                  max_turn=0.0, leg_length=leg_length,
                                  max_pause_seconds=0.0)
    model._heading = heading
    model._destination = model._pick_destination()
    return model


@pytest.mark.parametrize("start,heading", [
    (Point(0.95, 0.5), 0.0),             # straight into the right wall
    (Point(0.05, 0.5), math.pi),         # straight into the left wall
    (Point(0.5, 0.95), math.pi / 2),     # straight into the top wall
    (Point(0.5, 0.05), -math.pi / 2),    # straight into the bottom wall
])
def test_destination_is_clamped_to_the_wall(start, heading):
    model = _forced_directed(start, heading)
    destination = model._destination
    assert 0.0 <= destination.x <= 1.0
    assert 0.0 <= destination.y <= 1.0


def test_x_reflection_flips_heading_horizontally():
    model = _forced_directed(Point(0.95, 0.5), 0.0)
    # The heading pointed at +x; after reflecting it must point at -x
    # (pi - h), so the following leg moves away from the wall.
    assert math.cos(model._heading) == pytest.approx(-1.0)
    assert math.sin(model._heading) == pytest.approx(0.0, abs=1e-12)


def test_y_reflection_negates_heading():
    model = _forced_directed(Point(0.5, 0.95), math.pi / 2)
    assert math.sin(model._heading) == pytest.approx(-1.0)


def test_corner_reflects_both_axes():
    model = _forced_directed(Point(0.98, 0.98), math.pi / 4)
    heading = model._heading
    # Both components must now point back into the square.
    assert math.cos(heading) < 0.0
    assert math.sin(heading) < 0.0
    destination = model._destination
    assert 0.0 <= destination.x <= 1.0
    assert 0.0 <= destination.y <= 1.0


def test_long_run_near_walls_stays_inside():
    """Grinding along the boundary never escapes or gets stuck in a corner."""
    model = DirectedMovementModel(speed=0.05, seed=13, start=Point(0.999, 0.001),
                                  max_pause_seconds=0.0)
    positions = [model.advance(7.3) for _ in range(2000)]
    assert all(0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0 for p in positions)
    # It keeps moving (not wedged in the corner it started next to).
    assert max(p.distance_to(Point(0.999, 0.001)) for p in positions) > 0.1


# --------------------------------------------------------------------------- #
# pause / leg bookkeeping across odd step sizes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("model_cls", [RandomWaypointModel,
                                       DirectedMovementModel])
def test_many_small_steps_equal_one_big_step(model_cls):
    """Advancing is additive in elapsed time for a fixed seed."""
    coarse = model_cls(speed=0.01, seed=21)
    fine = model_cls(speed=0.01, seed=21)
    coarse_position = coarse.advance(300.0)
    for _ in range(300):
        fine_position = fine.advance(1.0)
    assert coarse_position.x == pytest.approx(fine_position.x, abs=1e-9)
    assert coarse_position.y == pytest.approx(fine_position.y, abs=1e-9)


def test_arrival_exactly_at_destination_starts_a_pause():
    model = RandomWaypointModel(speed=0.01, seed=4, max_pause_seconds=60.0)
    destination = model._destination
    travel_time = model.position.distance_to(destination) / model._current_speed
    position = model.advance(travel_time)
    assert position.x == pytest.approx(destination.x)
    assert position.y == pytest.approx(destination.y)
    assert model._pause_remaining >= 0.0


def test_negative_elapsed_time_is_treated_as_zero():
    model = RandomWaypointModel(speed=0.01, seed=8)
    start = model.position
    assert model.advance(-5.0) == start


# --------------------------------------------------------------------------- #
# cross-model seed determinism
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ["RAN", "DIR"])
def test_factory_trajectories_are_reproducible(name):
    a = make_mobility_model(name, speed=0.01, seed=77)
    b = make_mobility_model(name, speed=0.01, seed=77)
    for _ in range(100):
        assert a.advance(13.7) == b.advance(13.7)


@pytest.mark.parametrize("name", ["RAN", "DIR"])
def test_different_seeds_decorrelate(name):
    a = make_mobility_model(name, speed=0.01, seed=1)
    b = make_mobility_model(name, speed=0.01, seed=2)
    positions_a = [a.advance(40.0) for _ in range(30)]
    positions_b = [b.advance(40.0) for _ in range(30)]
    assert positions_a != positions_b


def test_models_do_not_share_global_random_state():
    """Interleaving two models must not perturb either trajectory."""
    solo_ran = make_mobility_model("RAN", speed=0.01, seed=31)
    solo_dir = make_mobility_model("DIR", speed=0.01, seed=31)
    solo = [(solo_ran.advance(25.0), solo_dir.advance(25.0))
            for _ in range(50)]
    mixed_ran = make_mobility_model("RAN", speed=0.01, seed=31)
    mixed_dir = make_mobility_model("DIR", speed=0.01, seed=31)
    import random
    mixed = []
    for step in range(50):
        random.random()  # global RNG noise must be irrelevant
        ran_position = mixed_ran.advance(25.0)
        random.random()
        dir_position = mixed_dir.advance(25.0)
        mixed.append((ran_position, dir_position))
    assert solo == mixed


def test_same_seed_produces_distinct_ran_and_dir_paths():
    """The two models consume their seed streams differently by design."""
    ran = make_mobility_model("RAN", speed=0.01, seed=5)
    dir_ = make_mobility_model("DIR", speed=0.01, seed=5)
    assert [ran.advance(60.0) for _ in range(20)] \
        != [dir_.advance(60.0) for _ in range(20)]
