"""Tests for the RAN / DIR mobility models and the Poisson arrival process."""

import math
import statistics

import pytest

from repro.geometry import Point
from repro.mobility import (
    DirectedMovementModel,
    PoissonThinkTime,
    RandomWaypointModel,
    make_mobility_model,
)


@pytest.mark.parametrize("model_cls", [RandomWaypointModel, DirectedMovementModel])
def test_positions_stay_in_unit_square(model_cls):
    model = model_cls(speed=0.01, seed=3)
    for _ in range(500):
        position = model.advance(30.0)
        assert 0.0 <= position.x <= 1.0
        assert 0.0 <= position.y <= 1.0


@pytest.mark.parametrize("model_cls", [RandomWaypointModel, DirectedMovementModel])
def test_speed_bounds_displacement(model_cls):
    model = model_cls(speed=0.001, seed=5)
    previous = model.position
    for _ in range(200):
        current = model.advance(10.0)
        # Maximum displacement is bounded by 1.5x speed x elapsed time.
        assert previous.distance_to(current) <= 0.001 * 1.5 * 10.0 + 1e-9
        previous = current


@pytest.mark.parametrize("model_cls", [RandomWaypointModel, DirectedMovementModel])
def test_trajectory_is_deterministic_per_seed(model_cls):
    a = model_cls(speed=0.01, seed=11)
    b = model_cls(speed=0.01, seed=11)
    for _ in range(50):
        assert a.advance(20.0) == b.advance(20.0)


@pytest.mark.parametrize("model_cls", [RandomWaypointModel, DirectedMovementModel])
def test_zero_elapsed_time_keeps_position(model_cls):
    model = model_cls(speed=0.01, seed=1)
    start = model.position
    assert model.advance(0.0) == start


def test_invalid_speed_rejected():
    with pytest.raises(ValueError):
        RandomWaypointModel(speed=0.0)


def test_reset_restores_start():
    model = RandomWaypointModel(speed=0.01, seed=2)
    model.advance(100.0)
    model.reset(Point(0.25, 0.25))
    assert model.position == Point(0.25, 0.25)


def test_directed_movement_has_lower_locality_than_random_waypoint():
    """DIR drifts away steadily; RAN revisits: mean displacement over the same
    horizon should be at least as large under DIR (the paper's rationale for
    DIR being the harder model for caching)."""
    def total_path_spread(model, steps=60, dt=50.0):
        points = [model.advance(dt) for _ in range(steps)]
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return statistics.pstdev(xs) + statistics.pstdev(ys)

    speed = 0.0005
    ran = RandomWaypointModel(speed=speed, seed=9, max_pause_seconds=0.0)
    dir_ = DirectedMovementModel(speed=speed, seed=9, max_pause_seconds=0.0)
    # Not a strict inequality in every run, so use a generous tolerance.
    assert total_path_spread(dir_) >= 0.3 * total_path_spread(ran)


def test_make_mobility_model_factory():
    assert isinstance(make_mobility_model("RAN", speed=0.01), RandomWaypointModel)
    assert isinstance(make_mobility_model("dir", speed=0.01), DirectedMovementModel)
    with pytest.raises(ValueError):
        make_mobility_model("TELEPORT", speed=0.01)


def test_poisson_think_time_mean():
    arrival = PoissonThinkTime(mean_seconds=50.0, seed=7)
    samples = [arrival.sample() for _ in range(5_000)]
    assert statistics.mean(samples) == pytest.approx(50.0, rel=0.1)
    assert all(s >= 0 for s in samples)


def test_poisson_stream_and_validation():
    arrival = PoissonThinkTime(mean_seconds=10.0, seed=1)
    stream = arrival.stream()
    assert next(stream) >= 0.0
    with pytest.raises(ValueError):
        PoissonThinkTime(mean_seconds=0.0)
