"""Tests for query generation, the k-ramp schedule and trace serialisation."""

import pytest

from repro.geometry import Point, Rect
from repro.workload import (
    JoinQuery,
    KNNQuery,
    KnnRampSchedule,
    QueryGenerator,
    QueryMix,
    QueryTrace,
    QueryType,
    RangeQuery,
    TraceRecord,
)


ANCHOR = Point(0.5, 0.5)


# --------------------------------------------------------------------------- #
# generator
# --------------------------------------------------------------------------- #
def test_range_query_centred_near_anchor_with_expected_area():
    generator = QueryGenerator(window_area=1e-3, seed=1)
    for _ in range(50):
        query = generator.range_query(ANCHOR)
        assert query.window.contains_point(ANCHOR)
        assert 0.3e-3 <= query.window.area() <= 1.6e-3


def test_range_query_clamped_at_borders():
    generator = QueryGenerator(window_area=1e-2, seed=2)
    query = generator.range_query(Point(0.001, 0.999))
    assert Rect.unit().contains(query.window)


def test_knn_query_k_bounds_and_override():
    generator = QueryGenerator(k_max=5, seed=3)
    ks = {generator.knn_query(ANCHOR).k for _ in range(200)}
    assert ks <= set(range(1, 6))
    assert len(ks) > 1
    assert generator.knn_query(ANCHOR, k=9).k == 9


def test_join_query_parameters():
    generator = QueryGenerator(window_area=1e-3, join_distance=0.02, seed=4)
    query = generator.join_query(ANCHOR)
    assert query.threshold == 0.02
    assert query.window.area() == pytest.approx(4e-3, rel=0.05)


def test_mix_weights_respected():
    generator = QueryGenerator(mix=QueryMix(range_=0.0, knn=1.0, join=0.0), seed=5)
    queries = [generator.next_query(ANCHOR) for _ in range(50)]
    assert all(isinstance(q, KNNQuery) for q in queries)


def test_mixed_workload_contains_all_types():
    generator = QueryGenerator(seed=6)
    types = {generator.next_query(ANCHOR).query_type for _ in range(200)}
    assert types == {QueryType.RANGE, QueryType.KNN, QueryType.JOIN}


def test_generator_deterministic_per_seed():
    a = QueryGenerator(seed=8)
    b = QueryGenerator(seed=8)
    for _ in range(20):
        assert a.next_query(ANCHOR) == b.next_query(ANCHOR)


def test_invalid_generator_parameters():
    with pytest.raises(ValueError):
        QueryGenerator(window_area=0.0)
    with pytest.raises(ValueError):
        QueryGenerator(k_max=0)
    with pytest.raises(ValueError):
        QueryMix(range_=-1.0)
    with pytest.raises(ValueError):
        QueryMix(range_=0.0, knn=0.0, join=0.0)


# --------------------------------------------------------------------------- #
# k-ramp schedule
# --------------------------------------------------------------------------- #
def test_knn_ramp_endpoints_and_midpoint():
    schedule = KnnRampSchedule(total_queries=1_000, k_high=10, k_low=1)
    assert schedule.k_at(0) == 10
    assert schedule.k_at(499) in (1, 2)
    assert schedule.k_at(999) in (9, 10)


def test_knn_ramp_monotone_down_then_up():
    schedule = KnnRampSchedule(total_queries=200)
    first_half = [schedule.k_at(i) for i in range(0, 100)]
    second_half = [schedule.k_at(i) for i in range(100, 200)]
    assert all(a >= b for a, b in zip(first_half, first_half[1:]))
    assert all(a <= b for a, b in zip(second_half, second_half[1:]))


def test_knn_ramp_out_of_range_indices_clamped():
    schedule = KnnRampSchedule(total_queries=100)
    assert schedule.k_at(-5) == schedule.k_at(0)
    assert schedule.k_at(1_000) == schedule.k_at(99)


def test_knn_ramp_validation():
    with pytest.raises(ValueError):
        KnnRampSchedule(total_queries=1)
    with pytest.raises(ValueError):
        KnnRampSchedule(total_queries=100, k_high=2, k_low=5)


# --------------------------------------------------------------------------- #
# trace
# --------------------------------------------------------------------------- #
def _sample_trace():
    trace = QueryTrace()
    trace.append(TraceRecord(index=0, position=Point(0.1, 0.2), think_time=12.5,
                             query=RangeQuery(window=Rect(0.1, 0.1, 0.2, 0.2))))
    trace.append(TraceRecord(index=1, position=Point(0.3, 0.4), think_time=3.0,
                             query=KNNQuery(point=Point(0.3, 0.4), k=4)))
    trace.append(TraceRecord(index=2, position=Point(0.5, 0.6), think_time=88.0,
                             query=JoinQuery(window=Rect(0.4, 0.4, 0.6, 0.6), threshold=0.05)))
    return trace


def test_trace_round_trips_through_json():
    trace = _sample_trace()
    restored = QueryTrace.from_json(trace.to_json())
    assert len(restored) == len(trace)
    for original, loaded in zip(trace, restored):
        assert loaded.index == original.index
        assert loaded.position == original.position
        assert loaded.think_time == pytest.approx(original.think_time)
        assert loaded.query == original.query


def test_trace_indexing_and_iteration():
    trace = _sample_trace()
    assert trace[1].query.k == 4
    assert [record.index for record in trace] == [0, 1, 2]


def test_trace_rejects_unknown_query_type():
    bad = '[{"index": 0, "position": [0, 0], "think_time": 1, "query": {"type": "cube"}}]'
    with pytest.raises(ValueError):
        QueryTrace.from_json(bad)
