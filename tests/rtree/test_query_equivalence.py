"""Optimised query kernels must return exactly what the seed kernels did.

The PR 2 rewrites — squared-distance kNN with k-th-best pruning, the
inlined range-search window test, the squared join predicate and the
prefix/suffix-bounds R* split — all claim decision identity with the seed
implementations.  These tests keep verbatim ports of the seed algorithms
and compare outputs (including visited-node sets, which feed the supporting
index the server ships) on randomized trees and queries.
"""

import heapq
import itertools
import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RTree, assert_tree_valid, bulk_load_str
from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.join import bfrj_join, distance_predicate, rtree_join
from repro.rtree.knn import knn_search
from repro.rtree.range_search import range_search
from repro.rtree.sizes import SizeModel
from repro.rtree.split import rstar_split


def make_tree(count, seed, page_bytes=512):
    rng = random.Random(seed)
    records = []
    for object_id in range(count):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * 0.01, rng.random() * 0.01
        records.append(ObjectRecord(
            object_id=object_id,
            mbr=Rect(x, y, min(1.0, x + w), min(1.0, y + h)),
            size_bytes=1000))
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=page_bytes))
    assert_tree_valid(tree)
    return tree, records


# --------------------------------------------------------------------- #
# reference (seed) kernels
# --------------------------------------------------------------------- #
def seed_knn_search(tree, query_point, k, visited_nodes=None):
    if k <= 0:
        return []
    results = []
    if not tree.root.entries:
        return results
    counter = itertools.count()
    heap = []
    heapq.heappush(heap, (0.0, next(counter), tree.root_id, None))
    while heap and len(results) < k:
        distance, _, node_id, object_id = heapq.heappop(heap)
        if object_id is not None:
            results.append((object_id, distance))
            continue
        node = tree.node(node_id)
        if visited_nodes is not None:
            visited_nodes.add(node_id)
        for entry in node.entries:
            entry_distance = entry.mbr.min_dist_to_point(query_point)
            if entry.is_leaf_entry:
                heapq.heappush(heap, (entry_distance, next(counter), None, entry.object_id))
            else:
                heapq.heappush(heap, (entry_distance, next(counter), entry.child_id, None))
    return results


def seed_range_search(tree, window, visited_nodes=None):
    results = []
    if not tree.root.entries:
        return results
    stack = [tree.root_id]
    while stack:
        node_id = stack.pop()
        node = tree.node(node_id)
        if visited_nodes is not None:
            visited_nodes.add(node_id)
        for entry in node.entries:
            if not entry.mbr.intersects(window):
                continue
            if entry.is_leaf_entry:
                results.append(entry.object_id)
            else:
                stack.append(entry.child_id)
    return results


def seed_distance_predicate(threshold):
    def predicate(a, b):
        return a.min_dist_to_rect(b) <= threshold
    return predicate


def seed_rstar_split(entries, min_fill):
    entries = list(entries)
    total = len(entries)
    min_fill = max(1, min(min_fill, total - 1))

    def group_mbr(group):
        return Rect.bounding(e.mbr for e in group)

    def margin(group):
        return group_mbr(group).margin() if group else 0.0

    best_axis = None
    best_axis_margin = float("inf")
    axis_sortings = {}
    for axis in ("x", "y"):
        if axis == "x":
            by_lower = sorted(entries, key=lambda e: (e.mbr.min_x, e.mbr.max_x))
            by_upper = sorted(entries, key=lambda e: (e.mbr.max_x, e.mbr.min_x))
        else:
            by_lower = sorted(entries, key=lambda e: (e.mbr.min_y, e.mbr.max_y))
            by_upper = sorted(entries, key=lambda e: (e.mbr.max_y, e.mbr.min_y))
        margin_sum = 0.0
        for ordering in (by_lower, by_upper):
            for split_at in range(min_fill, total - min_fill + 1):
                margin_sum += margin(ordering[:split_at]) + margin(ordering[split_at:])
        axis_sortings[axis] = (by_lower, by_upper)
        if margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis = axis

    by_lower, by_upper = axis_sortings[best_axis]
    best_split = ([], [])
    best_overlap = float("inf")
    best_area = float("inf")
    for ordering in (by_lower, by_upper):
        for split_at in range(min_fill, total - min_fill + 1):
            left, right = ordering[:split_at], ordering[split_at:]
            left_mbr, right_mbr = group_mbr(left), group_mbr(right)
            overlap = left_mbr.intersection_area(right_mbr)
            area = left_mbr.area() + right_mbr.area()
            if overlap < best_overlap or (overlap == best_overlap and area < best_area):
                best_overlap = overlap
                best_area = area
                best_split = (list(left), list(right))
    return best_split


# --------------------------------------------------------------------- #
# equivalence tests
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", (1, 9, 33))
def test_knn_identical_to_seed_kernel(seed):
    tree, _ = make_tree(400, seed)
    rng = random.Random(seed * 7 + 1)
    for _ in range(40):
        point = Point(rng.random(), rng.random())
        k = rng.randint(1, 25)
        seed_visited, new_visited = set(), set()
        expected = seed_knn_search(tree, point, k, visited_nodes=seed_visited)
        got = knn_search(tree, point, k, visited_nodes=new_visited)
        assert [oid for oid, _ in got] == [oid for oid, _ in expected]
        assert [d for _, d in got] == pytest.approx([d for _, d in expected])
        assert new_visited == seed_visited, (
            "pruning must not change the supporting-index pages visited")


@pytest.mark.parametrize("seed", (2, 17))
def test_range_identical_to_seed_kernel(seed):
    tree, _ = make_tree(400, seed)
    rng = random.Random(seed + 100)
    for _ in range(40):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * 0.2, rng.random() * 0.2
        window = Rect(x, y, min(1.0, x + w), min(1.0, y + h))
        seed_visited, new_visited = set(), set()
        expected = seed_range_search(tree, window, visited_nodes=seed_visited)
        got = range_search(tree, window, visited_nodes=new_visited)
        assert got == expected  # order included
        assert new_visited == seed_visited


@pytest.mark.parametrize("seed", (4, 23))
@pytest.mark.parametrize("algorithm", (rtree_join, bfrj_join))
def test_join_identical_with_squared_predicate(seed, algorithm):
    tree, _ = make_tree(250, seed)
    rng = random.Random(seed)
    for _ in range(6):
        threshold = rng.random() * 0.05
        expected = algorithm(tree, tree, seed_distance_predicate(threshold),
                             self_join=True)
        got = algorithm(tree, tree, distance_predicate(threshold), self_join=True)
        assert got == expected  # same pairs, same order


@pytest.mark.parametrize("seed", (5, 12, 31))
def test_rstar_split_identical_to_seed_kernel(seed):
    rng = random.Random(seed)
    for trial in range(30):
        count = rng.randint(4, 40)
        entries = []
        for index in range(count):
            x, y = rng.random(), rng.random()
            w, h = rng.random() * 0.3, rng.random() * 0.3
            entries.append(Entry(mbr=Rect(x, y, x + w, y + h), object_id=index))
        min_fill = rng.randint(1, max(1, count // 2))
        expected = seed_rstar_split(entries, min_fill)
        got = rstar_split(entries, min_fill)
        assert got[0] == expected[0] and got[1] == expected[1], (
            f"trial {trial}: split decision diverged")


@pytest.mark.parametrize("seed", (5, 12))
def test_rstar_split_preserves_tree_invariants_under_mutation(seed):
    """The split decisions above, exercised in situ: every insert-driven
    split and delete-driven condense must leave a structurally valid tree
    (checked with the shared assert_tree_valid helper after each mutation).
    """
    _, records = make_tree(120, seed)
    tree = RTree(size_model=SizeModel(page_bytes=256))
    for record in records:
        tree.insert(record)
        assert_tree_valid(tree)
    rng = random.Random(seed)
    for object_id in rng.sample(range(120), 60):
        assert tree.delete(object_id)
        assert_tree_valid(tree)
    assert len(tree) == 60
