"""Tests for the byte-size model."""

import pytest

from repro.rtree.sizes import SizeModel


def test_entry_bytes_composition():
    model = SizeModel(coordinate_bytes=8, pointer_bytes=4)
    assert model.entry_bytes == 4 * 8 + 4


def test_node_capacity_from_page_size():
    model = SizeModel(page_bytes=4096)
    assert model.node_capacity == 4096 // model.entry_bytes
    assert model.node_capacity >= 2


def test_node_capacity_never_below_two():
    model = SizeModel(page_bytes=8)
    assert model.node_capacity == 2


def test_node_bytes_scales_with_entries():
    model = SizeModel()
    assert model.node_bytes(10) - model.node_bytes(9) == model.entry_bytes


def test_super_entry_is_larger_than_entry():
    model = SizeModel()
    assert model.super_entry_bytes() == model.entry_bytes + model.pointer_bytes


def test_query_descriptor_and_id_list_bytes():
    model = SizeModel()
    assert model.query_descriptor_bytes(0) == model.query_header_bytes + model.rect_bytes()
    assert model.id_list_bytes(10) == 10 * model.object_id_bytes
    assert model.point_bytes() == 2 * model.coordinate_bytes


def test_frontier_entry_bytes_positive():
    assert SizeModel().frontier_entry_bytes() > 0
