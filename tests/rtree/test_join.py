"""Tests for the RJ and BFRJ spatial joins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.rtree import SizeModel, bulk_load_str
from repro.rtree.entry import ObjectRecord
from repro.rtree.join import bfrj_join, distance_predicate, intersection_predicate, rtree_join

from tests.conftest import make_records


def brute_force_self_join(records, threshold):
    pairs = set()
    for i, left in enumerate(records):
        for right in records[i + 1:]:
            if left.mbr.min_dist_to_rect(right.mbr) <= threshold:
                pairs.add((min(left.object_id, right.object_id),
                           max(left.object_id, right.object_id)))
    return pairs


def brute_force_cross_join(left_records, right_records, predicate):
    pairs = set()
    for left in left_records:
        for right in right_records:
            if predicate(left.mbr, right.mbr):
                pairs.add((left.object_id, right.object_id))
    return pairs


@pytest.fixture(scope="module")
def join_records():
    return make_records(80, seed=11)


@pytest.fixture(scope="module")
def join_tree(join_records):
    return bulk_load_str(join_records, size_model=SizeModel(page_bytes=256))


@pytest.mark.parametrize("join", [rtree_join, bfrj_join])
def test_self_join_matches_bruteforce(join, join_tree, join_records):
    threshold = 0.05
    expected = brute_force_self_join(join_records, threshold)
    result = join(join_tree, join_tree, distance_predicate(threshold), self_join=True)
    assert set(result) == expected


@pytest.mark.parametrize("join", [rtree_join, bfrj_join])
def test_self_join_excludes_identity_pairs(join, join_tree):
    result = join(join_tree, join_tree, distance_predicate(0.1), self_join=True)
    assert all(a < b for a, b in result)


@pytest.mark.parametrize("join", [rtree_join, bfrj_join])
def test_cross_join_matches_bruteforce(join, join_records):
    left_records = join_records[:40]
    right_records = [ObjectRecord(r.object_id + 1000, r.mbr, r.size_bytes)
                     for r in join_records[40:]]
    left = bulk_load_str(left_records, size_model=SizeModel(page_bytes=256))
    right = bulk_load_str(right_records, size_model=SizeModel(page_bytes=256))
    predicate = distance_predicate(0.08)
    expected = brute_force_cross_join(left_records, right_records, predicate)
    assert set(join(left, right, predicate)) == expected


@pytest.mark.parametrize("join", [rtree_join, bfrj_join])
def test_intersection_join(join, join_records):
    # Grow the rectangles so that intersections actually occur.
    grown = [ObjectRecord(r.object_id, r.mbr.buffered(0.02).clamped_unit(), r.size_bytes)
             for r in join_records]
    tree = bulk_load_str(grown, size_model=SizeModel(page_bytes=256))
    predicate = intersection_predicate()
    expected = {(min(a.object_id, b.object_id), max(a.object_id, b.object_id))
                for i, a in enumerate(grown) for b in grown[i + 1:]
                if a.mbr.intersects(b.mbr)}
    result = join(tree, tree, predicate, self_join=True)
    assert set(result) == expected


@pytest.mark.parametrize("join", [rtree_join, bfrj_join])
def test_join_on_empty_tree(join, join_tree):
    empty = bulk_load_str([], size_model=SizeModel(page_bytes=256))
    assert join(empty, join_tree, distance_predicate(0.1)) == []
    assert join(join_tree, empty, distance_predicate(0.1)) == []


def test_rj_and_bfrj_agree(join_tree):
    predicate = distance_predicate(0.03)
    assert set(rtree_join(join_tree, join_tree, predicate, self_join=True)) == \
        set(bfrj_join(join_tree, join_tree, predicate, self_join=True))


def test_join_collects_visited_nodes(join_tree):
    visited_left, visited_right = set(), set()
    rtree_join(join_tree, join_tree, distance_predicate(0.02),
               visited_left=visited_left, visited_right=visited_right, self_join=True)
    assert join_tree.root_id in visited_left
    assert join_tree.root_id in visited_right


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=500),
       st.floats(min_value=0.0, max_value=0.1))
def test_join_property(count, seed, threshold):
    records = make_records(count, seed=seed)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=256))
    expected = brute_force_self_join(records, threshold)
    got = set(bfrj_join(tree, tree, distance_predicate(threshold), self_join=True))
    assert got == expected
