"""Tests for repro.rtree.entry."""

import pytest

from repro.geometry import Rect
from repro.rtree.entry import Entry, ObjectRecord


def test_entry_requires_exactly_one_reference():
    with pytest.raises(ValueError):
        Entry(mbr=Rect(0, 0, 1, 1))
    with pytest.raises(ValueError):
        Entry(mbr=Rect(0, 0, 1, 1), child_id=1, object_id=2)


def test_leaf_entry_flag():
    leaf = Entry(mbr=Rect(0, 0, 0.1, 0.1), object_id=7)
    node = Entry(mbr=Rect(0, 0, 0.1, 0.1), child_id=3)
    assert leaf.is_leaf_entry
    assert not node.is_leaf_entry


def test_entry_key_is_stable_and_distinct():
    leaf = Entry(mbr=Rect(0, 0, 0.1, 0.1), object_id=7)
    node = Entry(mbr=Rect(0, 0, 0.1, 0.1), child_id=7)
    assert leaf.key() == "obj:7"
    assert node.key() == "node:7"
    assert leaf.key() != node.key()


def test_object_record_centroid():
    record = ObjectRecord(object_id=1, mbr=Rect(0.0, 0.0, 0.2, 0.4), size_bytes=100)
    assert record.centroid.x == pytest.approx(0.1)
    assert record.centroid.y == pytest.approx(0.2)
