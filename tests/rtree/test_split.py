"""Tests for the R* and quadratic node-split heuristics."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.rtree import RTree, SizeModel, assert_tree_valid
from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.split import quadratic_split, rstar_split


def _entries(count, seed=0):
    rng = random.Random(seed)
    entries = []
    for index in range(count):
        x, y = rng.random(), rng.random()
        entries.append(Entry(mbr=Rect(x, y, x + 0.01, y + 0.01), object_id=index))
    return entries


@pytest.mark.parametrize("splitter", [rstar_split, quadratic_split])
def test_split_partitions_all_entries(splitter):
    entries = _entries(20)
    left, right = splitter(entries, min_fill=4)
    assert len(left) + len(right) == len(entries)
    assert {e.object_id for e in left} | {e.object_id for e in right} == set(range(20))
    assert {e.object_id for e in left} & {e.object_id for e in right} == set()


@pytest.mark.parametrize("splitter", [rstar_split, quadratic_split])
def test_split_respects_min_fill(splitter):
    entries = _entries(15, seed=3)
    left, right = splitter(entries, min_fill=5)
    assert len(left) >= 5
    assert len(right) >= 5


@pytest.mark.parametrize("splitter", [rstar_split, quadratic_split])
def test_split_rejects_single_entry(splitter):
    with pytest.raises(ValueError):
        splitter(_entries(1), min_fill=1)


def test_split_two_entries():
    entries = _entries(2)
    left, right = rstar_split(entries, min_fill=1)
    assert len(left) == 1 and len(right) == 1


def test_rstar_split_separates_two_clusters():
    cluster_a = [Entry(mbr=Rect(0.0 + i * 0.01, 0.0, 0.01 + i * 0.01, 0.01), object_id=i)
                 for i in range(5)]
    cluster_b = [Entry(mbr=Rect(0.8 + i * 0.01, 0.9, 0.81 + i * 0.01, 0.91), object_id=10 + i)
                 for i in range(5)]
    left, right = rstar_split(cluster_a + cluster_b, min_fill=2)
    left_ids = {e.object_id for e in left}
    right_ids = {e.object_id for e in right}
    groups = [{e.object_id for e in cluster_a}, {e.object_id for e in cluster_b}]
    assert left_ids in groups and right_ids in groups


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=4, max_value=40), st.integers(min_value=0, max_value=1000))
def test_rstar_split_property(count, seed):
    entries = _entries(count, seed=seed)
    min_fill = max(1, count // 3)
    left, right = rstar_split(entries, min_fill=min_fill)
    assert len(left) + len(right) == count
    assert min(len(left), len(right)) >= min(min_fill, count - min_fill)


@pytest.mark.parametrize("splitter", [rstar_split, quadratic_split])
def test_split_driven_tree_build_keeps_invariants(splitter):
    """Splits exercised through the tree itself: every overflow the build
    triggers must leave a structurally valid tree (assert_tree_valid)."""
    rng = random.Random(8)
    tree = RTree(size_model=SizeModel(page_bytes=256), splitter=splitter)
    for object_id in range(80):
        x, y = rng.random(), rng.random()
        tree.insert(ObjectRecord(object_id=object_id,
                                 mbr=Rect(x, y, min(1.0, x + 0.01),
                                          min(1.0, y + 0.01)),
                                 size_bytes=1000))
        assert_tree_valid(tree)
    assert tree.height >= 2
