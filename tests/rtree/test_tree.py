"""Tests for the dynamic R*-tree (insertion, deletion, invariants)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect
from repro.rtree import RTree, SizeModel
from repro.rtree.entry import ObjectRecord
from repro.rtree.range_search import range_search
from repro.rtree.split import quadratic_split

from tests.conftest import make_records


def test_empty_tree_basics():
    tree = RTree(size_model=SizeModel(page_bytes=256))
    assert len(tree) == 0
    assert tree.height == 1
    assert tree.root.is_leaf
    assert range_search(tree, Rect.unit()) == []


def test_insert_single_object():
    tree = RTree(size_model=SizeModel(page_bytes=256))
    tree.insert(ObjectRecord(1, Rect(0.1, 0.1, 0.2, 0.2), 100))
    assert len(tree) == 1
    assert range_search(tree, Rect.unit()) == [1]
    tree.validate()


def test_duplicate_object_id_rejected():
    tree = RTree(size_model=SizeModel(page_bytes=256))
    tree.insert(ObjectRecord(1, Rect(0.1, 0.1, 0.2, 0.2), 100))
    with pytest.raises(ValueError):
        tree.insert(ObjectRecord(1, Rect(0.3, 0.3, 0.4, 0.4), 100))


def test_dynamic_build_invariants(dynamic_tree):
    dynamic_tree.validate(check_min_fill=True)
    assert dynamic_tree.height >= 2
    assert len(dynamic_tree) == 120


def test_dynamic_build_range_results_match_bruteforce(dynamic_tree, small_records):
    window = Rect(0.2, 0.2, 0.6, 0.6)
    expected = sorted(r.object_id for r in small_records if r.mbr.intersects(window))
    assert sorted(range_search(dynamic_tree, window)) == expected


def test_quadratic_splitter_builds_valid_tree(small_records):
    tree = RTree(size_model=SizeModel(page_bytes=256), splitter=quadratic_split,
                 forced_reinsert=False)
    tree.insert_all(small_records)
    tree.validate()
    assert sorted(range_search(tree, Rect.unit())) == [r.object_id for r in small_records]


def test_no_forced_reinsert_still_valid(small_records):
    tree = RTree(size_model=SizeModel(page_bytes=256), forced_reinsert=False)
    tree.insert_all(small_records)
    tree.validate()


def test_delete_removes_object(dynamic_tree):
    assert dynamic_tree.delete(10)
    assert 10 not in dynamic_tree.objects
    assert 10 not in range_search(dynamic_tree, Rect.unit())
    dynamic_tree.validate()


def test_delete_missing_returns_false(dynamic_tree):
    assert not dynamic_tree.delete(10_000)


def test_delete_many_keeps_invariants(dynamic_tree):
    rng = random.Random(4)
    victims = rng.sample(range(120), 60)
    for object_id in victims:
        assert dynamic_tree.delete(object_id)
    dynamic_tree.validate()
    remaining = sorted(range_search(dynamic_tree, Rect.unit()))
    assert remaining == sorted(set(range(120)) - set(victims))


def test_delete_everything(dynamic_tree):
    for object_id in range(120):
        dynamic_tree.delete(object_id)
    assert len(dynamic_tree) == 0
    assert range_search(dynamic_tree, Rect.unit()) == []


def test_index_and_dataset_bytes(dynamic_tree):
    assert dynamic_tree.index_bytes() > 0
    assert dynamic_tree.dataset_bytes() == 120 * 1000


def test_root_entry_references_root(dynamic_tree):
    entry = dynamic_tree.root_entry()
    assert entry.child_id == dynamic_tree.root_id
    assert entry.mbr.contains(dynamic_tree.root.mbr())


def test_max_entries_must_be_at_least_two():
    with pytest.raises(ValueError):
        RTree(max_entries=1)


def test_page_store_read_counter(dynamic_tree):
    before = dynamic_tree.store.reads
    range_search(dynamic_tree, Rect(0.4, 0.4, 0.5, 0.5))
    assert dynamic_tree.store.reads > before


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10_000))
def test_insertion_property_all_objects_retrievable(count, seed):
    records = make_records(count, seed=seed)
    tree = RTree(size_model=SizeModel(page_bytes=256))
    tree.insert_all(records)
    tree.validate()
    assert sorted(range_search(tree, Rect.unit())) == list(range(count))
