"""Tests for best-first kNN search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point
from repro.rtree.knn import knn_distance, knn_search, nearest_neighbor

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


def brute_force_knn(records, point, k):
    ranked = sorted(records, key=lambda r: r.mbr.min_dist_to_point(point))
    return [r.object_id for r in ranked[:k]]


def brute_force_distances(records, point, k):
    return sorted(r.mbr.min_dist_to_point(point) for r in records)[:k]


def test_knn_zero_k_returns_empty(small_tree):
    assert knn_search(small_tree, Point(0.5, 0.5), 0) == []


def test_knn_returns_k_results_sorted_by_distance(small_tree):
    results = knn_search(small_tree, Point(0.5, 0.5), 7)
    assert len(results) == 7
    distances = [distance for _, distance in results]
    assert distances == sorted(distances)


def test_knn_matches_bruteforce_distances(small_tree, small_records):
    point = Point(0.31, 0.77)
    results = knn_search(small_tree, point, 5)
    expected = brute_force_distances(small_records, point, 5)
    assert [d for _, d in results] == pytest.approx(expected)


def test_knn_k_larger_than_dataset(small_tree, small_records):
    results = knn_search(small_tree, Point(0.5, 0.5), len(small_records) + 10)
    assert len(results) == len(small_records)


def test_nearest_neighbor(small_tree, small_records):
    point = Point(0.11, 0.42)
    found = nearest_neighbor(small_tree, point)
    assert found is not None
    expected = brute_force_knn(small_records, point, 1)[0]
    expected_distance = brute_force_distances(small_records, point, 1)[0]
    assert found[1] == pytest.approx(expected_distance)


def test_knn_distance_helper(small_tree, small_records):
    point = Point(0.9, 0.1)
    assert knn_distance(small_tree, point, 3) == pytest.approx(
        brute_force_distances(small_records, point, 3)[-1])
    assert knn_distance(small_tree, point, len(small_records) + 1) == float("inf")


def test_knn_collects_visited_nodes(small_tree):
    visited = set()
    knn_search(small_tree, Point(0.2, 0.2), 3, visited_nodes=visited)
    assert small_tree.root_id in visited


def test_knn_empty_tree():
    from repro.rtree import RTree, SizeModel
    tree = RTree(size_model=SizeModel(page_bytes=256))
    assert knn_search(tree, Point(0.5, 0.5), 3) == []
    assert nearest_neighbor(tree, Point(0.5, 0.5)) is None


@settings(max_examples=25, deadline=None)
@given(coords, coords, st.integers(min_value=1, max_value=12))
def test_knn_property_matches_bruteforce(clustered_tree, clustered_records, x, y, k):
    point = Point(x, y)
    results = knn_search(clustered_tree, point, k)
    expected = brute_force_distances(clustered_records, point, k)
    assert [d for _, d in results] == pytest.approx(expected)
