"""Tests for STR bulk loading."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.rtree import SizeModel, bulk_load_str
from repro.rtree.entry import ObjectRecord
from repro.rtree.range_search import range_search

from tests.conftest import make_records


def test_bulk_load_empty():
    tree = bulk_load_str([], size_model=SizeModel(page_bytes=256))
    assert len(tree) == 0
    assert range_search(tree, Rect.unit()) == []


def test_bulk_load_single_record():
    tree = bulk_load_str([ObjectRecord(0, Rect(0.5, 0.5, 0.51, 0.51), 10)],
                         size_model=SizeModel(page_bytes=256))
    assert len(tree) == 1
    assert range_search(tree, Rect.unit()) == [0]
    tree.validate()


def test_bulk_load_matches_dynamic_results(small_records, small_tree, dynamic_tree):
    window = Rect(0.1, 0.3, 0.5, 0.9)
    assert sorted(range_search(small_tree, window)) == sorted(range_search(dynamic_tree, window))


def test_bulk_load_is_balanced(small_tree):
    leaf_levels = {node.level for node in small_tree.all_nodes() if node.is_leaf}
    assert leaf_levels == {0}
    small_tree.validate()


def test_bulk_load_duplicate_ids_rejected():
    records = [ObjectRecord(1, Rect(0, 0, 0.1, 0.1), 10),
               ObjectRecord(1, Rect(0.2, 0.2, 0.3, 0.3), 10)]
    with pytest.raises(ValueError):
        bulk_load_str(records, size_model=SizeModel(page_bytes=256))


def test_bulk_load_bad_fill_factor():
    with pytest.raises(ValueError):
        bulk_load_str(make_records(10), fill_factor=0.0)


def test_bulk_load_respects_fanout(small_records):
    tree = bulk_load_str(small_records, size_model=SizeModel(page_bytes=256), fill_factor=0.8)
    for node in tree.all_nodes():
        assert node.fanout <= tree.max_entries


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=1000))
def test_bulk_load_property_complete_and_valid(count, seed):
    records = make_records(count, seed=seed)
    tree = bulk_load_str(records, size_model=SizeModel(page_bytes=256))
    tree.validate()
    assert sorted(range_search(tree, Rect.unit())) == list(range(count))
