"""Tests for the window (range) query."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.rtree.range_search import range_count, range_search, range_search_filtered

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


def brute_force_range(records, window):
    return sorted(r.object_id for r in records if r.mbr.intersects(window))


def test_range_search_matches_bruteforce(small_tree, small_records):
    window = Rect(0.25, 0.25, 0.55, 0.75)
    assert sorted(range_search(small_tree, window)) == brute_force_range(small_records, window)


def test_range_search_whole_space_returns_everything(small_tree, small_records):
    assert sorted(range_search(small_tree, Rect.unit())) == [r.object_id for r in small_records]


def test_range_search_empty_window_region(small_tree, small_records):
    window = Rect(0.99995, 0.99995, 0.99999, 0.99999)
    assert sorted(range_search(small_tree, window)) == brute_force_range(small_records, window)


def test_range_search_collects_visited_nodes(small_tree):
    visited = set()
    range_search(small_tree, Rect(0.4, 0.4, 0.6, 0.6), visited_nodes=visited)
    assert small_tree.root_id in visited
    assert all(node_id in small_tree.store for node_id in visited)


def test_range_count(small_tree, small_records):
    window = Rect(0.0, 0.0, 0.5, 0.5)
    assert range_count(small_tree, window) == len(brute_force_range(small_records, window))


def test_range_search_filtered(small_tree):
    window = Rect.unit()
    evens = range_search_filtered(small_tree, window, lambda oid: oid % 2 == 0)
    assert all(oid % 2 == 0 for oid in evens)
    assert len(evens) == 60


@settings(max_examples=25, deadline=None)
@given(coords, coords, coords, coords)
def test_range_search_property(clustered_tree, clustered_records, x1, y1, x2, y2):
    window = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    assert sorted(range_search(clustered_tree, window)) == \
        brute_force_range(clustered_records, window)
