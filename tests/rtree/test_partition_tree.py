"""Tests for the binary partition tree and compact forms (paper Section 4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.rtree import SizeModel, bulk_load_str
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.partition_tree import PartitionTree, SuperEntry, build_partition_trees

from tests.conftest import make_records


def _node(entry_count, seed=0, node_id=77):
    records = make_records(entry_count, seed=seed)
    entries = [Entry(mbr=r.mbr, object_id=r.object_id) for r in records]
    return Node(node_id=node_id, level=0, entries=entries)


@pytest.fixture()
def node10():
    return _node(10)


@pytest.fixture()
def pt10(node10):
    return PartitionTree(node10)


def test_empty_node_rejected():
    with pytest.raises(ValueError):
        PartitionTree(Node(node_id=1, level=0, entries=[]))


def test_single_entry_node():
    pt = PartitionTree(_node(1))
    assert pt.is_leaf_code("")
    assert pt.height == 0
    assert len(pt.root_elements()) == 1
    assert isinstance(pt.root_elements()[0], Entry)


def test_internal_node_count_is_n_minus_one(pt10):
    assert pt10.internal_node_count() == 9


def test_leaf_codes_cover_all_entries(pt10, node10):
    leaf_entries = {pt10.entry_at(code).key()
                    for code in pt10.subsets if pt10.is_leaf_code(code)}
    assert leaf_entries == {entry.key() for entry in node10.entries}


def test_entry_code_round_trip(pt10, node10):
    for entry in node10.entries:
        code = pt10.entry_code(entry)
        assert pt10.entry_at(code).key() == entry.key()


def test_children_partition_parent(pt10):
    for code in pt10.subsets:
        if pt10.is_leaf_code(code):
            continue
        children = pt10.children(code)
        assert len(children) == 2
        child_keys = set()
        for child in children:
            if isinstance(child, SuperEntry):
                child_keys.update(e.key() for e in pt10.entries_under(child.code))
            else:
                child_keys.add(child.key())
        assert child_keys == {e.key() for e in pt10.entries_under(code)}


def test_children_of_leaf_code_raises(pt10):
    leaf_code = next(code for code in pt10.subsets if pt10.is_leaf_code(code))
    with pytest.raises(ValueError):
        pt10.children(leaf_code)


def test_mbrs_cover_subsets(pt10):
    for code, entries in pt10.subsets.items():
        mbr = pt10.mbrs[code]
        for entry in entries:
            assert mbr.contains(entry.mbr)


def test_compact_form_covers_node_exactly_once(pt10):
    # Expand only the root: the compact form is the two top-level children.
    cut = pt10.compact_form(expanded_codes={""})
    covered = []
    for code, element in cut:
        covered.extend(e.key() for e in pt10.entries_under(code))
    assert sorted(covered) == sorted(e.key() for e in pt10.entries_under(""))


def test_compact_form_with_deeper_expansion(pt10):
    expanded = {"", "0"}
    cut = pt10.compact_form(expanded_codes=expanded)
    codes = [code for code, _ in cut]
    # "0" was expanded so it must not appear as a cut element, while "1"
    # (never expanded) must appear exactly once.
    assert "0" not in codes
    assert codes.count("1") == 1
    covered = [e.key() for code, _ in cut for e in pt10.entries_under(code)]
    assert sorted(covered) == sorted(e.key() for e in pt10.entries_under(""))


def test_full_form_lists_every_entry(pt10, node10):
    full = pt10.full_form()
    assert len(full) == len(node10.entries)
    assert all(isinstance(element, Entry) for _, element in full)


def test_d_level_form_interpolates(pt10):
    compact = pt10.d_level_form(expanded_codes={""}, d=0)
    refined = pt10.d_level_form(expanded_codes={""}, d=1)
    full = pt10.d_level_form(expanded_codes={""}, d=pt10.height)
    assert len(compact) <= len(refined) <= len(full)
    assert len(full) == len(pt10.full_form())


def test_d_level_form_covers_exactly(pt10):
    for d in range(pt10.height + 1):
        cut = pt10.d_level_form(expanded_codes={""}, d=d)
        covered = [e.key() for code, _ in cut for e in pt10.entries_under(code)]
        assert sorted(covered) == sorted(e.key() for e in pt10.entries_under(""))


def test_subtree_form_restricted(pt10):
    cut = pt10.subtree_form("0", expanded_codes=set(), d=0)
    covered = {e.key() for code, _ in cut for e in pt10.entries_under(code)}
    assert covered == {e.key() for e in pt10.entries_under("0")}


def test_expand_element_reaches_entries(pt10):
    expanded = pt10.expand_element("", levels=pt10.height)
    assert all(isinstance(element, Entry) for _, element in expanded)
    assert len(expanded) == 10


def test_size_bytes_bounded_by_twice_index(small_tree):
    size_model = SizeModel(page_bytes=256)
    partition_trees = build_partition_trees(small_tree.all_nodes())
    pt_bytes = sum(pt.size_bytes(size_model.entry_bytes, size_model.pointer_bytes)
                   for pt in partition_trees.values())
    assert pt_bytes <= 2 * small_tree.index_bytes()


def test_build_partition_trees_skips_empty_nodes():
    empty = Node(node_id=5, level=0, entries=[])
    filled = _node(4, node_id=6)
    trees = build_partition_trees([empty, filled])
    assert set(trees) == {6}


def test_compact_form_space_saving_example():
    # The paper's Figure 5: a node with 5 entries whose compact form (after an
    # NN-style access pattern touching one entry) has 3 elements — a 40% saving.
    node = _node(5)
    pt = PartitionTree(node)
    # Expand the root and one of its children that is not a leaf.
    non_leaf_child = "0" if not pt.is_leaf_code("0") else "1"
    cut = pt.compact_form(expanded_codes={"", non_leaf_child})
    assert len(cut) < 5


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=500),
       st.integers(min_value=0, max_value=6))
def test_property_every_cut_is_a_partition(entry_count, seed, d):
    pt = PartitionTree(_node(entry_count, seed=seed))
    cut = pt.d_level_form(expanded_codes={""}, d=d)
    covered = [e.key() for code, _ in cut for e in pt.entries_under(code)]
    assert len(covered) == len(set(covered)) == entry_count
