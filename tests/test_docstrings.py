"""pydocstyle-lite: every module under ``src/repro`` must document itself.

The real pydocstyle is not vendored (no third-party deps); this enforces the
slice of it the project cares about: a non-trivial module docstring on every
package and module, so each file states which part of the paper (or which
subsystem) it implements.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent

ALL_MODULES = sorted(SRC_ROOT.rglob("*.py"))


def test_the_scan_sees_the_whole_package():
    assert len(ALL_MODULES) > 50, "module scan looks broken"
    assert any(path.name == "__init__.py" and path.parent == SRC_ROOT
               for path in ALL_MODULES)


@pytest.mark.parametrize("path", ALL_MODULES,
                         ids=[str(p.relative_to(SRC_ROOT)) for p in ALL_MODULES])
def test_module_has_a_meaningful_docstring(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path.relative_to(SRC_ROOT)} has no module docstring"
    assert len(docstring.strip()) >= 20, (
        f"{path.relative_to(SRC_ROOT)}: docstring is too short to say what "
        f"the module implements")


@pytest.mark.parametrize("path", ALL_MODULES,
                         ids=[str(p.relative_to(SRC_ROOT)) for p in ALL_MODULES])
def test_public_classes_and_functions_are_documented(path):
    """Top-level public defs need docstrings too (underscore names exempt)."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    undocumented = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                undocumented.append(node.name)
    assert not undocumented, (
        f"{path.relative_to(SRC_ROOT)}: missing docstrings on "
        f"{', '.join(undocumented)}")
