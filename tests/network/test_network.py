"""Tests for the wireless channel model and traffic logging."""

import pytest

from repro.network import TrafficLog, WirelessChannel


def test_channel_delay_matches_bandwidth():
    channel = WirelessChannel(bandwidth_bps=384_000.0)
    # 48 KB/s effective throughput: 48,000 bytes take one second.
    assert channel.send_downlink(48_000) == pytest.approx(1.0)
    assert channel.send_uplink(0) == 0.0


def test_channel_accumulates_bytes():
    channel = WirelessChannel()
    channel.send_uplink(100)
    channel.send_uplink(50)
    channel.send_downlink(2_000)
    assert channel.uplink_bytes_total == 150
    assert channel.downlink_bytes_total == 2_000
    channel.reset()
    assert channel.uplink_bytes_total == 0
    assert channel.downlink_bytes_total == 0


def test_channel_rejects_negative_bytes():
    channel = WirelessChannel()
    with pytest.raises(ValueError):
        channel.send_uplink(-1)
    with pytest.raises(ValueError):
        channel.send_downlink(-1)


def test_channel_fixed_rtt_applied_to_uplink():
    channel = WirelessChannel(bandwidth_bps=384_000.0, fixed_rtt_seconds=0.1)
    assert channel.send_uplink(4_800) == pytest.approx(0.1 + 0.1)


def test_traffic_log_totals_and_per_query_breakdown():
    log = TrafficLog()
    log.log_uplink(0, 100)
    log.log_downlink(0, 5_000)
    log.log_uplink(1, 300)
    assert log.uplink_bytes() == 400
    assert log.downlink_bytes() == 5_000
    assert log.bytes_for_query(0) == (100, 5_000)
    assert log.bytes_for_query(1) == (300, 0)
    assert log.bytes_for_query(9) == (0, 0)


def test_byte_counts_are_ints_end_to_end():
    """Regression: TrafficLog entries used to hold floats while the channel
    accumulated whatever it was fed, so the two totals could only be
    compared with approx.  Both now normalise to exact ints."""
    log = TrafficLog()
    channel = WirelessChannel()
    log.log_uplink(0, 100.0)       # integral floats are normalised
    channel.send_uplink(100.0)
    log.log_downlink(0, 5_000)
    channel.send_downlink(5_000)
    for _, _, size in log.entries:
        assert isinstance(size, int)
    assert isinstance(channel.uplink_bytes_total, int)
    assert isinstance(channel.downlink_bytes_total, int)
    with pytest.raises(ValueError, match="integral"):
        log.log_uplink(1, 0.5)
    with pytest.raises(ValueError, match="integral"):
        channel.send_downlink(10.25)


def test_traffic_log_sums_equal_channel_totals_on_a_real_trace():
    """Log every message of a simulated session into both accountings and
    require exact (==) agreement between log and channel totals."""
    from repro.sim.config import SimulationConfig
    from repro.sim.runner import build_environment, run_model

    config = SimulationConfig.tiny(query_count=10, object_count=250)
    environment = build_environment(config)
    result = run_model(environment, "APRO")

    log = TrafficLog()
    channel = WirelessChannel()
    for cost in result.costs:
        # Byte counts from the cost model are exact ints by construction.
        up = int(cost.uplink_bytes)
        down = int(cost.downlink_bytes)
        assert up == cost.uplink_bytes and down == cost.downlink_bytes
        log.log_uplink(cost.query_index, up)
        log.log_downlink(cost.query_index, down)
        channel.send_uplink(up)
        channel.send_downlink(down)
    assert log.uplink_bytes() == channel.uplink_bytes_total
    assert log.downlink_bytes() == channel.downlink_bytes_total
    assert log.uplink_bytes() == sum(int(c.uplink_bytes) for c in result.costs)
