"""Tests for the wireless channel model and traffic logging."""

import pytest

from repro.network import TrafficLog, WirelessChannel


def test_channel_delay_matches_bandwidth():
    channel = WirelessChannel(bandwidth_bps=384_000.0)
    # 48 KB/s effective throughput: 48,000 bytes take one second.
    assert channel.send_downlink(48_000) == pytest.approx(1.0)
    assert channel.send_uplink(0) == 0.0


def test_channel_accumulates_bytes():
    channel = WirelessChannel()
    channel.send_uplink(100)
    channel.send_uplink(50)
    channel.send_downlink(2_000)
    assert channel.uplink_bytes_total == 150
    assert channel.downlink_bytes_total == 2_000
    channel.reset()
    assert channel.uplink_bytes_total == 0
    assert channel.downlink_bytes_total == 0


def test_channel_rejects_negative_bytes():
    channel = WirelessChannel()
    with pytest.raises(ValueError):
        channel.send_uplink(-1)
    with pytest.raises(ValueError):
        channel.send_downlink(-1)


def test_channel_fixed_rtt_applied_to_uplink():
    channel = WirelessChannel(bandwidth_bps=384_000.0, fixed_rtt_seconds=0.1)
    assert channel.send_uplink(4_800) == pytest.approx(0.1 + 0.1)


def test_traffic_log_totals_and_per_query_breakdown():
    log = TrafficLog()
    log.log_uplink(0, 100)
    log.log_downlink(0, 5_000)
    log.log_uplink(1, 300)
    assert log.uplink_bytes() == 400
    assert log.downlink_bytes() == 5_000
    assert log.bytes_for_query(0) == (100, 5_000)
    assert log.bytes_for_query(1) == (300, 0)
    assert log.bytes_for_query(9) == (0, 0)
