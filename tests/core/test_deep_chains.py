"""Tall snapshot chains must not hit Python's recursion limit.

``evict_subtree``, GRD2's EBRS aggregation and the protected-ancestor
closure all walk parent/child chains; each is iterative as of PR 2 so a
5,000-deep synthetic chain (five times the default interpreter recursion
limit) is handled.  The seed's recursive implementations would raise
``RecursionError`` on every one of these tests.
"""

import sys

import pytest

from repro.core.cache import ProactiveCache
from repro.core.items import CacheEntry, CachedIndexNode, CachedObject, item_key_for_node
from repro.core.replacement import GRD1Policy, GRD2Policy, GRD3Policy
from repro.core.replacement.grd import _protected_closure, _subtree_sums
from repro.geometry import Rect
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()
DEPTH = 5_000


def build_chain(policy=None, depth=DEPTH, capacity=2_000_000):
    """A cache holding one ``depth``-deep snapshot chain (root id 1)."""
    cache = ProactiveCache(capacity_bytes=capacity, size_model=MODEL,
                           replacement_policy=policy)
    for node_id in range(1, depth + 1):
        snapshot = CachedIndexNode(node_id=node_id, level=depth - node_id, elements={
            "0": CacheEntry(mbr=Rect(0, 0, 0.1, 0.1), code="0",
                            child_id=node_id + 1)})
        parent = node_id - 1 if node_id > 1 else None
        assert cache.insert_node_snapshot(snapshot, parent), node_id
    return cache


def test_chain_is_really_deeper_than_the_recursion_limit():
    assert DEPTH > sys.getrecursionlimit()


def test_evict_subtree_iterative_on_deep_chain():
    cache = build_chain()
    assert len(cache) == DEPTH
    removed = cache.evict_subtree(item_key_for_node(1))
    assert len(removed) == DEPTH
    assert len(cache) == 0
    assert cache.used_bytes == 0
    # Leaf-to-root order: every descendant is removed before its ancestor.
    position = {key: index for index, key in enumerate(removed)}
    assert position[item_key_for_node(DEPTH)] < position[item_key_for_node(1)]
    cache.validate()


def test_grd2_benefit_and_size_iterative_on_deep_chain():
    cache = build_chain(policy=GRD2Policy())
    policy = cache.replacement_policy
    root_state = cache.items[item_key_for_node(1)]
    benefit, size = policy._benefit_and_size(root_state, cache)
    assert size == cache.used_bytes
    assert benefit > 0
    assert policy.ebrs(root_state, cache) == pytest.approx(benefit / size)


def test_grd2_subtree_sums_cover_deep_chain():
    cache = build_chain(policy=GRD2Policy())
    sums = _subtree_sums(cache, cache.clock)
    assert len(sums) == DEPTH
    assert sums[item_key_for_node(1)][1] == cache.used_bytes


def test_protected_closure_iterative_on_deep_chain():
    cache = build_chain()
    deepest = item_key_for_node(DEPTH)
    closure = _protected_closure(cache, {deepest})
    assert len(closure) == DEPTH  # the whole ancestor chain is protected


def test_grd2_make_room_evicts_from_deep_chain():
    cache = build_chain(policy=GRD2Policy())
    free = cache.capacity_bytes - cache.used_bytes
    assert cache.replacement_policy.make_room(cache, free + 5_000, {}, set())
    assert cache.capacity_bytes - cache.used_bytes >= free + 5_000
    cache.validate()


def test_grd1_make_room_evicts_from_deep_chain():
    cache = build_chain(policy=GRD1Policy())
    free = cache.capacity_bytes - cache.used_bytes
    assert cache.replacement_policy.make_room(cache, free + 5_000, {}, set())
    cache.validate()


def test_grd3_make_room_protect_deep_leaf():
    """The protection closure walk is exercised with a deep protected key."""
    cache = build_chain(policy=GRD3Policy())
    deepest = item_key_for_node(DEPTH)
    free = cache.capacity_bytes - cache.used_bytes
    # Protecting the deepest item protects the whole chain: nothing is
    # evictable, so the request must be refused — without recursion.
    assert not cache.replacement_policy.make_room(
        cache, free + 5_000, {}, {deepest})
    assert deepest in cache.items
    cache.validate()


def test_deep_chain_with_object_leaf():
    """An object hanging off the chain's deepest node evicts cleanly too."""
    cache = build_chain()
    assert cache.insert_object(
        CachedObject(object_id=9, mbr=Rect(0, 0, 0.01, 0.01), size_bytes=500),
        parent_node_id=DEPTH)
    removed = cache.evict_subtree(item_key_for_node(1))
    assert len(removed) == DEPTH + 1
    assert removed[0] == "obj:9"  # the deepest leaf goes first
    cache.validate()
