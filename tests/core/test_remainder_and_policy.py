"""Tests for the remainder query and the supporting-index policy objects."""

import pytest

from repro.core.items import FrontierTarget
from repro.core.remainder import RemainderQuery
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy
from repro.geometry import Point, Rect
from repro.rtree.sizes import SizeModel
from repro.workload.queries import JoinQuery, KNNQuery, RangeQuery


MODEL = SizeModel()


def _target(node_id=1):
    return FrontierTarget.for_node(node_id, Rect(0, 0, 0.5, 0.5))


def test_empty_remainder():
    remainder = RemainderQuery(query=RangeQuery(window=Rect(0, 0, 0.1, 0.1)))
    assert remainder.is_empty
    assert remainder.target_count() == 0


def test_remainder_size_scales_with_frontier():
    query = RangeQuery(window=Rect(0, 0, 0.1, 0.1))
    small = RemainderQuery(query=query, frontier=[(_target(),)])
    large = RemainderQuery(query=query, frontier=[(_target(i),) for i in range(5)])
    assert large.size_bytes(MODEL) - small.size_bytes(MODEL) == 4 * MODEL.frontier_entry_bytes()


def test_remainder_pairs_count_double():
    query = JoinQuery(window=Rect(0, 0, 0.1, 0.1), threshold=0.01)
    remainder = RemainderQuery(query=query, frontier=[(_target(1), _target(2))])
    assert remainder.target_count() == 2


def test_remainder_knn_and_fmr_fields_add_bytes():
    query = KNNQuery(point=Point(0.5, 0.5), k=3)
    base = RemainderQuery(query=query, frontier=[(_target(),)])
    with_k = RemainderQuery(query=query, frontier=[(_target(),)], k_remaining=2)
    with_fmr = RemainderQuery(query=query, frontier=[(_target(),)], k_remaining=2,
                              reported_fmr=0.2)
    assert with_k.size_bytes(MODEL) > base.size_bytes(MODEL)
    assert with_fmr.size_bytes(MODEL) > with_k.size_bytes(MODEL)
    assert not with_k.is_empty


def test_query_descriptor_sizes():
    assert RangeQuery(window=Rect(0, 0, 0.1, 0.1)).descriptor_bytes(MODEL) > 0
    assert KNNQuery(point=Point(0, 0), k=1).descriptor_bytes(MODEL) > 0
    assert JoinQuery(window=Rect(0, 0, 0.1, 0.1), threshold=0.1).descriptor_bytes(MODEL) > 0


def test_policy_effective_depth():
    assert SupportingIndexPolicy.full().effective_depth(7) == 7
    assert SupportingIndexPolicy.compact().effective_depth(7) == 0
    assert SupportingIndexPolicy.adaptive(3).effective_depth(7) == 3
    assert SupportingIndexPolicy.adaptive(30).effective_depth(7) == 7


def test_policy_partition_tree_usage():
    assert not SupportingIndexPolicy.full().uses_partition_trees
    assert SupportingIndexPolicy.compact().uses_partition_trees
    assert SupportingIndexPolicy.adaptive().uses_partition_trees


def test_policy_rejects_negative_depth():
    with pytest.raises(ValueError):
        SupportingIndexPolicy(form=IndexForm.ADAPTIVE, depth=-1)


def test_invalid_query_parameters_rejected():
    with pytest.raises(ValueError):
        KNNQuery(point=Point(0, 0), k=0)
    with pytest.raises(ValueError):
        JoinQuery(window=Rect(0, 0, 0.1, 0.1), threshold=-1.0)
