"""End-to-end correctness: proactive caching always returns the true answer.

This is the central integration property of the reproduction: whatever the
cache contents, replacement policy and supporting-index form, the union of
locally saved objects and server-delivered objects must equal the ground
truth produced by plain R-tree query processing (kNN compared by distance to
tolerate ties).
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import build_environment
from repro.sim.sessions import ProactiveSession, true_results
from repro.core.items import CachedIndexNode, CachedObject
from repro.workload.generator import QueryMix


def _replay_with_truth_check(config, index_form, replacement_policy="GRD3"):
    environment = build_environment(config)
    session = ProactiveSession(environment.tree, config, server=environment.server,
                               index_form=index_form,
                               replacement_policy=replacement_policy)
    mismatches = []
    for record in environment.trace:
        query = record.query
        session.cache.tick()
        execution = session.client.execute(query)
        got = set(execution.saved_objects)
        if not execution.complete:
            response = environment.server.execute(query, execution.remainder(),
                                                  session.policy)
            context = {"client_position": record.position}
            for snap in response.index_snapshots:
                session.cache.insert_node_snapshot(
                    CachedIndexNode(snap.node_id, snap.level,
                                    {e.code: e for e in snap.elements}),
                    snap.parent_id, context)
            for delivery in response.deliveries:
                session.cache.insert_object(
                    CachedObject(delivery.record.object_id, delivery.record.mbr,
                                 delivery.record.size_bytes),
                    delivery.parent_node_id, context)
            got |= response.result_object_ids()
        truth = set(true_results(environment.tree, query))
        if query.query_type.value == "knn":
            tree = environment.tree
            got_d = sorted(tree.objects[o].mbr.min_dist_to_point(query.point) for o in got)
            want_d = sorted(tree.objects[o].mbr.min_dist_to_point(query.point) for o in truth)
            ok = len(got_d) == len(want_d) and all(
                abs(a - b) < 1e-9 for a, b in zip(got_d, want_d))
        else:
            ok = got == truth
        if not ok:
            mismatches.append((record.index, query.query_type.value))
    session.cache.validate()
    return mismatches


@pytest.mark.parametrize("index_form", ["adaptive", "full", "compact"])
def test_proactive_caching_always_returns_true_answers(index_form):
    config = SimulationConfig.tiny(query_count=80, object_count=900)
    assert _replay_with_truth_check(config, index_form) == []


@pytest.mark.parametrize("policy", ["LRU", "MRU", "FAR", "GRD1", "GRD2", "GRD3"])
def test_correctness_is_independent_of_replacement_policy(policy):
    config = SimulationConfig.tiny(query_count=50, object_count=700,
                                   ).with_overrides(cache_fraction=0.003)
    assert _replay_with_truth_check(config, "adaptive", replacement_policy=policy) == []


def test_correctness_under_directed_mobility_and_tiny_cache():
    config = SimulationConfig.tiny(query_count=60, object_count=800).with_overrides(
        mobility_model="DIR", cache_fraction=0.001)
    assert _replay_with_truth_check(config, "adaptive") == []


def test_correctness_knn_only_workload_with_ramp():
    config = SimulationConfig.tiny(query_count=60, object_count=800).with_overrides(
        query_mix=QueryMix(range_=0.0, knn=1.0, join=0.0), k_max=10)
    assert _replay_with_truth_check(config, "compact") == []


def test_correctness_join_only_workload():
    config = SimulationConfig.tiny(query_count=40, object_count=700).with_overrides(
        query_mix=QueryMix(range_=0.0, knn=0.0, join=1.0))
    assert _replay_with_truth_check(config, "adaptive") == []
