"""Tests for the proactive cache structure and constrained eviction plumbing."""

import pytest

from repro.core.cache import ProactiveCache
from repro.core.items import CacheEntry, CachedIndexNode, CachedObject, item_key_for_node, item_key_for_object
from repro.core.replacement import GRD3Policy, LRUPolicy
from repro.geometry import Rect
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()


def node_snapshot(node_id, level=0, entries=2):
    elements = {}
    for index in range(entries):
        code = format(index, "b").zfill(2)
        elements[code] = CacheEntry(mbr=Rect(0, 0, 0.1, 0.1), code=code,
                                    object_id=node_id * 100 + index)
    return CachedIndexNode(node_id=node_id, level=level, elements=elements)


def cached_object(object_id, size=500):
    return CachedObject(object_id=object_id, mbr=Rect(0, 0, 0.01, 0.01), size_bytes=size)


def make_cache(capacity=50_000, policy=None):
    return ProactiveCache(capacity_bytes=capacity, size_model=MODEL,
                          replacement_policy=policy)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ProactiveCache(capacity_bytes=0)


def test_insert_root_and_lookup():
    cache = make_cache()
    assert cache.insert_node_snapshot(node_snapshot(1, level=2), parent_node_id=None)
    assert cache.has_node(1)
    assert cache.get_node(1).node_id == 1
    assert not cache.has_node(2)
    cache.validate()


def test_insert_child_requires_cached_parent():
    cache = make_cache()
    assert not cache.insert_node_snapshot(node_snapshot(5, level=0), parent_node_id=99)
    assert cache.rejected_inserts == 1
    cache.insert_node_snapshot(node_snapshot(99, level=1), parent_node_id=None)
    assert cache.insert_node_snapshot(node_snapshot(5, level=0), parent_node_id=99)
    cache.validate()


def test_insert_object_requires_cached_parent_leaf():
    cache = make_cache()
    assert not cache.insert_object(cached_object(7), parent_node_id=4)
    cache.insert_node_snapshot(node_snapshot(4, level=0), parent_node_id=None)
    assert cache.insert_object(cached_object(7), parent_node_id=4)
    assert cache.has_object(7)
    assert cache.get_object(7).object_id == 7
    cache.validate()


def test_used_bytes_tracks_inserts():
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(1, level=1), parent_node_id=None)
    node_bytes = cache.used_bytes
    assert node_bytes == cache.get_node(1).size_bytes(MODEL)
    cache.insert_object(cached_object(3, size=700), parent_node_id=1)
    assert cache.used_bytes == node_bytes + 700
    assert cache.object_bytes() == 700
    assert cache.index_bytes() == node_bytes


def test_merge_updates_size_accounting():
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(1, level=1, entries=1), parent_node_id=None)
    before = cache.used_bytes
    cache.insert_node_snapshot(node_snapshot(1, level=1, entries=3), parent_node_id=None)
    assert cache.used_bytes > before
    cache.validate()


def test_merge_refreshes_replacement_metadata():
    """A re-shipped snapshot is a hit: merging must not let the node decay."""
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(1, level=1, entries=1), parent_node_id=None)
    state = cache.items[item_key_for_node(1)]
    hits_before = state.hit_queries
    for _ in range(5):
        cache.tick()
    assert state.last_access == 0
    cache.insert_node_snapshot(node_snapshot(1, level=1, entries=3), parent_node_id=None)
    assert state.last_access == cache.clock
    assert state.hit_queries == hits_before + 1
    # The refreshed metadata feeds straight into the GRD access probability.
    assert state.access_probability(cache.clock) == pytest.approx(2 / 6)
    cache.validate()


def test_duplicate_object_insert_is_noop():
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(1, level=0), parent_node_id=None)
    assert cache.insert_object(cached_object(5), parent_node_id=1)
    used = cache.used_bytes
    assert cache.insert_object(cached_object(5), parent_node_id=1)
    assert cache.used_bytes == used


def test_leaf_items_and_eviction_constraint():
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(1, level=1), parent_node_id=None)
    cache.insert_node_snapshot(node_snapshot(2, level=0), parent_node_id=1)
    cache.insert_object(cached_object(9), parent_node_id=2)
    leaf_keys = {state.key for state in cache.leaf_items()}
    assert leaf_keys == {item_key_for_object(9)}
    with pytest.raises(ValueError):
        cache.evict(item_key_for_node(2))
    cache.evict(item_key_for_object(9))
    assert {state.key for state in cache.leaf_items()} == {item_key_for_node(2)}
    cache.validate()


def test_evict_subtree_removes_descendants():
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(1, level=1), parent_node_id=None)
    cache.insert_node_snapshot(node_snapshot(2, level=0), parent_node_id=1)
    cache.insert_object(cached_object(9), parent_node_id=2)
    removed = cache.evict_subtree(item_key_for_node(1))
    assert set(removed) == {item_key_for_node(1), item_key_for_node(2), item_key_for_object(9)}
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_insert_rejected_when_item_larger_than_cache():
    cache = make_cache(capacity=100, policy=LRUPolicy())
    assert not cache.insert_node_snapshot(node_snapshot(1, level=0, entries=10),
                                          parent_node_id=None)


def test_eviction_makes_room_for_new_objects():
    cache = make_cache(capacity=2_000, policy=LRUPolicy())
    cache.insert_node_snapshot(node_snapshot(1, level=0, entries=1), parent_node_id=None)
    cache.tick()
    assert cache.insert_object(cached_object(1, size=900), parent_node_id=1)
    cache.tick()
    assert cache.insert_object(cached_object(2, size=900), parent_node_id=1)
    cache.tick()
    # Inserting a third object forces the least recently used one out.
    assert cache.insert_object(cached_object(3, size=900), parent_node_id=1)
    assert cache.evictions >= 1
    assert cache.used_bytes <= cache.capacity_bytes
    assert not cache.has_object(1)
    cache.validate()


def test_touch_and_access_probability():
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(1, level=0), parent_node_id=None)
    key = item_key_for_node(1)
    state = cache.items[key]
    assert state.hit_queries == 1
    for _ in range(4):
        cache.tick()
    cache.touch(key)
    assert state.hit_queries == 2
    assert 0.0 < state.access_probability(cache.clock) <= 1.0


def test_touch_unknown_key_is_noop():
    cache = make_cache()
    cache.touch("node:404")


def test_cached_id_sets():
    cache = make_cache()
    cache.insert_node_snapshot(node_snapshot(3, level=0), parent_node_id=None)
    cache.insert_object(cached_object(11), parent_node_id=3)
    assert cache.cached_node_ids() == {3}
    assert cache.cached_object_ids() == {11}
    assert item_key_for_object(11) in cache
    assert len(cache) == 2
