"""GRD3 step-(6) regression: the reinserted item must stay reachable.

The step-(6) correction clears the cache down to the dominant item's parent
chain before re-admitting it.  The seed implementation drove that loop by
rebuilding ``leaf_items()`` every round and re-attached the item by writing
``cache.items`` directly; the rewrite runs a cascading worklist over the
incremental leaf set and goes through ``ProactiveCache.restore_item``.  This
test pins the contract on a cache where the dominant item's parent has
sibling subtrees: the siblings must drain fully, the parent chain must
survive untouched, and the reinserted item must be reachable (parent/child
links intact, all aggregates in sync).
"""

from repro.core.cache import ProactiveCache
from repro.core.items import (
    CacheEntry,
    CachedIndexNode,
    CachedObject,
    item_key_for_node,
    item_key_for_object,
)
from repro.core.replacement import GRD3Policy
from repro.geometry import Rect
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()


def build_sibling_cache():
    """root(1, level 1) -> {leaf 2 with hot object 10, leaf 3 with colds}."""
    cache = ProactiveCache(capacity_bytes=10_000, size_model=MODEL,
                           replacement_policy=GRD3Policy())
    root = CachedIndexNode(node_id=1, level=1, elements={
        "0": CacheEntry(mbr=Rect(0, 0, 0.5, 1), code="0", child_id=2),
        "1": CacheEntry(mbr=Rect(0.5, 0, 1, 1), code="1", child_id=3),
    })
    assert cache.insert_node_snapshot(root, None)
    for leaf_id in (2, 3):
        leaf = CachedIndexNode(node_id=leaf_id, level=0, elements={
            "": CacheEntry(mbr=Rect(0, 0, 0.5, 0.5), code="",
                           object_id=leaf_id * 100)})
        assert cache.insert_node_snapshot(leaf, 1)
    # The dominant item: big and frequently hit, under leaf 2.
    assert cache.insert_object(CachedObject(object_id=10, mbr=Rect(0, 0, 0.1, 0.1),
                                            size_bytes=3_000), 2)
    hot_key = item_key_for_object(10)
    for _ in range(10):
        cache.tick()
        cache.touch(hot_key)
    # Cold siblings: two objects under leaf 3 (the parent's sibling subtree).
    for object_id, size in ((100, 1_500), (101, 1_800)):
        cache.tick()
        assert cache.insert_object(CachedObject(object_id=object_id,
                                                mbr=Rect(0.6, 0.6, 0.7, 0.7),
                                                size_bytes=size), 3)
    for _ in range(30):
        cache.tick()  # cold items decay, the hot object stays dominant
    cache.validate()
    return cache


def test_step6_reinserted_item_reachable_with_sibling_subtrees():
    cache = build_sibling_cache()
    used_before = cache.used_bytes

    # A root-level snapshot big enough that the eviction loop must remove
    # the colds, the sibling leaf AND the hot object — but small enough that
    # the hot object fits back under the new limit, making step (6) fire.
    big = CachedIndexNode(node_id=50, level=0, elements={
        format(index, "b").zfill(9): CacheEntry(
            mbr=Rect(0.4, 0.4, 0.5, 0.5), code=format(index, "b").zfill(9),
            object_id=5_000 + index)
        for index in range(194)})
    big_size = big.size_bytes(MODEL)
    limit = cache.capacity_bytes - big_size
    # Evicting the colds and the sibling leaf is not enough — the hot object
    # must be the last victim — yet it still fits under the new limit.
    assert used_before - 3_300 - 40 > limit
    assert 3_000 <= limit

    accepted = cache.insert_node_snapshot(big, None)
    cache.validate()

    assert not accepted                   # step (6) kept the dominant item
    assert not cache.has_node(50)

    # The dominant item is back and *reachable*: its parent survived and the
    # parent/child links are consistent all the way to the root.
    hot_key = item_key_for_object(10)
    assert cache.has_object(10)
    hot_state = cache.items[hot_key]
    assert hot_state.parent_key == item_key_for_node(2)
    assert hot_key in cache.items[item_key_for_node(2)].cached_children
    assert cache.items[item_key_for_node(2)].parent_key == item_key_for_node(1)
    assert cache.has_node(1)

    # The parent's sibling subtree (leaf 3 and its objects) drained fully.
    assert not cache.has_node(3)
    assert not cache.has_object(100)
    assert not cache.has_object(101)
    # Leaf 2's placeholder object entry (200) was also cleared by step (6);
    # only the chain root -> leaf 2 -> hot object remains.
    assert set(cache.items) == {item_key_for_node(1), item_key_for_node(2), hot_key}
    assert cache.used_bytes <= cache.capacity_bytes
    # The incremental aggregates survived the restore.
    assert set(cache.leaf_keys()) == {hot_key}
    assert cache.object_bytes() == 3_000


def test_step6_skipped_when_parent_chain_would_break():
    """If the dominant item cannot fit back, nothing is reinserted."""
    cache = build_sibling_cache()
    # A snapshot so large the hot object could never return (limit < 3000):
    # GRD3 step (1) drops oversized subtrees and the insert is simply
    # rejected without a step-(6) swap of an unreachable item.
    big = CachedIndexNode(node_id=60, level=0, elements={
        format(index, "b").zfill(9): CacheEntry(
            mbr=Rect(0.4, 0.4, 0.5, 0.5), code=format(index, "b").zfill(9),
            object_id=6_000 + index)
        for index in range(250)})
    limit = cache.capacity_bytes - big.size_bytes(MODEL)
    assert limit < 3_000
    cache.insert_node_snapshot(big, None)
    cache.validate()
    if cache.has_object(10):
        # If it survived, it must be genuinely reachable.
        state = cache.items[item_key_for_object(10)]
        assert state.parent_key in cache.items
