"""Tests for the adaptive depth controller (Section 4.3)."""

import pytest

from repro.core.adaptive import AdaptiveDepthController
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy


def make_controller(depth=2, sensitivity=0.2, period=5, form=IndexForm.ADAPTIVE):
    policy = SupportingIndexPolicy(form=form, depth=depth)
    return AdaptiveDepthController(policy=policy, sensitivity=sensitivity,
                                   report_period=period, max_depth=8)


def test_window_fmr_computation():
    controller = make_controller()
    controller.record_query(cached_result_bytes=1_000, saved_result_bytes=600)
    controller.record_query(cached_result_bytes=500, saved_result_bytes=500)
    assert controller.window_fmr() == pytest.approx(400 / 1_500)


def test_first_report_only_records_baseline():
    controller = make_controller(depth=3)
    controller.record_query(1_000, 100)  # high fmr
    fmr = controller.report()
    assert controller.last_reported_fmr == pytest.approx(fmr)
    assert controller.depth == 3  # no change on the first report


def test_depth_increases_when_fmr_rises():
    controller = make_controller(depth=2)
    controller.record_query(1_000, 900)   # fmr = 0.1
    controller.report()
    controller.record_query(1_000, 500)   # fmr = 0.5 (>20% higher)
    controller.report()
    assert controller.depth == 3


def test_depth_decreases_when_fmr_drops():
    controller = make_controller(depth=2)
    controller.record_query(1_000, 500)   # fmr = 0.5
    controller.report()
    controller.record_query(1_000, 950)   # fmr = 0.05
    controller.report()
    assert controller.depth == 1


def test_depth_stable_within_sensitivity_band():
    controller = make_controller(depth=4, sensitivity=0.5)
    controller.record_query(1_000, 600)   # fmr = 0.4
    controller.report()
    controller.record_query(1_000, 580)   # fmr = 0.42, within 50% band
    controller.report()
    assert controller.depth == 4


def test_depth_clamped_to_bounds():
    controller = make_controller(depth=0)
    controller.record_query(1_000, 1_000)  # fmr = 0
    controller.report()
    controller.record_query(1_000, 1_000)
    controller.report()
    assert controller.depth == 0
    high = make_controller(depth=8)
    high.record_query(1_000, 900)
    high.report()
    high.record_query(1_000, 100)
    high.report()
    assert high.depth == 8  # clamped at max_depth


def test_automatic_report_every_period():
    controller = make_controller(period=3)
    for _ in range(3):
        controller.record_query(100, 100)
    assert len(controller.history) == 1
    for _ in range(2):
        controller.record_query(100, 100)
    assert len(controller.history) == 1


def test_non_adaptive_policy_depth_never_changes():
    controller = make_controller(depth=5, form=IndexForm.FULL)
    controller.record_query(1_000, 100)
    controller.report()
    controller.record_query(1_000, 0)
    controller.report()
    assert controller.policy.depth == 5


def test_history_records_every_report():
    controller = make_controller(period=2)
    for index in range(6):
        controller.record_query(100, 50)
    assert len(controller.history) == 3
