"""Tests for the Section 4.1 cost model."""

import pytest

from repro.core.cost_model import CostAccumulator, QueryCost, ResponseTimeModel


def test_seconds_per_byte_matches_bandwidth():
    model = ResponseTimeModel(bandwidth_bps=384_000.0)
    assert model.seconds_per_byte == pytest.approx(8.0 / 384_000.0)


def test_uplink_delay_includes_fixed_rtt():
    model = ResponseTimeModel(bandwidth_bps=384_000.0, fixed_rtt_seconds=0.05)
    assert model.uplink_delay(0) == 0.0
    assert model.uplink_delay(480) == pytest.approx(0.05 + 480 * 8 / 384_000.0)


def test_response_time_equation_one():
    """With no confirmed-late bytes the formula reduces to the paper's Eq. 1."""
    model = ResponseTimeModel(bandwidth_bps=384_000.0)
    td = model.seconds_per_byte
    uplink, rr, r = 100.0, 10_000.0, 20_000.0
    expected = rr * (uplink * td + 0.5 * rr * td) / r
    assert model.response_time(uplink, rr, 0.0, r) == pytest.approx(expected)


def test_response_time_fully_cached_query_is_zero():
    model = ResponseTimeModel()
    assert model.response_time(0.0, 0.0, 0.0, 10_000.0) == 0.0


def test_response_time_no_results_with_contact_is_uplink_delay():
    model = ResponseTimeModel()
    assert model.response_time(500.0, 0.0, 0.0, 0.0) == pytest.approx(model.uplink_delay(500.0))


def test_response_time_confirmed_bytes_wait_for_response():
    model = ResponseTimeModel()
    td = model.seconds_per_byte
    value = model.response_time(uplink_bytes=100, downloaded_result_bytes=1_000,
                                confirmed_cached_bytes=1_000, total_result_bytes=2_000)
    t_qr = 100 * td
    expected = (1_000 * (t_qr + 0.5 * 1_000 * td) + 1_000 * (t_qr + 1_000 * td)) / 2_000
    assert value == pytest.approx(expected)


def test_more_saved_bytes_means_lower_response_time():
    model = ResponseTimeModel()
    total = 50_000.0
    slower = model.response_time(200, total, 0.0, total)
    faster = model.response_time(200, total * 0.25, 0.0, total)
    assert faster < slower


def test_query_cost_false_miss_bytes():
    cost = QueryCost(query_index=0, query_type="range", cached_result_bytes=1_000,
                     saved_bytes=400)
    assert cost.false_miss_bytes == 600
    cost2 = QueryCost(query_index=0, query_type="range", cached_result_bytes=100,
                      saved_bytes=400)
    assert cost2.false_miss_bytes == 0.0


def test_accumulator_rates_and_means():
    acc = CostAccumulator()
    acc.add(QueryCost(query_index=0, query_type="range", uplink_bytes=100,
                      downlink_bytes=1_000, result_bytes=2_000, saved_bytes=1_000,
                      cached_result_bytes=1_500, response_time=0.5,
                      client_cpu_seconds=0.001, contacted_server=True,
                      server_cpu_seconds=0.002))
    acc.add(QueryCost(query_index=1, query_type="knn", uplink_bytes=0,
                      downlink_bytes=0, result_bytes=2_000, saved_bytes=2_000,
                      cached_result_bytes=2_000, response_time=0.0,
                      client_cpu_seconds=0.003, contacted_server=False))
    assert len(acc) == 2
    assert acc.mean_uplink_bytes() == 50
    assert acc.mean_downlink_bytes() == 500
    assert acc.cache_hit_rate() == pytest.approx(3_000 / 4_000)
    assert acc.byte_hit_rate() == pytest.approx(3_500 / 4_000)
    assert acc.false_miss_rate() == pytest.approx(500 / 3_500)
    assert acc.mean_response_time() == pytest.approx(0.25)
    assert acc.mean_client_cpu_seconds() == pytest.approx(0.002)
    assert acc.mean_server_cpu_seconds() == pytest.approx(0.002)
    assert acc.server_contact_rate() == pytest.approx(0.5)


def test_accumulator_empty_is_all_zero():
    acc = CostAccumulator()
    assert acc.cache_hit_rate() == 0.0
    assert acc.byte_hit_rate() == 0.0
    assert acc.false_miss_rate() == 0.0
    assert acc.mean_response_time() == 0.0
    assert acc.server_contact_rate() == 0.0


def test_hitc_equals_hitb_times_one_minus_fmr():
    """Equation 2 of the paper holds for the aggregated byte-level metrics."""
    acc = CostAccumulator()
    acc.add(QueryCost(query_index=0, query_type="range", result_bytes=4_000,
                      saved_bytes=1_000, cached_result_bytes=2_000))
    acc.add(QueryCost(query_index=1, query_type="knn", result_bytes=1_000,
                      saved_bytes=500, cached_result_bytes=500))
    assert acc.cache_hit_rate() == pytest.approx(
        acc.byte_hit_rate() * (1.0 - acc.false_miss_rate()))
