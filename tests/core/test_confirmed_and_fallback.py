"""Regression tests for two proactive-caching cost-accounting bugs.

1. kNN queries can pop a *cached* object after a missing node was set aside
   (a "blocked" cached object).  Such objects must travel in the remainder
   query as confirmation-only frontier targets: the server confirms their
   membership but never re-ships their payload, and their bytes flow into
   the response-time model as confirmed cached bytes.

2. The "fewer than k objects reachable" exit of the client kNN walk used a
   dead conditional (``execution.frontier`` is always empty there) that
   always produced ``k_remaining = None``.  The exit is only reached when
   nothing at all was set aside — i.e. the whole tree was served from the
   cache — so completeness is provable; anything set aside lands in the
   frontier-building path, which does fall back to the server.
"""

import pytest

from repro.core.cache import ProactiveCache
from repro.core.client import ClientQueryProcessor
from repro.core.items import TargetKind
from repro.core.server import ServerQueryProcessor
from repro.core.supporting_index import SupportingIndexPolicy
from repro.geometry import Point, Rect
from repro.rtree import SizeModel, bulk_load_str
from repro.rtree.knn import knn_search
from repro.sim.config import SimulationConfig
from repro.sim.sessions import ProactiveSession
from repro.workload.queries import KNNQuery, RangeQuery
from repro.workload.trace import TraceRecord

from tests.conftest import make_records


MODEL = SizeModel(page_bytes=256)


@pytest.fixture(scope="module")
def tree():
    return bulk_load_str(make_records(150, seed=21), size_model=MODEL)


@pytest.fixture(scope="module")
def server(tree):
    return ServerQueryProcessor(tree, size_model=MODEL)


def make_client(server, capacity=10_000_000):
    cache = ProactiveCache(capacity_bytes=capacity, size_model=MODEL)
    client = ClientQueryProcessor(cache, root_id=server.root_id, root_mbr=server.root_mbr)
    return cache, client


def warm(cache, client, server, query):
    from tests.core.test_client_server import apply_response
    cache.tick()
    execution = client.execute(query)
    if not execution.complete:
        response = server.execute(query, execution.remainder(),
                                  SupportingIndexPolicy.adaptive())
        apply_response(cache, response)


def find_blocked_knn(client, k_values=(3, 5, 8, 12)):
    """Scan anchors until a kNN execution yields blocked cached objects."""
    for k in k_values:
        for ix in range(2, 19):
            for iy in range(2, 19):
                query = KNNQuery(point=Point(ix / 20.0, iy / 20.0), k=k)
                execution = client.execute(query)
                if execution.blocked_cached_objects > 0 and not execution.complete:
                    return query, execution
    raise AssertionError("no blocked-cached-object scenario found")


def find_confirmed_knn(client, server, policy=None, k_values=(3, 5, 8, 12)):
    """Find a kNN query whose server response confirms a cached object.

    A blocked cached object only produces a confirm-only *delivery* when it
    is among the k results the server sends back, so scan until one is.
    """
    policy = policy or SupportingIndexPolicy.adaptive()
    for k in k_values:
        for ix in range(2, 19):
            for iy in range(2, 19):
                query = KNNQuery(point=Point(ix / 20.0, iy / 20.0), k=k)
                execution = client.execute(query)
                if execution.blocked_cached_objects == 0 or execution.complete:
                    continue
                response = server.execute(query, execution.remainder(), policy)
                if response.confirmation_count() > 0:
                    return query, execution
    raise AssertionError("no confirmed-delivery scenario found")


# --------------------------------------------------------------------------- #
# confirmation-only frontier targets
# --------------------------------------------------------------------------- #
def test_blocked_cached_objects_become_confirm_only_targets(server, tree):
    cache, client = make_client(server)
    warm(cache, client, server, RangeQuery(window=Rect(0.35, 0.35, 0.75, 0.75)))
    query, execution = find_blocked_knn(client)

    confirm_targets = [target for item in execution.frontier for target in item
                       if target.kind is TargetKind.OBJECT and target.confirm_only]
    assert confirm_targets, "blocked cached objects must ship as confirm-only"
    for target in confirm_targets:
        assert cache.has_object(target.object_id)


def test_server_never_reships_confirm_only_payloads(server, tree):
    cache, client = make_client(server)
    warm(cache, client, server, RangeQuery(window=Rect(0.35, 0.35, 0.75, 0.75)))
    query, execution = find_confirmed_knn(client, server)

    response = server.execute(query, execution.remainder(),
                              SupportingIndexPolicy.adaptive())
    confirmed = [d for d in response.deliveries if d.confirm_only]
    downloads = [d for d in response.deliveries if not d.confirm_only]
    assert confirmed, "scenario must actually confirm a cached object"
    # Confirm-only deliveries carry no payload bytes on the wire...
    assert all(delivery.size_bytes == 0 for delivery in confirmed)
    assert response.result_bytes() == sum(d.record.size_bytes for d in downloads)
    # ...but their true object bytes are reported as confirmed cached bytes.
    assert response.confirmed_cached_bytes() == \
        sum(d.record.size_bytes for d in confirmed)
    assert response.confirmation_count() == len(confirmed)
    # Every confirm-only delivery answers an object the client already holds.
    for delivery in confirmed:
        assert cache.has_object(delivery.record.object_id)
    # The query answer is still exactly the true kNN result.
    result_ids = set(execution.saved_objects) | response.result_object_ids()
    true_ids = {oid for oid, _ in knn_search(tree, query.point, query.k)}
    assert result_ids == true_ids


def test_session_accounts_confirmed_bytes_and_speeds_up_response(tree):
    config = SimulationConfig.tiny(object_count=150).with_overrides(
        explicit_cache_bytes=10_000_000)
    session = ProactiveSession(tree, config,
                               server=ServerQueryProcessor(tree, size_model=MODEL))
    session.process(TraceRecord(index=0, position=Point(0.5, 0.5), think_time=1.0,
                                query=RangeQuery(window=Rect(0.35, 0.35, 0.75, 0.75))))
    query, execution = find_confirmed_knn(session.client, session.server,
                                          policy=session.policy)
    blocked_bytes = sum(
        tree.objects[target.object_id].size_bytes
        for item in execution.frontier for target in item
        if target.kind is TargetKind.OBJECT and target.confirm_only)

    cost = session.process(TraceRecord(index=1, position=query.point, think_time=1.0,
                                       query=query))
    assert cost.contacted_server
    # The server confirms (a subset of) the shipped confirm-only targets —
    # whichever of them are among the k results — and never more.
    assert 0 < cost.confirmed_cached_bytes <= blocked_bytes
    # No object bytes were re-downloaded for the blocked cached objects:
    # downloads plus confirmations exactly cover the server-delivered part.
    delivered_bytes = cost.result_bytes - sum(obj.size_bytes for obj
                                              in execution.saved_objects.values())
    assert cost.downloaded_result_bytes + cost.confirmed_cached_bytes == \
        pytest.approx(delivered_bytes)
    # Confirmation beats re-downloading: the same query charged as a full
    # re-download would have a strictly larger response time.
    redownload_time = session.timing.response_time(
        uplink_bytes=cost.uplink_bytes,
        downloaded_result_bytes=cost.downloaded_result_bytes + cost.confirmed_cached_bytes,
        confirmed_cached_bytes=0.0,
        total_result_bytes=cost.result_bytes)
    assert cost.response_time < redownload_time


# --------------------------------------------------------------------------- #
# the "fewer than k objects" exit
# --------------------------------------------------------------------------- #
def test_knn_complete_without_server_when_whole_tree_cached(server, tree):
    cache, client = make_client(server)
    warm(cache, client, server, RangeQuery(window=Rect(0.0, 0.0, 1.0, 1.0)))
    query = KNNQuery(point=Point(0.5, 0.5), k=len(tree) + 50)
    execution = client.execute(query)
    # Nothing was set aside, so the local answer is provably complete even
    # though fewer than k objects exist.
    assert execution.complete
    assert execution.k_remaining is None
    assert not execution.frontier
    assert len(execution.saved_objects) == len(tree)


def test_knn_falls_back_to_server_when_cache_is_partial(server, tree):
    cache, client = make_client(server)
    warm(cache, client, server, RangeQuery(window=Rect(0.0, 0.0, 0.45, 0.45)))
    query = KNNQuery(point=Point(0.2, 0.2), k=len(tree) + 50)
    execution = client.execute(query)
    # Parts of the tree were set aside as missing: the client cannot prove
    # the dataset holds fewer than k objects, so it must ask the server.
    assert not execution.complete
    assert execution.frontier
    assert execution.k_remaining == query.k - len(execution.saved_objects)
    response = server.execute(query, execution.remainder(),
                              SupportingIndexPolicy.adaptive())
    result_ids = set(execution.saved_objects) | response.result_object_ids()
    assert result_ids == set(tree.objects)
