"""Tests for the replacement policies (LRU, MRU, FAR, GRD family)."""

import pytest

from repro.core.cache import ProactiveCache
from repro.core.items import CacheEntry, CachedIndexNode, CachedObject, item_key_for_node, item_key_for_object
from repro.core.replacement import (
    FARPolicy,
    GRD1Policy,
    GRD2Policy,
    GRD3Policy,
    LRUPolicy,
    MRUPolicy,
    make_policy,
)
from repro.geometry import Point, Rect
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()


def _leaf_snapshot(node_id):
    element = CacheEntry(mbr=Rect(0, 0, 0.05, 0.05), code="", object_id=node_id * 10)
    return CachedIndexNode(node_id=node_id, level=0, elements={"": element})


def _object(object_id, x=0.0, size=400):
    return CachedObject(object_id=object_id, mbr=Rect(x, 0, x + 0.01, 0.01), size_bytes=size)


def build_cache(policy, capacity=3_000):
    cache = ProactiveCache(capacity_bytes=capacity, size_model=MODEL,
                           replacement_policy=policy)
    cache.insert_node_snapshot(_leaf_snapshot(1), parent_node_id=None)
    return cache


def test_make_policy_registry():
    for name in ("LRU", "MRU", "FAR", "GRD1", "GRD2", "GRD3"):
        assert make_policy(name).name == name
    assert make_policy("grd3").name == "GRD3"
    with pytest.raises(ValueError):
        make_policy("CLOCK")


def test_lru_evicts_oldest_access():
    cache = build_cache(LRUPolicy())
    for object_id in (1, 2, 3):
        cache.tick()
        cache.insert_object(_object(object_id, size=900), parent_node_id=1)
    cache.tick()
    cache.touch(item_key_for_object(1))  # make object 1 recently used
    cache.tick()
    cache.insert_object(_object(4, size=900), parent_node_id=1)
    assert cache.has_object(1)
    assert not cache.has_object(2)


def test_mru_evicts_most_recent_access():
    cache = build_cache(MRUPolicy())
    for object_id in (1, 2, 3):
        cache.tick()
        cache.insert_object(_object(object_id, size=900), parent_node_id=1)
    cache.tick()
    cache.insert_object(_object(4, size=900), parent_node_id=1)
    # The most recently inserted/used item (object 3) is the victim.
    assert not cache.has_object(3)
    assert cache.has_object(1)


def test_far_evicts_farthest_from_client():
    cache = build_cache(FARPolicy())
    cache.tick()
    cache.insert_object(_object(1, x=0.9, size=900), parent_node_id=1)
    cache.tick()
    cache.insert_object(_object(2, x=0.05, size=900), parent_node_id=1)
    cache.tick()
    cache.insert_object(_object(3, x=0.4, size=900), parent_node_id=1)
    context = {"client_position": Point(0.0, 0.0)}
    cache.insert_object(_object(4, x=0.01, size=900), parent_node_id=1, context=context)
    assert not cache.has_object(1)  # farthest from (0, 0)
    assert cache.has_object(2)


def test_far_without_position_falls_back_to_recency():
    cache = build_cache(FARPolicy())
    for object_id in (1, 2, 3):
        cache.tick()
        cache.insert_object(_object(object_id, size=900), parent_node_id=1)
    cache.tick()
    cache.insert_object(_object(4, size=900), parent_node_id=1)
    assert not cache.has_object(1)


def test_grd3_evicts_lowest_probability_leaf():
    cache = build_cache(GRD3Policy())
    for object_id in (1, 2, 3):
        cache.tick()
        cache.insert_object(_object(object_id, size=900), parent_node_id=1)
    # Give objects 2 and 3 extra hits over several queries so object 1's
    # probability decays below theirs.
    for _ in range(6):
        cache.tick()
        cache.touch(item_key_for_object(2))
        cache.touch(item_key_for_object(3))
    cache.insert_object(_object(4, size=900), parent_node_id=1)
    assert not cache.has_object(1)
    assert cache.has_object(2)
    assert cache.has_object(3)


def test_grd3_never_evicts_internal_items_directly():
    cache = ProactiveCache(capacity_bytes=5_000, size_model=MODEL,
                           replacement_policy=GRD3Policy())
    cache.insert_node_snapshot(_leaf_snapshot(1), parent_node_id=None)
    cache.insert_object(_object(1, size=2_000), parent_node_id=1)
    cache.tick()
    cache.insert_object(_object(2, size=2_000), parent_node_id=1)
    cache.tick()
    # Inserting a third large object forces evictions, but the parent node
    # (which has cached children) must survive as long as a child remains.
    cache.insert_object(_object(3, size=2_000), parent_node_id=1)
    assert cache.has_node(1)
    cache.validate()


def test_grd_policies_share_score_semantics():
    cache = build_cache(GRD3Policy())
    cache.tick()
    cache.insert_object(_object(1), parent_node_id=1)
    state = cache.items[item_key_for_object(1)]
    for policy in (GRD1Policy(), GRD3Policy()):
        assert policy.score(state, cache, {}) == pytest.approx(
            state.access_probability(cache.clock))
    # For a leaf item, GRD2's EBRS equals prob (Corollary 5.1).
    assert GRD2Policy().score(state, cache, {}) == pytest.approx(
        state.access_probability(cache.clock))


def test_grd2_ebrs_recursive_definition():
    cache = ProactiveCache(capacity_bytes=100_000, size_model=MODEL,
                           replacement_policy=GRD2Policy())
    cache.insert_node_snapshot(_leaf_snapshot(1), parent_node_id=None)
    cache.insert_object(_object(1, size=1_000), parent_node_id=1)
    cache.insert_object(_object(2, size=3_000), parent_node_id=1)
    for _ in range(3):
        cache.tick()
        # Accessing a cached object always traverses its parent node, so the
        # parent accumulates at least as many hits (Lemma 5.3's premise).
        cache.touch(item_key_for_node(1))
        cache.touch(item_key_for_object(2))
    policy = GRD2Policy()
    parent_state = cache.items[item_key_for_node(1)]
    ebrs = policy.ebrs(parent_state, cache)
    children = [cache.items[item_key_for_object(1)], cache.items[item_key_for_object(2)]]
    probs = [child.access_probability(cache.clock) for child in children]
    # Lemma 5.4: min child EBRS <= EBRS(parent) <= prob(parent).
    assert min(probs) - 1e-9 <= ebrs <= parent_state.access_probability(cache.clock) + 1e-9


def test_policies_fail_gracefully_when_nothing_evictable():
    cache = ProactiveCache(capacity_bytes=1_000, size_model=MODEL,
                           replacement_policy=GRD3Policy())
    cache.insert_node_snapshot(_leaf_snapshot(1), parent_node_id=None)
    # An object bigger than the whole cache can never be admitted.
    assert not cache.insert_object(_object(1, size=5_000), parent_node_id=1)
