"""Tests for cache items, snapshot merging and frontier targets."""

import pytest

from repro.core.items import (
    CacheEntry,
    CachedIndexNode,
    CachedObject,
    FrontierTarget,
    TargetKind,
    item_key_for_node,
    item_key_for_object,
)
from repro.geometry import Rect
from repro.rtree.sizes import SizeModel


def entry(code, child_id=None, object_id=None):
    return CacheEntry(mbr=Rect(0, 0, 0.1, 0.1), code=code, child_id=child_id,
                      object_id=object_id)


def test_cache_entry_kinds():
    assert entry("0").is_super
    assert entry("0", child_id=3).is_node_entry
    assert entry("0", object_id=5).is_leaf_entry
    with pytest.raises(ValueError):
        CacheEntry(mbr=Rect(0, 0, 1, 1), code="0", child_id=1, object_id=2)


def test_cache_entry_sizes():
    model = SizeModel()
    assert entry("0").size_bytes(model) == model.super_entry_bytes()
    assert entry("0", object_id=1).size_bytes(model) == model.entry_bytes


def test_cached_node_size_grows_with_elements():
    model = SizeModel()
    node = CachedIndexNode(node_id=1, level=0)
    empty = node.size_bytes(model)
    node.elements["0"] = entry("0", object_id=1)
    assert node.size_bytes(model) == empty + model.entry_bytes


def test_merge_prefers_finer_elements():
    node = CachedIndexNode(node_id=1, level=1, elements={"0": entry("0")})
    node.merge([entry("00", child_id=4), entry("01", child_id=5)])
    assert set(node.elements) == {"00", "01"}
    assert all(not e.is_super for e in node.entries())


def test_merge_keeps_coarse_elements_for_uncovered_regions():
    node = CachedIndexNode(node_id=1, level=1,
                           elements={"0": entry("0"), "1": entry("1")})
    node.merge([entry("00", child_id=4), entry("01", child_id=5)])
    assert set(node.elements) == {"00", "01", "1"}


def test_merge_real_entry_wins_over_super_at_same_code():
    node = CachedIndexNode(node_id=1, level=1, elements={"0": entry("0")})
    node.merge([entry("0", child_id=9), entry("1", child_id=10)])
    assert node.elements["0"].child_id == 9


def test_merge_is_idempotent():
    elements = {"0": entry("0", child_id=1), "1": entry("1")}
    node = CachedIndexNode(node_id=1, level=1, elements=dict(elements))
    node.merge(elements.values())
    assert set(node.elements) == {"0", "1"}


def test_real_and_super_entry_listing():
    node = CachedIndexNode(node_id=1, level=0,
                           elements={"0": entry("0"), "1": entry("1", object_id=2)})
    assert len(node.real_entries()) == 1
    assert len(node.super_entries()) == 1


def test_copy_is_independent():
    node = CachedIndexNode(node_id=1, level=0, elements={"0": entry("0")})
    clone = node.copy()
    clone.elements["1"] = entry("1")
    assert "1" not in node.elements


def test_frontier_target_constructors():
    rect = Rect(0, 0, 0.2, 0.2)
    node = FrontierTarget.for_node(3, rect, priority=0.5)
    obj = FrontierTarget.for_object(9, rect, parent_node_id=3)
    sup = FrontierTarget.for_super(3, "01", rect)
    assert node.kind is TargetKind.NODE and node.node_id == 3
    assert obj.kind is TargetKind.OBJECT and obj.parent_node_id == 3
    assert sup.kind is TargetKind.SUPER and sup.code == "01"
    model = SizeModel()
    assert node.size_bytes(model) == model.frontier_entry_bytes()


def test_item_keys():
    assert item_key_for_node(4) == "node:4"
    assert item_key_for_object(4) == "obj:4"
    assert item_key_for_node(4) != item_key_for_object(4)


def test_cached_object_fields():
    obj = CachedObject(object_id=1, mbr=Rect(0, 0, 0.1, 0.1), size_bytes=512)
    assert obj.size_bytes == 512
