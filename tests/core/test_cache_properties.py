"""Property-style tests: random cache workloads never break the invariants.

A seeded random sequence of snapshot inserts, merges, object inserts,
touches, ticks and subtree evictions is thrown at the proactive cache under
every replacement policy; after every operation ``ProactiveCache.validate()``
must hold (byte accounting in sync, no unreachable items, parent/child links
consistent).  A dedicated test drives the GRD3 step-(6) reinsert path.
"""

import random

import pytest

from repro.core.cache import ProactiveCache
from repro.core.items import (
    CacheEntry,
    CachedIndexNode,
    CachedObject,
    item_key_for_node,
    item_key_for_object,
)
from repro.core.replacement import GRD3Policy, make_policy
from repro.geometry import Point, Rect
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()
POLICIES = ("LRU", "MRU", "FAR", "GRD1", "GRD2", "GRD3")


def random_snapshot(rng, node_id, level, entry_range=(1, 6)):
    elements = {}
    for index in range(rng.randint(*entry_range)):
        code = format(index, "b").zfill(3)
        x, y = rng.random() * 0.9, rng.random() * 0.9
        mbr = Rect(x, y, x + 0.05, y + 0.05)
        if rng.random() < 0.3:
            elements[code] = CacheEntry(mbr=mbr, code=code)  # super entry
        else:
            elements[code] = CacheEntry(mbr=mbr, code=code,
                                        object_id=node_id * 1000 + index)
    return CachedIndexNode(node_id=node_id, level=level, elements=elements)


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("seed", (1, 7, 42))
def test_random_workload_preserves_invariants(policy_name, seed):
    rng = random.Random(seed)
    cache = ProactiveCache(capacity_bytes=12_000, size_model=MODEL,
                           replacement_policy=make_policy(policy_name))
    context = {"client_position": Point(0.5, 0.5)}
    node_ids = list(range(1, 25))

    for step in range(300):
        cache.tick()
        op = rng.random()
        cached_nodes = sorted(cache.cached_node_ids())
        if op < 0.35:
            # Insert or merge a node snapshot (random parent, maybe None).
            node_id = rng.choice(node_ids)
            parent = rng.choice([None] + cached_nodes) if cached_nodes else None
            if parent == node_id:
                parent = None
            level = 1 if parent is None else 0
            cache.insert_node_snapshot(random_snapshot(rng, node_id, level),
                                       parent, context)
        elif op < 0.6 and cached_nodes:
            # Insert an object under a random cached node.
            parent = rng.choice(cached_nodes)
            object_id = rng.randint(1, 400)
            size = rng.randint(100, 1500)
            x, y = rng.random(), rng.random()
            cache.insert_object(CachedObject(object_id=object_id,
                                             mbr=Rect(x, y, x, y), size_bytes=size),
                                parent, context)
        elif op < 0.8:
            # Touch a random (possibly absent) item.
            if rng.random() < 0.5 and cached_nodes:
                cache.touch(item_key_for_node(rng.choice(cached_nodes)))
            else:
                cache.touch(item_key_for_object(rng.randint(1, 400)))
        elif cache.items:
            # Evict a random subtree through the public API.
            cache.evict_subtree(rng.choice(sorted(cache.items)))
        cache.validate()
        # The documented overrun allowance is at most one merged node.
        assert cache.used_bytes <= cache.capacity_bytes + 2_048

    cache.validate()


def test_grd3_step6_reinsert_keeps_cache_valid():
    """Drive the step-(6) correction: one dominant item is swapped back in.

    Step (6) only runs when nothing is protected, i.e. when the trigger is a
    root-level snapshot insert.  The geometry below makes the hot object the
    *last* eviction victim, worth more than everything that remains, so GRD3
    must evict the rest, reinsert the hot object and reject the newcomer.
    """
    cache = ProactiveCache(capacity_bytes=10_000, size_model=MODEL,
                           replacement_policy=GRD3Policy())
    parent = CachedIndexNode(node_id=1, level=0, elements={
        "0": CacheEntry(mbr=Rect(0, 0, 0.1, 0.1), code="0", object_id=10)})
    assert cache.insert_node_snapshot(parent, None)
    # One big, frequently hit object: high access probability, high benefit.
    assert cache.insert_object(CachedObject(object_id=10, mbr=Rect(0, 0, 0.1, 0.1),
                                            size_bytes=3_000), 1)
    hot_key = item_key_for_object(10)
    for _ in range(10):
        cache.tick()
        cache.touch(hot_key)
    # A crowd of cold root-level snapshots that will be evicted first.
    for node_id in range(2, 6):
        cache.tick()
        cache.insert_node_snapshot(CachedIndexNode(node_id=node_id, level=0, elements={
            "0": CacheEntry(mbr=Rect(0.2, 0.2, 0.3, 0.3), code="0",
                            object_id=node_id * 100)}), None)
    for _ in range(25):
        cache.tick()  # let the cold snapshots' probabilities decay
    cache.validate()
    used_before = cache.used_bytes

    # A huge root-level snapshot whose insertion demands evicting the cold
    # snapshots AND the hot object — but not so much room that the hot
    # object could never come back (its size stays under the new limit).
    big = CachedIndexNode(node_id=50, level=0, elements={
        format(index, "b").zfill(9): CacheEntry(
            mbr=Rect(0.4, 0.4, 0.5, 0.5), code=format(index, "b").zfill(9),
            object_id=5_000 + index)
        for index in range(194)})
    big_size = big.size_bytes(MODEL)
    limit = cache.capacity_bytes - big_size
    assert used_before - 4 * 40 > limit          # evicting the colds is not enough
    assert 3_000 <= limit                        # the hot object fits back in

    accepted = cache.insert_node_snapshot(big, None)
    cache.validate()
    # Step (6) swapped the dominant item back in instead of the newcomer.
    assert not accepted
    assert cache.has_object(10), "step (6) must reinsert the dominant item"
    assert not cache.has_node(50)
    assert cache.has_node(1)                     # the hot object's parent survives
    assert not any(cache.has_node(node_id) for node_id in range(2, 6))
    assert cache.evictions >= 5                  # 4 cold snapshots + the hot object
    assert cache.used_bytes <= cache.capacity_bytes
