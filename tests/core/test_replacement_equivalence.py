"""GRD2 ≡ GRD3 victim equivalence and approximation-style properties (Section 5).

The paper proves (Lemma 5.4 / Theorem 5.5) that the EBRS-based greedy GRD2
always picks leaf items with the lowest access probability — i.e. exactly the
victims GRD3 picks — and that GRD3 is a 2-approximation of the constrained
knapsack optimum.  These tests exercise both claims on randomized cache
states.
"""

import itertools
import random

import pytest

from repro.core.cache import ProactiveCache
from repro.core.items import CacheEntry, CachedIndexNode, CachedObject
from repro.core.replacement import GRD2Policy, GRD3Policy
from repro.geometry import Rect
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()


def build_random_cache(seed, policy, capacity=40_000):
    """A two-level cache (root -> leaves -> objects) with random hit counts."""
    rng = random.Random(seed)
    cache = ProactiveCache(capacity_bytes=capacity, size_model=MODEL,
                           replacement_policy=policy)
    root = CachedIndexNode(node_id=1, level=1, elements={
        "0": CacheEntry(mbr=Rect(0, 0, 0.5, 1), code="0", child_id=2),
        "1": CacheEntry(mbr=Rect(0.5, 0, 1, 1), code="1", child_id=3),
    })
    cache.insert_node_snapshot(root, parent_node_id=None)
    for leaf_id in (2, 3):
        leaf = CachedIndexNode(node_id=leaf_id, level=0, elements={
            "": CacheEntry(mbr=Rect(0, 0, 0.5, 0.5), code="", object_id=leaf_id * 100),
        })
        cache.insert_node_snapshot(leaf, parent_node_id=1)
    object_id = itertools.count(1000)
    for _ in range(12):
        cache.tick()
        oid = next(object_id)
        parent = rng.choice((2, 3))
        cache.insert_object(CachedObject(object_id=oid, mbr=Rect(0, 0, 0.01, 0.01),
                                         size_bytes=rng.randint(500, 2500)),
                            parent_node_id=parent)
    # Random extra hits.
    keys = [key for key in cache.items if key.startswith("obj:")]
    for _ in range(30):
        cache.tick()
        cache.touch(rng.choice(keys))
    return cache


def _lowest_prob_leaf(cache):
    leaves = cache.leaf_items()
    return min(leaves, key=lambda s: (s.access_probability(cache.clock), s.key)).key


@pytest.mark.parametrize("seed", range(6))
def test_grd2_and_grd3_pick_the_same_victims(seed):
    """Evicting the same amount with GRD2 and GRD3 removes the same items."""
    cache2 = build_random_cache(seed, GRD2Policy())
    cache3 = build_random_cache(seed, GRD3Policy())
    assert set(cache2.items) == set(cache3.items)

    bytes_needed = 5_000
    free2 = cache2.capacity_bytes - cache2.used_bytes
    GRD2Policy().make_room(cache2, free2 + bytes_needed, {}, set())
    free3 = cache3.capacity_bytes - cache3.used_bytes
    GRD3Policy().make_room(cache3, free3 + bytes_needed, {}, set())
    assert set(cache2.items) == set(cache3.items)


@pytest.mark.parametrize("seed", range(4))
def test_grd2_always_selects_a_lowest_probability_leaf(seed):
    """Lemma 5.4: the minimum-EBRS item is a leaf with minimal prob."""
    cache = build_random_cache(seed, GRD2Policy())
    policy = GRD2Policy()
    best = min(cache.items.values(), key=lambda s: (policy.ebrs(s, cache), s.key))
    leaves = cache.leaf_items()
    min_leaf_prob = min(s.access_probability(cache.clock) for s in leaves)
    assert best.is_leaf_item
    assert best.access_probability(cache.clock) == pytest.approx(min_leaf_prob)


@pytest.mark.parametrize("seed", range(4))
def test_grd3_retained_benefit_is_2_approximation_of_bruteforce(seed):
    """Theorem 5.5 checked against a brute-force optimum on the leaf items."""
    cache = build_random_cache(seed, GRD3Policy())
    # Consider evicting among the *object* items only (all are leaves), which
    # makes the constrained and unconstrained problems coincide and allows a
    # brute-force optimum over subsets.
    objects = [s for s in cache.leaf_items() if s.key.startswith("obj:")]
    total_size = sum(s.size_bytes for s in objects)
    budget = total_size // 2  # keep at most half the object bytes

    def benefit(states):
        return sum(s.access_probability(cache.clock) * s.size_bytes for s in states)

    best_kept = 0.0
    for mask in range(1 << len(objects)):
        kept = [s for i, s in enumerate(objects) if mask >> i & 1]
        if sum(s.size_bytes for s in kept) <= budget:
            best_kept = max(best_kept, benefit(kept))

    # GRD3 keeps the highest-prob leaves greedily.
    ranked = sorted(objects, key=lambda s: -s.access_probability(cache.clock))
    kept, used = [], 0
    for state in ranked:
        if used + state.size_bytes <= budget:
            kept.append(state)
            used += state.size_bytes
    greedy_benefit = benefit(kept)
    if best_kept > 0:
        assert greedy_benefit >= 0.5 * best_kept - 1e-9
