"""Unit tests for the client-side processor and the server-side resume.

The scenarios mirror the paper's running examples: a range query that warms
the cache, followed by other query types that reuse the cached objects and
index (Examples 1.1–1.3), plus the kNN missing-entry behaviour of
Example 3.1.
"""

import pytest

from repro.core.cache import ProactiveCache
from repro.core.client import ClientQueryProcessor
from repro.core.items import CachedIndexNode, CachedObject, TargetKind
from repro.core.server import ServerQueryProcessor
from repro.core.supporting_index import SupportingIndexPolicy
from repro.geometry import Point, Rect
from repro.rtree import SizeModel, bulk_load_str
from repro.rtree.range_search import range_search
from repro.rtree.knn import knn_search
from repro.workload.queries import JoinQuery, KNNQuery, RangeQuery

from tests.conftest import make_records


MODEL = SizeModel(page_bytes=256)


@pytest.fixture(scope="module")
def records():
    return make_records(150, seed=21)


@pytest.fixture(scope="module")
def tree(records):
    return bulk_load_str(records, size_model=MODEL)


@pytest.fixture(scope="module")
def server(tree):
    return ServerQueryProcessor(tree, size_model=MODEL)


def fresh_client(server, capacity=10_000_000):
    cache = ProactiveCache(capacity_bytes=capacity, size_model=MODEL)
    client = ClientQueryProcessor(cache, root_id=server.root_id, root_mbr=server.root_mbr)
    return cache, client


def apply_response(cache, response):
    for snapshot in response.index_snapshots:
        cache.insert_node_snapshot(
            CachedIndexNode(snapshot.node_id, snapshot.level,
                            {e.code: e for e in snapshot.elements}),
            snapshot.parent_id)
    for delivery in response.deliveries:
        cache.insert_object(CachedObject(delivery.record.object_id, delivery.record.mbr,
                                         delivery.record.size_bytes),
                            delivery.parent_node_id)


def run_query(cache, client, server, query, policy=None):
    policy = policy or SupportingIndexPolicy.adaptive()
    cache.tick()
    execution = client.execute(query)
    if execution.complete:
        return set(execution.saved_objects), execution, None
    remainder = execution.remainder()
    response = server.execute(query, remainder, policy)
    apply_response(cache, response)
    return set(execution.saved_objects) | response.result_object_ids(), execution, response


# --------------------------------------------------------------------------- #
# cold-cache behaviour
# --------------------------------------------------------------------------- #
def test_cold_cache_range_goes_to_server_with_root_frontier(server):
    cache, client = fresh_client(server)
    query = RangeQuery(window=Rect(0.2, 0.2, 0.4, 0.4))
    execution = client.execute(query)
    assert not execution.complete
    assert execution.saved_objects == {}
    assert len(execution.frontier) == 1
    target = execution.frontier[0][0]
    assert target.kind is TargetKind.NODE
    assert target.node_id == server.root_id


def test_cold_cache_results_match_ground_truth(server, tree):
    cache, client = fresh_client(server)
    query = RangeQuery(window=Rect(0.2, 0.2, 0.5, 0.5))
    results, _, response = run_query(cache, client, server, query)
    assert results == set(range_search(tree, query.window))
    assert response is not None
    assert response.result_bytes() > 0
    assert response.index_bytes(MODEL) > 0


def test_response_index_snapshots_are_parent_ordered(server, tree):
    cache, client = fresh_client(server)
    query = RangeQuery(window=Rect(0.1, 0.1, 0.6, 0.6))
    _, _, response = run_query(cache, client, server, query)
    seen = set()
    for snapshot in response.index_snapshots:
        if snapshot.parent_id is not None:
            assert snapshot.parent_id in seen
        seen.add(snapshot.node_id)


# --------------------------------------------------------------------------- #
# warm-cache reuse (Examples 1.1–1.3)
# --------------------------------------------------------------------------- #
def test_warm_range_query_is_answered_locally(server, tree):
    cache, client = fresh_client(server)
    warm = RangeQuery(window=Rect(0.2, 0.2, 0.6, 0.6))
    run_query(cache, client, server, warm)
    repeat = RangeQuery(window=Rect(0.3, 0.3, 0.5, 0.5))
    results, execution, _ = run_query(cache, client, server, repeat)
    assert execution.complete
    assert results == set(range_search(tree, repeat.window))


def test_overlapping_range_query_ships_only_missing_parts(server, tree):
    cache, client = fresh_client(server)
    warm = RangeQuery(window=Rect(0.2, 0.2, 0.5, 0.5))
    run_query(cache, client, server, warm)
    wider = RangeQuery(window=Rect(0.15, 0.15, 0.55, 0.55))
    results, execution, response = run_query(cache, client, server, wider)
    assert results == set(range_search(tree, wider.window))
    if response is not None:
        # Cached result objects are not re-downloaded.
        delivered = response.result_object_ids()
        assert delivered.isdisjoint(set(execution.saved_objects))


def test_knn_after_range_reuses_cached_objects(server, tree):
    """Example 1.2/1.3: a kNN query can reuse objects cached by a range query."""
    cache, client = fresh_client(server)
    warm = RangeQuery(window=Rect(0.3, 0.3, 0.7, 0.7))
    run_query(cache, client, server, warm)
    knn = KNNQuery(point=Point(0.5, 0.5), k=3)
    results, execution, _ = run_query(cache, client, server, knn)
    expected = {oid for oid, _ in knn_search(tree, knn.point, knn.k)}
    distances = sorted(tree.objects[o].mbr.min_dist_to_point(knn.point) for o in results)
    expected_distances = sorted(tree.objects[o].mbr.min_dist_to_point(knn.point)
                                for o in expected)
    assert distances == pytest.approx(expected_distances)
    assert execution.saved_objects, "cached range results should be reusable for kNN"


def test_join_after_range_reuses_cached_objects(server, tree):
    cache, client = fresh_client(server)
    warm = RangeQuery(window=Rect(0.2, 0.2, 0.8, 0.8))
    run_query(cache, client, server, warm)
    join = JoinQuery(window=Rect(0.3, 0.3, 0.7, 0.7), threshold=0.08)
    results, execution, _ = run_query(cache, client, server, join)
    from repro.sim.sessions import true_join_results
    assert results == set(true_join_results(tree, join))
    assert execution.saved_objects, "cached range results should be reusable for joins"


def test_fully_cached_knn_avoids_server(server, tree):
    cache, client = fresh_client(server)
    warm = RangeQuery(window=Rect(0.0, 0.0, 1.0, 1.0))
    run_query(cache, client, server, warm)
    knn = KNNQuery(point=Point(0.42, 0.58), k=5)
    results, execution, _ = run_query(cache, client, server, knn)
    assert execution.complete
    expected_distances = sorted(d for _, d in knn_search(tree, knn.point, knn.k))
    got_distances = sorted(tree.objects[o].mbr.min_dist_to_point(knn.point) for o in results)
    assert got_distances == pytest.approx(expected_distances)


# --------------------------------------------------------------------------- #
# kNN missing-entry semantics (Example 3.1)
# --------------------------------------------------------------------------- #
def test_knn_frontier_is_pruned(server):
    cache, client = fresh_client(server)
    # Warm with a window so some index is cached but most of the space is not.
    run_query(cache, client, server, RangeQuery(window=Rect(0.4, 0.4, 0.6, 0.6)))
    knn = KNNQuery(point=Point(0.05, 0.95), k=2)
    cache.tick()
    execution = client.execute(knn)
    if execution.complete:
        pytest.skip("cache unexpectedly covered the query region")
    assert execution.k_remaining is not None
    assert execution.k_remaining <= knn.k
    # The pruned frontier never ships more than a handful of entries per
    # requested neighbour.
    assert len(execution.frontier) <= 10 * knn.k


def test_knn_remainder_accounts_for_saved_results(server, tree):
    cache, client = fresh_client(server)
    run_query(cache, client, server, RangeQuery(window=Rect(0.45, 0.45, 0.55, 0.55)))
    knn = KNNQuery(point=Point(0.5, 0.5), k=4)
    results, execution, response = run_query(cache, client, server, knn)
    expected_distances = sorted(d for _, d in knn_search(tree, knn.point, knn.k))
    got_distances = sorted(tree.objects[o].mbr.min_dist_to_point(knn.point) for o in results)
    assert got_distances == pytest.approx(expected_distances)
    if response is not None and execution.saved_objects:
        assert execution.k_remaining == knn.k - len(execution.saved_objects)


# --------------------------------------------------------------------------- #
# supporting-index policies
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("policy_name", ["full", "compact", "adaptive"])
def test_all_policies_produce_correct_results(server, tree, policy_name):
    policy = {"full": SupportingIndexPolicy.full(),
              "compact": SupportingIndexPolicy.compact(),
              "adaptive": SupportingIndexPolicy.adaptive(2)}[policy_name]
    cache, client = fresh_client(server)
    queries = [RangeQuery(window=Rect(0.2, 0.2, 0.5, 0.5)),
               KNNQuery(point=Point(0.4, 0.4), k=4),
               JoinQuery(window=Rect(0.3, 0.3, 0.6, 0.6), threshold=0.05),
               RangeQuery(window=Rect(0.25, 0.25, 0.45, 0.45))]
    from repro.sim.sessions import true_results
    for query in queries:
        results, _, _ = run_query(cache, client, server, query, policy=policy)
        truth = set(true_results(tree, query))
        if isinstance(query, KNNQuery):
            got = sorted(tree.objects[o].mbr.min_dist_to_point(query.point) for o in results)
            want = sorted(tree.objects[o].mbr.min_dist_to_point(query.point) for o in truth)
            assert got == pytest.approx(want)
        else:
            assert results == truth


def test_full_form_snapshots_have_no_super_entries(server):
    cache, client = fresh_client(server)
    query = RangeQuery(window=Rect(0.3, 0.3, 0.6, 0.6))
    cache.tick()
    execution = client.execute(query)
    response = server.execute(query, execution.remainder(), SupportingIndexPolicy.full())
    for snapshot in response.index_snapshots:
        assert all(not element.is_super for element in snapshot.elements)


def test_compact_form_snapshots_are_never_larger_than_full(server):
    cache_a, client_a = fresh_client(server)
    cache_b, client_b = fresh_client(server)
    query = RangeQuery(window=Rect(0.3, 0.3, 0.6, 0.6))
    cache_a.tick(), cache_b.tick()
    remainder_a = client_a.execute(query).remainder()
    remainder_b = client_b.execute(query).remainder()
    full = server.execute(query, remainder_a, SupportingIndexPolicy.full())
    compact = server.execute(query, remainder_b, SupportingIndexPolicy.compact())
    assert compact.index_bytes(MODEL) <= full.index_bytes(MODEL)


def test_adaptive_depth_interpolates_index_size(server):
    query = RangeQuery(window=Rect(0.3, 0.3, 0.6, 0.6))
    sizes = []
    for depth in (0, 2, 50):
        cache, client = fresh_client(server)
        cache.tick()
        remainder = client.execute(query).remainder()
        policy = SupportingIndexPolicy.adaptive(depth)
        response = server.execute(query, remainder, policy)
        sizes.append(response.index_bytes(MODEL))
    assert sizes[0] <= sizes[1] <= sizes[2]


def test_server_full_query_without_remainder(server, tree):
    query = RangeQuery(window=Rect(0.1, 0.1, 0.3, 0.3))
    response = server.execute(query, remainder=None)
    assert response.result_object_ids() == set(range_search(tree, query.window))
