"""Heap-based victim selection must be byte-for-byte identical to the scans.

PR 2 replaced the per-eviction ``leaf_items()`` + ``min()`` rescans in every
replacement policy with per-call lazy min-heaps.  These tests pin the
optimisation to the seed behaviour: reference implementations of the naive
scans (ported verbatim from the seed ``make_room`` bodies, modulo the
``restore_item`` accessor for GRD3's step (6)) replay the *same* random
workload on a second cache, and the full eviction sequences — order
included — must match exactly, for all six policies across multiple seeds.
"""

import random

import pytest

from repro.core.cache import ProactiveCache
from repro.core.items import (
    CacheEntry,
    CachedIndexNode,
    CachedObject,
    item_key_for_node,
    item_key_for_object,
)
from repro.core.replacement import (
    FARPolicy,
    GRD1Policy,
    GRD2Policy,
    GRD3Policy,
    LRUPolicy,
    MRUPolicy,
)
from repro.geometry import Point, Rect
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()


# --------------------------------------------------------------------- #
# reference (seed) implementations: naive scans, recursion and all
# --------------------------------------------------------------------- #
def _subtree_contains(cache, state, protect):
    if state.key in protect:
        return True
    for child_key in state.cached_children:
        child = cache.items.get(child_key)
        if child is not None and _subtree_contains(cache, child, protect):
            return True
    return False


class _NaiveScanMixin:
    """The seed base-class ``make_room``: rescan all leaves every round."""

    def make_room(self, cache, bytes_needed, context, protect):
        target = cache.capacity_bytes - bytes_needed
        while cache.used_bytes > target:
            candidates = [state for state in cache.leaf_items()
                          if state.key not in protect]
            if not candidates:
                return False
            victim = min(candidates, key=lambda s: (self.score(s, cache, context), s.key))
            cache.evict(victim.key)
        return True


class NaiveLRU(_NaiveScanMixin, LRUPolicy):
    pass


class NaiveMRU(_NaiveScanMixin, MRUPolicy):
    pass


class NaiveFAR(_NaiveScanMixin, FARPolicy):
    pass


class NaiveGRD3(GRD3Policy):
    """The seed GRD3 ``make_room``: leaf rescans and the step-(6) loop."""

    def make_room(self, cache, bytes_needed, context, protect):
        limit = cache.capacity_bytes - bytes_needed
        oversized = [state.key for state in list(cache.items.values())
                     if state.size_bytes > limit
                     and not _subtree_contains(cache, state, protect)]
        for key in oversized:
            if key in cache.items:
                cache.evict_subtree(key)

        removed = []
        while cache.used_bytes > limit:
            candidates = [state for state in cache.leaf_items() if state.key not in protect]
            if not candidates:
                return False
            victim = min(candidates,
                         key=lambda s: (s.access_probability(cache.clock), s.key))
            removed.append(victim)
            cache.evict(victim.key)

        if removed and not protect:
            last = removed[-1]
            remaining_benefit = sum(
                state.access_probability(cache.clock) * state.size_bytes
                for state in cache.items.values())
            last_benefit = last.access_probability(cache.clock) * last.size_bytes
            can_reinsert = (last.parent_key is None or last.parent_key in cache.items)
            if last_benefit > remaining_benefit and last.size_bytes <= limit and can_reinsert:
                while True:
                    evictable = [state for state in cache.leaf_items()
                                 if state.key != last.parent_key]
                    if not evictable:
                        break
                    for state in evictable:
                        cache.evict(state.key)
                if last.parent_key is None or last.parent_key in cache.items:
                    cache.restore_item(last)
        return True


class NaiveGRD2(GRD2Policy):
    """The seed GRD2: recursive EBRS recomputed for every candidate, every round."""

    def _naive_benefit_and_size(self, state, cache):
        prob = state.access_probability(cache.clock)
        benefit = prob * state.size_bytes
        size = state.size_bytes
        for child_key in state.cached_children:
            child = cache.items.get(child_key)
            if child is None:
                continue
            child_benefit, child_size = self._naive_benefit_and_size(child, cache)
            benefit += child_benefit
            size += child_size
        return benefit, size

    def _naive_ebrs(self, state, cache):
        benefit, size = self._naive_benefit_and_size(state, cache)
        return benefit / size if size else 0.0

    def make_room(self, cache, bytes_needed, context, protect):
        limit = cache.capacity_bytes - bytes_needed
        if bytes_needed > cache.capacity_bytes:
            return False
        while cache.used_bytes > limit:
            candidates = [state for state in cache.items.values()
                          if state.key not in protect
                          and not _subtree_contains(cache, state, protect)]
            if not candidates:
                return False
            victim = min(candidates,
                         key=lambda s: (self._naive_ebrs(s, cache), not s.is_leaf_item, s.key))
            cache.evict_subtree(victim.key)
        return True


class NaiveGRD1(GRD1Policy):
    """The seed GRD1: full rescan of every item per eviction round."""

    def make_room(self, cache, bytes_needed, context, protect):
        limit = cache.capacity_bytes - bytes_needed
        if bytes_needed > cache.capacity_bytes:
            return False
        while cache.used_bytes > limit:
            candidates = [state for state in cache.items.values()
                          if not _subtree_contains(cache, state, protect)]
            if not candidates:
                return False
            victim = min(candidates,
                         key=lambda s: (s.access_probability(cache.clock), s.key))
            if victim.key in cache.items:
                cache.evict_subtree(victim.key)
        return True


PAIRS = {
    "LRU": (NaiveLRU, LRUPolicy),
    "MRU": (NaiveMRU, MRUPolicy),
    "FAR": (NaiveFAR, FARPolicy),
    "GRD1": (NaiveGRD1, GRD1Policy),
    "GRD2": (NaiveGRD2, GRD2Policy),
    "GRD3": (NaiveGRD3, GRD3Policy),
}


class RecordingCache(ProactiveCache):
    """A cache that logs every eviction in order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.evict_log = []

    def evict(self, key):
        self.evict_log.append(key)
        super().evict(key)


def generate_ops(seed, steps=300):
    """A deterministic random op sequence, decoupled from cache state.

    Every op is pre-generated so the exact same sequence can be replayed
    against two caches whose internal decisions we want to compare.
    """
    rng = random.Random(seed)
    ops = []
    node_ids = list(range(1, 25))
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.40:
            node_id = rng.choice(node_ids)
            parent_choice = rng.randrange(0, 26)  # index into candidate list
            elements = {}
            for index in range(rng.randint(1, 6)):
                code = format(index, "b").zfill(3)
                x, y = rng.random() * 0.9, rng.random() * 0.9
                if rng.random() < 0.3:
                    elements[code] = CacheEntry(mbr=Rect(x, y, x + 0.05, y + 0.05),
                                                code=code)
                else:
                    elements[code] = CacheEntry(mbr=Rect(x, y, x + 0.05, y + 0.05),
                                                code=code,
                                                object_id=node_id * 1000 + index)
            ops.append(("node", node_id, parent_choice, elements))
        elif roll < 0.70:
            x, y = rng.random(), rng.random()
            ops.append(("object", rng.randint(1, 400), rng.randrange(0, 26),
                        rng.randint(100, 1500), Rect(x, y, x, y)))
        else:
            ops.append(("touch", rng.random() < 0.5, rng.randint(0, 10 ** 6)))
    return ops


def apply_ops(cache, ops):
    """Replay an op sequence; parent picks resolve against current state."""
    context = {"client_position": Point(0.5, 0.5)}
    for op in ops:
        cache.tick()
        cached_nodes = sorted(cache.cached_node_ids())
        if op[0] == "node":
            _, node_id, parent_choice, elements = op
            candidates = [None] + cached_nodes
            parent = candidates[parent_choice % len(candidates)]
            if parent == node_id:
                parent = None
            level = 1 if parent is None else 0
            snapshot = CachedIndexNode(node_id=node_id, level=level,
                                       elements=dict(elements))
            cache.insert_node_snapshot(snapshot, parent, context)
        elif op[0] == "object":
            _, object_id, parent_choice, size, mbr = op
            if not cached_nodes:
                continue
            parent = cached_nodes[parent_choice % len(cached_nodes)]
            cache.insert_object(CachedObject(object_id=object_id, mbr=mbr,
                                             size_bytes=size), parent, context)
        else:
            _, touch_node, raw = op
            if touch_node and cached_nodes:
                cache.touch(item_key_for_node(cached_nodes[raw % len(cached_nodes)]))
            else:
                cache.touch(item_key_for_object(raw % 400 + 1))
    return cache


@pytest.mark.parametrize("policy_name", sorted(PAIRS))
@pytest.mark.parametrize("seed", (3, 11, 42, 97))
def test_heap_victim_sequence_identical_to_naive_scan(policy_name, seed):
    naive_cls, current_cls = PAIRS[policy_name]
    ops = generate_ops(seed)
    naive = RecordingCache(capacity_bytes=11_000, size_model=MODEL,
                           replacement_policy=naive_cls())
    current = RecordingCache(capacity_bytes=11_000, size_model=MODEL,
                             replacement_policy=current_cls())
    apply_ops(naive, ops)
    apply_ops(current, ops)

    assert current.evict_log == naive.evict_log, (
        f"{policy_name}: heap-based eviction sequence diverged from naive scan")
    assert set(current.items) == set(naive.items)
    assert current.used_bytes == naive.used_bytes
    assert current.evictions == naive.evictions
    assert current.rejected_inserts == naive.rejected_inserts
    current.validate()
    naive.validate()


@pytest.mark.parametrize("seed", range(4))
def test_explicit_make_room_identical(seed):
    """Direct make_room calls (not via inserts) agree too, per policy."""
    for policy_name, (naive_cls, current_cls) in sorted(PAIRS.items()):
        ops = generate_ops(seed * 31 + 7, steps=120)
        naive = RecordingCache(capacity_bytes=60_000, size_model=MODEL,
                               replacement_policy=naive_cls())
        current = RecordingCache(capacity_bytes=60_000, size_model=MODEL,
                                 replacement_policy=current_cls())
        apply_ops(naive, ops)
        apply_ops(current, ops)
        assert set(naive.items) == set(current.items)

        context = {"client_position": Point(0.1, 0.9)}
        freed_naive = naive.replacement_policy.make_room(
            naive, naive.capacity_bytes - naive.used_bytes + 9_000, context, set())
        freed_current = current.replacement_policy.make_room(
            current, current.capacity_bytes - current.used_bytes + 9_000, context, set())
        assert freed_naive == freed_current
        assert naive.evict_log == current.evict_log, policy_name
        assert set(naive.items) == set(current.items)
