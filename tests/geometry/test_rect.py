"""Tests for repro.geometry.rect."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


def test_degenerate_rect_rejected():
    with pytest.raises(ValueError):
        Rect(0.5, 0.0, 0.4, 1.0)


def test_from_point_has_zero_area():
    r = Rect.from_point(Point(0.3, 0.3))
    assert r.area() == 0.0
    assert r.contains_point(Point(0.3, 0.3))


def test_from_center_dimensions():
    r = Rect.from_center(Point(0.5, 0.5), 0.2, 0.4)
    assert r.width == pytest.approx(0.2)
    assert r.height == pytest.approx(0.4)
    assert r.center() == Point(0.5, 0.5)


def test_bounding_covers_all():
    r = Rect.bounding([Rect(0, 0, 0.1, 0.1), Rect(0.5, 0.6, 0.7, 0.9)])
    assert r == Rect(0, 0, 0.7, 0.9)


def test_bounding_empty_raises():
    with pytest.raises(ValueError):
        Rect.bounding([])


def test_intersects_and_contains():
    a = Rect(0, 0, 0.5, 0.5)
    b = Rect(0.4, 0.4, 0.6, 0.6)
    c = Rect(0.51, 0.51, 0.6, 0.6)
    assert a.intersects(b)
    assert not a.intersects(c)
    assert a.contains(Rect(0.1, 0.1, 0.2, 0.2))
    assert not a.contains(b)


def test_touching_rectangles_intersect():
    assert Rect(0, 0, 0.5, 0.5).intersects(Rect(0.5, 0.0, 1.0, 0.5))


def test_union_and_intersection():
    a = Rect(0, 0, 0.5, 0.5)
    b = Rect(0.25, 0.25, 1.0, 1.0)
    assert a.union(b) == Rect(0, 0, 1, 1)
    assert a.intersection(b) == Rect(0.25, 0.25, 0.5, 0.5)
    assert a.intersection(Rect(0.6, 0.6, 0.7, 0.7)) is None
    assert a.intersection_area(b) == pytest.approx(0.0625)


def test_enlargement():
    a = Rect(0, 0, 0.5, 0.5)
    assert a.enlargement(Rect(0, 0, 0.25, 0.25)) == 0.0
    assert a.enlargement(Rect(0, 0, 1.0, 0.5)) == pytest.approx(0.25)


def test_min_and_max_dist_to_point():
    r = Rect(0.2, 0.2, 0.4, 0.4)
    assert r.min_dist_to_point(Point(0.3, 0.3)) == 0.0
    assert r.min_dist_to_point(Point(0.0, 0.3)) == pytest.approx(0.2)
    assert r.max_dist_to_point(Point(0.0, 0.0)) == pytest.approx((0.4 ** 2 + 0.4 ** 2) ** 0.5)


def test_min_dist_to_rect():
    a = Rect(0, 0, 0.1, 0.1)
    b = Rect(0.2, 0.0, 0.3, 0.1)
    assert a.min_dist_to_rect(b) == pytest.approx(0.1)
    assert a.min_dist_to_rect(Rect(0.05, 0.05, 0.2, 0.2)) == 0.0


def test_difference_disjoint_returns_self():
    a = Rect(0, 0, 0.2, 0.2)
    assert a.difference(Rect(0.5, 0.5, 0.6, 0.6)) == [a]


def test_difference_contained_returns_empty():
    a = Rect(0.1, 0.1, 0.2, 0.2)
    assert a.difference(Rect(0, 0, 1, 1)) == []


def test_difference_partial_overlap_preserves_area():
    a = Rect(0, 0, 1, 1)
    b = Rect(0.25, 0.25, 0.75, 0.75)
    pieces = a.difference(b)
    assert sum(p.area() for p in pieces) == pytest.approx(a.area() - b.area())
    for piece in pieces:
        assert a.contains(piece)
        assert piece.intersection_area(b) == pytest.approx(0.0)


def test_difference_many_covers_leftover():
    target = Rect(0, 0, 1, 1)
    covers = [Rect(0, 0, 0.5, 1.0), Rect(0.5, 0, 1.0, 0.5)]
    pieces = Rect.difference_many(target, covers)
    assert sum(p.area() for p in pieces) == pytest.approx(0.25)


def test_buffered_and_clamped_unit():
    r = Rect(0.0, 0.0, 0.1, 0.1).buffered(0.05)
    assert r.as_tuple() == pytest.approx((-0.05, -0.05, 0.15, 0.15))
    clamped = r.clamped_unit()
    assert clamped.min_x == 0.0 and clamped.min_y == 0.0
    assert clamped.max_x == pytest.approx(0.15)


@given(rects(), rects())
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains(a) and u.contains(b)


@given(rects(), rects())
def test_intersection_area_bounded(a, b):
    overlap = a.intersection_area(b)
    assert overlap <= min(a.area(), b.area()) + 1e-12
    assert overlap >= 0.0


@given(rects(), rects())
def test_difference_area_identity(a, b):
    pieces = a.difference(b)
    total = sum(p.area() for p in pieces)
    assert total == pytest.approx(a.area() - a.intersection_area(b), abs=1e-9)


@given(rects(), st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_min_dist_zero_iff_containing_point(rect, x, y):
    point = Point(x, y)
    if rect.contains_point(point):
        assert rect.min_dist_to_point(point) == 0.0
    else:
        assert rect.min_dist_to_point(point) > 0.0


def test_difference_degenerate_edge_touching_overlap():
    # The overlap of edge-adjacent rectangles is a zero-area sliver; nothing
    # is trimmed away.  Regression for the FLT01 rewrite of the area test in
    # difference() from == 0.0 to the rounding-robust <= 0.0 form.
    a = Rect(0.0, 0.0, 0.5, 0.5)
    b = Rect(0.5, 0.0, 1.0, 0.5)  # shares the x = 0.5 edge with a
    assert a.difference(b) == [a]
    assert b.difference(a) == [b]


def test_difference_degenerate_corner_touching_overlap():
    a = Rect(0.0, 0.0, 0.5, 0.5)
    b = Rect(0.5, 0.5, 1.0, 1.0)  # touches a only at the corner point
    assert a.difference(b) == [a]
