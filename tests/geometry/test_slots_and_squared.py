"""Slotted hot dataclasses and the squared-distance kernels."""

import math
import pickle
import random
import sys

import pytest

from repro.core.cache import CacheItemState
from repro.core.items import CachedObject, CacheEntry, FrontierTarget
from repro.geometry import Point, Rect
from repro.geometry.distance import min_dist_sq_point_rect, min_dist_sq_rect_rect
from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.node import Node


HOT_CLASSES = (Point, Rect, Entry, ObjectRecord, Node, CacheEntry,
               CachedObject, FrontierTarget, CacheItemState)

slots_expected = pytest.mark.skipif(
    sys.version_info < (3, 10),
    reason="dataclass(slots=True) needs Python 3.10+; 3.9 falls back to __dict__")


@slots_expected
@pytest.mark.parametrize("cls", HOT_CLASSES, ids=lambda c: c.__name__)
def test_hot_dataclasses_are_slotted(cls):
    assert "__slots__" in vars(cls), f"{cls.__name__} should define __slots__"
    assert "__dict__" not in vars(cls).get("__slots__", ())


@slots_expected
def test_slotted_instances_have_no_dict():
    point = Point(0.25, 0.75)
    rect = Rect(0.0, 0.0, 1.0, 1.0)
    entry = Entry(mbr=rect, object_id=3)
    for instance in (point, rect, entry):
        with pytest.raises(AttributeError):
            instance.__dict__


def test_slotted_frozen_instances_still_pickle():
    """The fleet runner ships these across process boundaries."""
    originals = [
        Point(0.1, 0.9),
        Rect(0.0, 0.1, 0.5, 0.6),
        Entry(mbr=Rect(0, 0, 1, 1), child_id=7),
        ObjectRecord(object_id=4, mbr=Rect(0, 0, 0.1, 0.1), size_bytes=512),
        FrontierTarget.for_object(9, Rect(0, 0, 1, 1), parent_node_id=2,
                                  priority=0.5, confirm_only=True),
    ]
    for original in originals:
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original


def test_frozen_stays_frozen_with_slots():
    point = Point(1.0, 2.0)
    with pytest.raises(Exception):  # FrozenInstanceError or AttributeError
        point.x = 3.0


@pytest.mark.parametrize("seed", range(3))
def test_squared_distances_agree_with_linear(seed):
    rng = random.Random(seed)
    for _ in range(200):
        rect = Rect(rng.random() * 0.5, rng.random() * 0.5,
                    0.5 + rng.random() * 0.5, 0.5 + rng.random() * 0.5)
        other = Rect(rng.random() * 0.5, rng.random() * 0.5,
                     0.5 + rng.random() * 0.5, 0.5 + rng.random() * 0.5)
        point = Point(rng.random() * 2 - 0.5, rng.random() * 2 - 0.5)
        assert math.sqrt(rect.min_dist_sq_to_point(point)) == pytest.approx(
            rect.min_dist_to_point(point))
        assert math.sqrt(rect.min_dist_sq_to_rect(other)) == pytest.approx(
            rect.min_dist_to_rect(other))
        assert min_dist_sq_point_rect(point, rect) == rect.min_dist_sq_to_point(point)
        assert min_dist_sq_rect_rect(rect, other) == rect.min_dist_sq_to_rect(other)


def test_squared_distance_zero_inside():
    rect = Rect(0.0, 0.0, 1.0, 1.0)
    assert rect.min_dist_sq_to_point(Point(0.5, 0.5)) == 0.0
    assert rect.min_dist_sq_to_rect(Rect(0.5, 0.5, 0.7, 0.7)) == 0.0
