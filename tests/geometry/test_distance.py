"""Tests for repro.geometry.distance."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Point,
    Rect,
    circle_contains_circle,
    circle_contains_rect,
    euclidean,
    min_dist_point_rect,
    min_dist_rect_rect,
    min_max_dist_point_rect,
)
from repro.geometry.distance import rect_intersects_circle

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


def test_euclidean_matches_point_method():
    assert euclidean(Point(0, 0), Point(1, 1)) == pytest.approx(2 ** 0.5)


def test_min_dist_point_rect_inside_is_zero():
    assert min_dist_point_rect(Point(0.5, 0.5), Rect(0, 0, 1, 1)) == 0.0


def test_min_max_dist_at_least_min_dist():
    point = Point(0.0, 0.0)
    rect = Rect(0.3, 0.4, 0.5, 0.8)
    assert min_max_dist_point_rect(point, rect) >= min_dist_point_rect(point, rect)


def test_min_dist_rect_rect_overlapping_zero():
    assert min_dist_rect_rect(Rect(0, 0, 0.5, 0.5), Rect(0.4, 0.4, 1, 1)) == 0.0


def test_circle_contains_circle_basic():
    assert circle_contains_circle(Point(0.5, 0.5), 0.5, Point(0.5, 0.5), 0.2)
    assert circle_contains_circle(Point(0.5, 0.5), 0.5, Point(0.7, 0.5), 0.3)
    assert not circle_contains_circle(Point(0.5, 0.5), 0.5, Point(0.9, 0.5), 0.2)


def test_circle_contains_rect():
    assert circle_contains_rect(Point(0.5, 0.5), 0.8, Rect(0.3, 0.3, 0.7, 0.7))
    assert not circle_contains_rect(Point(0.5, 0.5), 0.2, Rect(0.0, 0.0, 1.0, 1.0))


def test_rect_intersects_circle():
    assert rect_intersects_circle(Rect(0, 0, 0.1, 0.1), Point(0.2, 0.05), 0.15)
    assert not rect_intersects_circle(Rect(0, 0, 0.1, 0.1), Point(0.5, 0.5), 0.1)


@given(coords, coords, coords, coords, coords, coords)
def test_min_max_dist_upper_bounds_nearest_corner(px, py, x1, y1, x2, y2):
    point = Point(px, py)
    rect = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    # MINMAXDIST is an upper bound on the distance to the nearest object
    # guaranteed to be in the rect, hence at most the farthest corner.
    assert min_max_dist_point_rect(point, rect) <= rect.max_dist_to_point(point) + 1e-9
    assert min_dist_point_rect(point, rect) <= min_max_dist_point_rect(point, rect) + 1e-9
