"""Tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point

coords = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def test_distance_to_is_euclidean():
    assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)


def test_distance_to_self_is_zero():
    p = Point(0.3, 0.7)
    assert p.distance_to(p) == 0.0


def test_translated_moves_both_axes():
    assert Point(0.1, 0.2).translated(0.3, -0.1) == Point(0.4, pytest.approx(0.1))


def test_clamped_limits_to_unit_square():
    assert Point(-1.0, 2.0).clamped() == Point(0.0, 1.0)
    assert Point(0.4, 0.6).clamped() == Point(0.4, 0.6)


def test_clamped_respects_custom_bounds():
    assert Point(5.0, -5.0).clamped(lo=-1.0, hi=2.0) == Point(2.0, -1.0)


def test_midpoint():
    assert Point(0.0, 0.0).midpoint(Point(1.0, 1.0)) == Point(0.5, 0.5)


def test_as_tuple_and_iteration():
    p = Point(0.25, 0.75)
    assert p.as_tuple() == (0.25, 0.75)
    assert list(p) == [0.25, 0.75]


def test_origin():
    assert Point.origin() == Point(0.0, 0.0)


def test_points_are_hashable_and_ordered():
    assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2
    assert Point(0, 1) < Point(1, 0)


@given(coords, coords, coords, coords)
def test_distance_symmetry(ax, ay, bx, by):
    a, b = Point(ax, ay), Point(bx, by)
    assert a.distance_to(b) == pytest.approx(b.distance_to(a))


@given(coords, coords, coords, coords, coords, coords)
def test_triangle_inequality(ax, ay, bx, by, cx, cy):
    a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9
