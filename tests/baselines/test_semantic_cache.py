"""Tests for the semantic-caching (SEM) baseline: trimming, validity, FAR."""

import pytest

from repro.baselines.semantic import SemanticCache
from repro.geometry import Point, Rect
from repro.rtree.entry import ObjectRecord
from repro.rtree.sizes import SizeModel


MODEL = SizeModel()


def record(object_id, x, y, size=1_000, extent=0.01):
    return ObjectRecord(object_id=object_id,
                        mbr=Rect(x, y, min(1.0, x + extent), min(1.0, y + extent)),
                        size_bytes=size)


def make_cache(capacity=200_000, replacement="FAR", coalesce=False):
    return SemanticCache(capacity_bytes=capacity, size_model=MODEL,
                         replacement=replacement, coalesce=coalesce)


def test_invalid_construction():
    with pytest.raises(ValueError):
        SemanticCache(capacity_bytes=0)
    with pytest.raises(ValueError):
        SemanticCache(capacity_bytes=100, replacement="RANDOM")


def test_probe_range_on_empty_cache_returns_whole_window():
    cache = make_cache()
    window = Rect(0.2, 0.2, 0.4, 0.4)
    saved, remainders = cache.probe_range(window)
    assert saved == {}
    assert remainders == [window]


def test_range_region_fully_answers_contained_query():
    cache = make_cache()
    records = [record(1, 0.25, 0.25), record(2, 0.3, 0.3)]
    cache.insert_range_region(Rect(0.2, 0.2, 0.4, 0.4), records, Point(0.3, 0.3))
    saved, remainders = cache.probe_range(Rect(0.25, 0.25, 0.35, 0.35))
    assert remainders == []
    assert set(saved) == {1, 2}


def test_range_trimming_produces_remainder_rectangles():
    cache = make_cache()
    cache.insert_range_region(Rect(0.2, 0.2, 0.4, 0.4), [record(1, 0.35, 0.35)],
                              Point(0.3, 0.3))
    window = Rect(0.3, 0.3, 0.6, 0.6)
    saved, remainders = cache.probe_range(window)
    assert 1 in saved
    assert remainders
    leftover = sum(r.area() for r in remainders)
    covered = window.intersection_area(Rect(0.2, 0.2, 0.4, 0.4))
    assert leftover == pytest.approx(window.area() - covered)


def test_knn_results_cannot_answer_range_queries():
    """The defining limitation of SEM: no sharing across query types."""
    cache = make_cache()
    records = [record(1, 0.45, 0.45), record(2, 0.5, 0.5)]
    cache.insert_knn_region(Point(0.5, 0.5), 2, records, Point(0.5, 0.5))
    saved, remainders = cache.probe_range(Rect(0.4, 0.4, 0.6, 0.6))
    assert saved == {}
    assert remainders == [Rect(0.4, 0.4, 0.6, 0.6)]


def test_knn_validity_circle_answers_nearby_smaller_query():
    cache = make_cache()
    records = [record(i, 0.5 + 0.02 * i, 0.5, extent=0.001) for i in range(5)]
    cache.insert_knn_region(Point(0.5, 0.5), 5, records, Point(0.5, 0.5))
    answer = cache.probe_knn(Point(0.505, 0.5), 1)
    assert answer is not None
    assert answer[0].object_id == 0


def test_knn_probe_rejects_larger_k_or_distant_point():
    cache = make_cache()
    records = [record(i, 0.5 + 0.02 * i, 0.5, extent=0.001) for i in range(3)]
    cache.insert_knn_region(Point(0.5, 0.5), 3, records, Point(0.5, 0.5))
    assert cache.probe_knn(Point(0.5, 0.5), 4) is None
    assert cache.probe_knn(Point(0.9, 0.9), 1) is None


def test_object_pool_is_shared_between_regions():
    cache = make_cache()
    shared = record(7, 0.3, 0.3)
    cache.insert_range_region(Rect(0.25, 0.25, 0.35, 0.35), [shared], Point(0.3, 0.3))
    used_after_first = cache.used_bytes
    cache.insert_range_region(Rect(0.28, 0.28, 0.38, 0.38), [shared], Point(0.3, 0.3))
    # The second region adds only its descriptor, not another object copy.
    assert cache.used_bytes - used_after_first < shared.size_bytes
    cache.validate()


def test_far_replacement_evicts_farthest_region():
    # Capacity fits two regions (objects of 1 KB each plus descriptors).
    cache = make_cache(capacity=2_300)
    cache.insert_range_region(Rect(0.0, 0.0, 0.05, 0.05), [record(1, 0.01, 0.01)],
                              Point(0.9, 0.9))
    cache.insert_range_region(Rect(0.85, 0.85, 0.95, 0.95), [record(2, 0.9, 0.9)],
                              Point(0.9, 0.9))
    # Inserting a third region near the client evicts the farthest one (region 1).
    cache.insert_range_region(Rect(0.8, 0.8, 0.9, 0.9), [record(3, 0.85, 0.85)],
                              client_position=Point(0.9, 0.9))
    assert 1 not in cache.cached_object_ids()
    assert {2, 3} <= cache.cached_object_ids()
    cache.validate()


def test_lru_replacement_evicts_oldest_region():
    cache = make_cache(capacity=2_300, replacement="LRU")
    cache.tick()
    cache.insert_range_region(Rect(0.0, 0.0, 0.05, 0.05), [record(1, 0.01, 0.01)],
                              Point(0.5, 0.5))
    cache.tick()
    cache.insert_range_region(Rect(0.2, 0.2, 0.25, 0.25), [record(2, 0.22, 0.22)],
                              Point(0.5, 0.5))
    cache.tick()
    cache.probe_range(Rect(0.0, 0.0, 0.05, 0.05))  # touch region 1
    cache.tick()
    cache.insert_range_region(Rect(0.4, 0.4, 0.45, 0.45), [record(3, 0.42, 0.42)],
                              Point(0.5, 0.5))
    assert 2 not in cache.cached_object_ids()
    assert 1 in cache.cached_object_ids()
    cache.validate()


def test_evicting_region_releases_unreferenced_objects():
    cache = make_cache(capacity=2_300)
    cache.insert_range_region(Rect(0.0, 0.0, 0.05, 0.05), [record(1, 0.01, 0.01)],
                              Point(0.0, 0.0))
    before = cache.used_bytes
    assert before > 0
    cache._drop_region(next(iter(cache.range_regions)))
    assert cache.used_bytes == 0
    assert cache.cached_object_ids() == set()


def test_oversized_region_rejected():
    cache = make_cache(capacity=1_500)
    region_id = cache.insert_range_region(
        Rect(0, 0, 0.1, 0.1), [record(1, 0.01, 0.01, size=5_000)], Point(0, 0))
    assert region_id is None
    assert cache.used_bytes == 0


def test_coalesce_absorbs_contained_regions():
    cache = make_cache(coalesce=True)
    cache.insert_range_region(Rect(0.3, 0.3, 0.4, 0.4), [record(1, 0.32, 0.32)],
                              Point(0.35, 0.35))
    assert len(cache.range_regions) == 1
    cache.insert_range_region(Rect(0.2, 0.2, 0.5, 0.5),
                              [record(1, 0.32, 0.32), record(2, 0.45, 0.45)],
                              Point(0.35, 0.35))
    assert len(cache.range_regions) == 1
    assert {1, 2} <= cache.cached_object_ids()
    cache.validate()


def test_descriptor_and_object_byte_accounting():
    cache = make_cache()
    cache.insert_range_region(Rect(0.1, 0.1, 0.2, 0.2),
                              [record(1, 0.12, 0.12), record(2, 0.15, 0.15)],
                              Point(0.15, 0.15))
    assert cache.used_bytes == cache.descriptor_bytes() + cache.object_bytes()
    assert cache.object_bytes() == 2_000
    assert len(cache) == 1
