"""Tests for the page-caching (PAG) baseline cache."""

import pytest

from repro.baselines.page import PageCache
from repro.geometry import Rect
from repro.rtree.entry import ObjectRecord


def record(object_id, size=1_000):
    return ObjectRecord(object_id=object_id, mbr=Rect(0, 0, 0.01, 0.01), size_bytes=size)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PageCache(capacity_bytes=0)


def test_insert_and_get():
    cache = PageCache(capacity_bytes=10_000)
    assert cache.insert(record(1))
    assert 1 in cache
    assert cache.get(1).object_id == 1
    assert cache.get(2) is None
    assert cache.object_ids() == {1}


def test_lru_eviction_order():
    cache = PageCache(capacity_bytes=3_000)
    for object_id in (1, 2, 3):
        cache.insert(record(object_id))
    cache.get(1)              # 1 becomes most recently used
    cache.insert(record(4))   # evicts 2
    assert 1 in cache and 3 in cache and 4 in cache
    assert 2 not in cache
    assert cache.evictions == 1


def test_touch_refreshes_recency():
    cache = PageCache(capacity_bytes=2_000)
    cache.insert(record(1))
    cache.insert(record(2))
    cache.touch(1)
    cache.insert(record(3))
    assert 1 in cache and 2 not in cache


def test_oversized_object_rejected():
    cache = PageCache(capacity_bytes=500)
    assert not cache.insert(record(1, size=1_000))
    assert len(cache) == 0


def test_reinserting_existing_object_keeps_bytes_stable():
    cache = PageCache(capacity_bytes=5_000)
    cache.insert(record(1))
    used = cache.used_bytes
    cache.insert(record(1))
    assert cache.used_bytes == used


def test_insert_many_and_cached_bytes_of():
    cache = PageCache(capacity_bytes=10_000)
    cache.insert_many([record(i, size=500) for i in range(5)])
    assert len(cache) == 5
    assert cache.cached_bytes_of([0, 1, 99]) == 1_000


def test_used_bytes_never_exceeds_capacity():
    cache = PageCache(capacity_bytes=2_500)
    for object_id in range(20):
        cache.insert(record(object_id, size=700))
        assert cache.used_bytes <= cache.capacity_bytes
