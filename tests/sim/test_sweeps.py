"""Tests for the parameter sweeps used by the figure experiments."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.sweeps import cache_size_sweep, mobility_sweep, replacement_sweep


CONFIG = SimulationConfig.tiny(query_count=20, object_count=300)


def test_cache_size_sweep_structure():
    results = cache_size_sweep(CONFIG, fractions=(0.005, 0.02), models=("PAG", "APRO"))
    assert set(results) == {0.005, 0.02}
    for per_model in results.values():
        assert set(per_model) == {"PAG", "APRO"}
        for result in per_model.values():
            assert len(result.costs) == CONFIG.query_count


def test_mobility_sweep_structure():
    results = mobility_sweep(CONFIG, mobility_models=("RAN", "DIR"), models=("APRO",))
    assert set(results) == {"RAN", "DIR"}
    assert set(results["RAN"]) == {"APRO"}


def test_replacement_sweep_structure():
    results = replacement_sweep(CONFIG, policies=("LRU", "GRD3"),
                                mobility_models=("RAN",), model="APRO")
    assert set(results) == {"RAN"}
    assert set(results["RAN"]) == {"LRU", "GRD3"}
    for result in results["RAN"].values():
        assert result.model == "APRO"
