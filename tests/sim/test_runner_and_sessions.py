"""Integration tests for the simulation runner and the three caching sessions."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.metrics import CacheSnapshot, SimulationResult
from repro.sim.runner import (
    build_environment,
    build_tree,
    generate_trace,
    run_comparison,
    run_model,
    run_models,
)
from repro.sim.sessions import (
    GroundTruthCache,
    PageCachingSession,
    ProactiveSession,
    SemanticCachingSession,
    make_session,
    true_results,
)
from repro.workload.generator import QueryMix
from repro.workload.schedule import KnnRampSchedule
from repro.workload.queries import KNNQuery


CONFIG = SimulationConfig.tiny(query_count=40, object_count=500)


@pytest.fixture(scope="module")
def environment():
    return build_environment(CONFIG)


def test_build_tree_matches_config():
    tree = build_tree(CONFIG)
    assert len(tree) == CONFIG.object_count
    tree.validate()


def test_generate_trace_is_deterministic():
    trace_a = generate_trace(CONFIG)
    trace_b = generate_trace(CONFIG)
    assert len(trace_a) == CONFIG.query_count
    assert trace_a.to_json() == trace_b.to_json()


def test_generate_trace_with_knn_schedule_only_knn():
    config = CONFIG.with_overrides(query_mix=QueryMix(range_=0.0, knn=1.0, join=0.0))
    schedule = KnnRampSchedule(total_queries=config.query_count)
    trace = generate_trace(config, knn_schedule=schedule)
    assert all(isinstance(record.query, KNNQuery) for record in trace)
    assert trace[0].query.k == schedule.k_at(0)


def test_make_session_factory(environment):
    for model, cls in (("PAG", PageCachingSession), ("SEM", SemanticCachingSession),
                       ("APRO", ProactiveSession), ("FPRO", ProactiveSession),
                       ("CPRO", ProactiveSession)):
        session = make_session(model, environment.tree, CONFIG, server=environment.server)
        assert isinstance(session, cls)
        assert session.name == model
    with pytest.raises(ValueError):
        make_session("NOCACHE", environment.tree, CONFIG)


def test_run_model_produces_costs_and_snapshots(environment):
    result = run_model(environment, "APRO")
    assert isinstance(result, SimulationResult)
    assert len(result.costs) == CONFIG.query_count
    assert len(result.snapshots) == CONFIG.query_count
    assert all(isinstance(snapshot, CacheSnapshot) for snapshot in result.snapshots)
    summary = result.summary()
    assert 0.0 <= summary["cache_hit_rate"] <= 1.0
    assert 0.0 <= summary["byte_hit_rate"] <= 1.0
    assert 0.0 <= summary["false_miss_rate"] <= 1.0
    assert summary["uplink_bytes"] >= 0.0


def test_cache_stays_within_budget_for_all_sessions(environment):
    for model in ("PAG", "SEM", "APRO"):
        result = run_model(environment, model)
        budget = CONFIG.cache_bytes()
        for snapshot in result.snapshots:
            # Allow a one-node overshoot for proactive merges (documented).
            assert snapshot.used_bytes <= budget + 2_048


def test_pag_has_zero_hit_rate_and_sem_nonzero_downlink(environment):
    results = run_models(environment, ("PAG", "SEM"))
    assert results["PAG"].summary()["cache_hit_rate"] == 0.0
    assert results["PAG"].summary()["false_miss_rate"] == pytest.approx(1.0)
    assert results["SEM"].summary()["downlink_bytes"] > 0.0


def test_proactive_hit_rate_exceeds_semantic(environment):
    results = run_models(environment, ("SEM", "APRO"))
    assert results["APRO"].summary()["cache_hit_rate"] >= \
        results["SEM"].summary()["cache_hit_rate"]


def test_paired_comparison_uses_identical_traces(environment):
    results = run_models(environment, ("PAG", "APRO"))
    pag_types = [cost.query_type for cost in results["PAG"].costs]
    apro_types = [cost.query_type for cost in results["APRO"].costs]
    assert pag_types == apro_types
    pag_result_bytes = [cost.result_bytes for cost in results["PAG"].costs]
    apro_result_bytes = [cost.result_bytes for cost in results["APRO"].costs]
    assert pag_result_bytes == pytest.approx(apro_result_bytes)


def test_page_session_answers_match_ground_truth(environment):
    session = PageCachingSession(environment.tree, CONFIG)
    for record in environment.trace:
        cost = session.process(record)
        truth_bytes = sum(environment.tree.objects[oid].size_bytes
                          for oid in true_results(environment.tree, record.query))
        assert cost.result_bytes == pytest.approx(truth_bytes)


def test_semantic_session_saved_bytes_never_exceed_results(environment):
    session = SemanticCachingSession(environment.tree, CONFIG)
    for record in environment.trace:
        cost = session.process(record)
        assert cost.saved_bytes <= cost.result_bytes + 1e-9
        assert cost.cached_result_bytes <= cost.result_bytes + 1e-9


def test_run_comparison_convenience():
    config = SimulationConfig.tiny(query_count=15, object_count=300)
    results = run_comparison(config, models=("PAG", "APRO"))
    assert set(results) == {"PAG", "APRO"}


def test_windowed_series_lengths(environment):
    result = run_model(environment, "APRO")
    window = 10
    expected_windows = (CONFIG.query_count + window - 1) // window
    assert len(result.windowed_false_miss_rate(window)) == expected_windows
    assert len(result.windowed_response_time(window)) == expected_windows
    assert len(result.windowed_index_fraction(window)) == expected_windows
    assert len(result.windowed_depth(window)) == expected_windows


def test_snapshot_index_fraction_bounds(environment):
    result = run_model(environment, "APRO")
    for snapshot in result.snapshots:
        assert 0.0 <= snapshot.index_fraction <= 1.0


def test_ground_truth_cache_memoises_and_matches(environment):
    memo = GroundTruthCache(environment.tree)
    record = environment.trace[0]
    ids_first, cpu_first = memo.results_for(record.query)
    ids_again, cpu_again = memo.results_for(record.query)
    assert ids_first == ids_again == true_results(environment.tree, record.query)
    # The charged CPU cost is replayed verbatim on a memo hit.
    assert cpu_again == cpu_first
    assert len(memo) == 1


def test_sessions_share_environment_ground_truth(environment):
    assert environment.ground_truth is not None
    results = run_models(environment, ("PAG", "SEM"))
    # After a run the shared memo covers every distinct trace query.
    distinct_queries = len({record.query for record in environment.trace})
    assert len(environment.ground_truth) >= distinct_queries
    # The memoised results feed both models the same ground truth bytes.
    pag_bytes = [cost.result_bytes for cost in results["PAG"].costs]
    sem_bytes = [cost.result_bytes for cost in results["SEM"].costs]
    assert pag_bytes == pytest.approx(sem_bytes)


def test_parallel_run_models_matches_serial(environment):
    serial = run_models(environment, ("PAG", "APRO"))
    parallel = run_models(environment, ("PAG", "APRO"), max_workers=2)
    assert set(serial) == set(parallel)
    for model in serial:
        mine, theirs = serial[model].summary(), parallel[model].summary()
        for metric in ("uplink_bytes", "downlink_bytes", "cache_hit_rate",
                       "byte_hit_rate", "false_miss_rate", "response_time"):
            assert mine[metric] == pytest.approx(theirs[metric])
