"""Fleet-layer plumbing of the sharded tier: config, metrics, guards."""

import dataclasses

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import FleetConfig, default_fleet, run_fleet
from repro.sim.metrics import FleetResult
from repro.sim.restart import fleet_from_dict, fleet_to_dict, run_fleet_interrupted


def _fleet(**overrides):
    base = SimulationConfig.scaled(query_count=6, object_count=500)
    return dataclasses.replace(default_fleet(3, base=base), **overrides)


def test_fleet_config_validates_shard_fields():
    with pytest.raises(ValueError):
        _fleet(shards=0)
    with pytest.raises(ValueError):
        _fleet(shards=2, partitioner="voronoi")
    assert not _fleet().is_sharded
    assert _fleet(shards=1).is_sharded


def test_sharded_fleet_rejects_worker_processes():
    with pytest.raises(ValueError):
        run_fleet(_fleet(shards=2), max_workers=3)


def test_sharded_fleet_rejects_non_proactive_groups():
    from repro.sim.fleet import ClientGroupSpec
    base = SimulationConfig.scaled(query_count=5, object_count=400)
    fleet = FleetConfig.make(base, [ClientGroupSpec(name="pag", clients=2,
                                                    model="PAG")])
    with pytest.raises(ValueError):
        run_fleet(dataclasses.replace(fleet, shards=2))


def test_shard_summary_and_rows_are_populated():
    result = run_fleet(_fleet(shards=3))
    summary = result.shard_summary
    assert summary["shards"] == 3
    assert summary["partitioner"] == "grid"
    assert sum(summary["objects_per_shard"]) == 500
    rows = result.shard_rows()
    assert len(rows) == 3
    assert rows[0].keys() == {"shard", "objects", "queries_routed",
                              "shards_pruned", "shards_skipped", "pages_read"}
    assert all(row["shards_skipped"] == 0 for row in rows)  # cache off
    assert sum(row["queries_routed"] for row in rows) \
        == summary["total_routed"]
    # A single-server fleet carries no shard block.
    assert run_fleet(_fleet()).shard_summary is None
    assert FleetResult(clients=[]).shard_rows() == []


def test_shard_rows_tolerates_pre_pr9_summaries():
    """Summaries saved before newer counters existed load as zeros.

    A resumed pre-PR-9 session snapshot carries no ``shards_skipped`` (and
    an even older one might miss other per-shard lists); ``shard_rows``
    must fill per-key defaults rather than raise.
    """
    legacy = {
        "queries": 9,
        "queries_routed": [4, 5],
        "shards_pruned": [1, 0],
        "pages_read": [7, 8],
        "objects_per_shard": [250, 250],
        "shards": 2,
        "partitioner": "grid",
        # no "shards_skipped", no cache counters
    }
    rows = FleetResult(clients=[], shard_summary=legacy).shard_rows()
    assert len(rows) == 2
    assert [row["shards_skipped"] for row in rows] == [0.0, 0.0]
    assert [row["queries_routed"] for row in rows] == [4.0, 5.0]
    assert [row["pages_read"] for row in rows] == [7.0, 8.0]
    # A malformed per-shard list (wrong length) also degrades to zeros.
    legacy["shards_pruned"] = [1]
    rows = FleetResult(clients=[], shard_summary=legacy).shard_rows()
    assert [row["shards_pruned"] for row in rows] == [0.0, 0.0]


def test_router_cache_config_validation():
    with pytest.raises(ValueError):
        _fleet(router_cache=True)  # needs a sharded fleet
    with pytest.raises(ValueError):
        _fleet(shards=2, router_cache=True, router_cache_bytes=0)
    fleet = _fleet(shards=2, router_cache=True)
    result = run_fleet(fleet)
    assert result.shard_summary["router_cache"] is True


def test_restart_round_trips_shard_fields_and_rejects_sharded_halt(tmp_path):
    fleet = _fleet(shards=2, partitioner="kd")
    rebuilt = fleet_from_dict(fleet_to_dict(fleet))
    assert rebuilt.shards == 2
    assert rebuilt.partitioner == "kd"
    # Pre-sharding session files resume as unsharded fleets.
    legacy = fleet_to_dict(fleet)
    legacy.pop("shards")
    legacy.pop("partitioner")
    assert fleet_from_dict(legacy).shards is None
    with pytest.raises(ValueError):
        run_fleet_interrupted(fleet, halt_after=2, directory=str(tmp_path))
