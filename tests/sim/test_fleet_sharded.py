"""Fleet-layer plumbing of the sharded tier: config, metrics, guards."""

import dataclasses

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import FleetConfig, default_fleet, run_fleet
from repro.sim.metrics import FleetResult
from repro.sim.restart import fleet_from_dict, fleet_to_dict, run_fleet_interrupted


def _fleet(**overrides):
    base = SimulationConfig.scaled(query_count=6, object_count=500)
    return dataclasses.replace(default_fleet(3, base=base), **overrides)


def test_fleet_config_validates_shard_fields():
    with pytest.raises(ValueError):
        _fleet(shards=0)
    with pytest.raises(ValueError):
        _fleet(shards=2, partitioner="voronoi")
    assert not _fleet().is_sharded
    assert _fleet(shards=1).is_sharded


def test_sharded_fleet_rejects_worker_processes():
    with pytest.raises(ValueError):
        run_fleet(_fleet(shards=2), max_workers=3)


def test_sharded_fleet_rejects_non_proactive_groups():
    from repro.sim.fleet import ClientGroupSpec
    base = SimulationConfig.scaled(query_count=5, object_count=400)
    fleet = FleetConfig.make(base, [ClientGroupSpec(name="pag", clients=2,
                                                    model="PAG")])
    with pytest.raises(ValueError):
        run_fleet(dataclasses.replace(fleet, shards=2))


def test_shard_summary_and_rows_are_populated():
    result = run_fleet(_fleet(shards=3))
    summary = result.shard_summary
    assert summary["shards"] == 3
    assert summary["partitioner"] == "grid"
    assert sum(summary["objects_per_shard"]) == 500
    rows = result.shard_rows()
    assert len(rows) == 3
    assert rows[0].keys() == {"shard", "objects", "queries_routed",
                              "shards_pruned", "pages_read"}
    assert sum(row["queries_routed"] for row in rows) \
        == summary["total_routed"]
    # A single-server fleet carries no shard block.
    assert run_fleet(_fleet()).shard_summary is None
    assert FleetResult(clients=[]).shard_rows() == []


def test_restart_round_trips_shard_fields_and_rejects_sharded_halt(tmp_path):
    fleet = _fleet(shards=2, partitioner="kd")
    rebuilt = fleet_from_dict(fleet_to_dict(fleet))
    assert rebuilt.shards == 2
    assert rebuilt.partitioner == "kd"
    # Pre-sharding session files resume as unsharded fleets.
    legacy = fleet_to_dict(fleet)
    legacy.pop("shards")
    legacy.pop("partitioner")
    assert fleet_from_dict(legacy).shards is None
    with pytest.raises(ValueError):
        run_fleet_interrupted(fleet, halt_after=2, directory=str(tmp_path))
