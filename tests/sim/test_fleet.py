"""Tests for the fleet-scale multi-client simulation subsystem."""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import (
    ClientGroupSpec,
    FleetConfig,
    _split_clients,
    default_fleet,
    run_fleet,
)
from repro.sim.metrics import DETERMINISTIC_METRICS
from repro.workload.generator import QueryMix


BASE = SimulationConfig.tiny(query_count=12, object_count=400)


def small_fleet(fleet_seed=101):
    return FleetConfig.make(BASE, [
        ClientGroupSpec(name="walkers", clients=3, mobility_model="RAN"),
        ClientGroupSpec(name="drivers", clients=2, mobility_model="DIR",
                        speed_factor=6.0, cache_fraction=0.005,
                        query_mix=QueryMix(range_=2.0, knn=1.0, join=0.5)),
        ClientGroupSpec(name="pag-legacy", clients=2, model="PAG"),
    ], fleet_seed=fleet_seed)


@pytest.fixture(scope="module")
def result():
    return run_fleet(small_fleet())


# --------------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------------- #
def test_group_spec_validation():
    with pytest.raises(ValueError):
        ClientGroupSpec(name="", clients=1)
    with pytest.raises(ValueError):
        ClientGroupSpec(name="g", clients=0)
    with pytest.raises(ValueError):
        ClientGroupSpec(name="g", clients=1, speed_factor=0.0)
    with pytest.raises(ValueError):
        FleetConfig.make(BASE, [])
    with pytest.raises(ValueError):
        FleetConfig.make(BASE, [ClientGroupSpec(name="g", clients=1),
                                ClientGroupSpec(name="g", clients=2)])


def test_client_specs_are_unique_and_heterogeneous():
    fleet = small_fleet()
    specs = fleet.client_specs()
    assert len(specs) == fleet.total_clients == 7
    assert [spec.client_id for spec in specs] == list(range(7))
    # Every client draws its own mobility / workload stream...
    assert len({spec.config.mobility_seed for spec in specs}) == 7
    assert len({spec.config.workload_seed for spec in specs}) == 7
    # ...but all clients share the server-side dataset.
    assert len({spec.config.dataset_seed for spec in specs}) == 1
    drivers = [spec for spec in specs if spec.group == "drivers"]
    assert all(spec.config.mobility_model == "DIR" for spec in drivers)
    assert all(spec.config.speed == pytest.approx(BASE.speed * 6.0) for spec in drivers)
    assert all(spec.config.cache_fraction == 0.005 for spec in drivers)


def test_split_clients_covers_total():
    assert _split_clients(10, (2, 1, 1)) == [6, 2, 2]
    assert sum(_split_clients(7, (2, 1, 1))) == 7
    assert sum(_split_clients(1, (2, 1, 1))) == 1


def test_default_fleet_structure():
    fleet = default_fleet(9, base=BASE)
    assert fleet.total_clients == 9
    assert [group.name for group in fleet.groups] == \
        ["pedestrians", "vehicles", "hotspot"]
    with pytest.raises(ValueError):
        default_fleet(0)


# --------------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------------- #
def test_fleet_runs_every_client_trace(result):
    fleet = small_fleet()
    assert len(result.clients) == fleet.total_clients
    for client in result.clients:
        assert len(client.costs) == BASE.query_count
        assert len(client.arrival_times) == BASE.query_count
        # Arrival times are the running sum of positive think times.
        assert all(b > a for a, b in zip(client.arrival_times,
                                         client.arrival_times[1:]))


def test_fleet_group_and_server_aggregates(result):
    groups = result.group_summary()
    assert set(groups) == {"walkers", "drivers", "pag-legacy"}
    assert groups["walkers"]["clients"] == 3.0
    assert groups["pag-legacy"]["cache_hit_rate"] == 0.0  # PAG never saves locally
    load = result.server_load()
    assert load.total_queries == sum(len(c.costs) for c in result.clients)
    assert load.server_queries <= load.total_queries
    assert load.duration_seconds == pytest.approx(
        max(t for c in result.clients for t in c.arrival_times))
    assert load.queries_per_second > 0
    assert load.uplink_bytes_total == pytest.approx(
        sum(cost.uplink_bytes for c in result.clients for cost in c.costs))
    windows = result.windowed_queries_per_second(windows=4)
    assert len(windows) == 4
    assert sum(w for w in windows) > 0


def test_fleet_determinism_same_seed(result):
    again = run_fleet(small_fleet())
    assert again.deterministic_group_summary() == result.deterministic_group_summary()
    for mine, theirs in zip(result.clients, again.clients):
        assert [c.uplink_bytes for c in mine.costs] == \
            [c.uplink_bytes for c in theirs.costs]
        assert [c.response_time for c in mine.costs] == \
            [c.response_time for c in theirs.costs]


def test_fleet_seed_changes_traces(result):
    other = run_fleet(small_fleet(fleet_seed=999))
    assert other.deterministic_group_summary() != result.deterministic_group_summary()


def test_serial_and_parallel_fleets_agree(result):
    parallel = run_fleet(small_fleet(), max_workers=3)
    assert parallel.deterministic_group_summary() == \
        result.deterministic_group_summary()
    assert [c.client_id for c in parallel.clients] == \
        [c.client_id for c in result.clients]
    for mine, theirs in zip(result.clients, parallel.clients):
        assert mine.group == theirs.group
        assert [c.downlink_bytes for c in mine.costs] == \
            [c.downlink_bytes for c in theirs.costs]
        assert mine.arrival_times == theirs.arrival_times


def test_deterministic_summary_covers_expected_metrics(result):
    summary = result.deterministic_group_summary()
    for metrics in summary.values():
        assert set(metrics) == set(DETERMINISTIC_METRICS)
