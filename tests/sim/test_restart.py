"""Warm-restart fleet sessions: killed-and-resumed must equal uninterrupted."""

from __future__ import annotations

import os

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import ClientGroupSpec, FleetConfig, default_fleet, run_fleet
from repro.sim.restart import (
    SESSION_FILE,
    fleet_from_dict,
    fleet_to_dict,
    resume_fleet,
    run_fleet_interrupted,
)
from repro.storage import save_tree
from repro.sim.runner import build_tree
from repro.workload.generator import QueryMix

# Whole-fleet runs, twice per test (interrupted + reference): the slow lane.
pytestmark = pytest.mark.slow

BASE = SimulationConfig.tiny(query_count=12, object_count=400)


def small_fleet():
    return FleetConfig.make(BASE, [
        ClientGroupSpec(name="walkers", clients=2, mobility_model="RAN"),
        ClientGroupSpec(name="drivers", clients=2, mobility_model="DIR",
                        speed_factor=6.0, cache_fraction=0.005,
                        query_mix=QueryMix(range_=2.0, knn=1.0, join=0.5),
                        replacement_policy="LRU"),
    ], fleet_seed=77)


def _digests(result):
    return {client.client_id: client.final_cache_digest
            for client in result.clients}


# --------------------------------------------------------------------------- #
# fleet config round trip
# --------------------------------------------------------------------------- #
def test_fleet_config_roundtrips_through_json():
    fleet = small_fleet()
    assert fleet_from_dict(fleet_to_dict(fleet)) == fleet


# --------------------------------------------------------------------------- #
# the headline equality
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("halt_fraction", [0.25, 0.5, 0.9])
def test_killed_and_resumed_equals_uninterrupted(tmp_path, halt_fraction):
    fleet = small_fleet()
    uninterrupted = run_fleet(fleet)
    total_events = sum(len(client.costs) for client in uninterrupted.clients)
    directory = str(tmp_path / f"halt{halt_fraction}")
    run_fleet_interrupted(fleet, halt_after=int(total_events * halt_fraction),
                          directory=directory)
    resumed, _ = resume_fleet(directory)
    # Final cache contents — items, replacement metadata, orderings — are
    # identical client by client.
    assert _digests(resumed) == _digests(uninterrupted)
    assert all(digest for digest in _digests(resumed).values())
    # And so are all deterministic metrics of the combined run.
    assert (resumed.deterministic_group_summary()
            == uninterrupted.deterministic_group_summary())


def test_restart_over_disk_backed_store(tmp_path):
    """Warm restart composes with the paged file backend."""
    fleet = small_fleet()
    store_path = str(tmp_path / "server.rpro")
    save_tree(build_tree(fleet.base), store_path)
    uninterrupted = run_fleet(fleet, store_path=store_path)
    total_events = sum(len(client.costs) for client in uninterrupted.clients)
    directory = str(tmp_path / "session")
    run_fleet_interrupted(fleet, halt_after=total_events // 2,
                          directory=directory, store_path=store_path)
    resumed, state = resume_fleet(directory)
    assert state["store_path"] == store_path
    assert _digests(resumed) == _digests(uninterrupted)
    # In-memory and disk-backed runs agree with each other as well.
    assert _digests(uninterrupted) == _digests(run_fleet(fleet))


def test_default_fleet_is_resumable(tmp_path):
    fleet = default_fleet(4, base=BASE)
    uninterrupted = run_fleet(fleet)
    directory = str(tmp_path / "session")
    run_fleet_interrupted(fleet, halt_after=10, directory=directory)
    resumed, _ = resume_fleet(directory)
    assert _digests(resumed) == _digests(uninterrupted)


# --------------------------------------------------------------------------- #
# session file mechanics and guard rails
# --------------------------------------------------------------------------- #
def test_session_file_contents(tmp_path):
    fleet = small_fleet()
    directory = str(tmp_path / "session")
    state = run_fleet_interrupted(fleet, halt_after=7, directory=directory)
    assert os.path.exists(os.path.join(directory, SESSION_FILE))
    assert state["processed_events"] == 7
    assert state["total_events"] == 4 * BASE.query_count
    assert len(state["clients"]) == fleet.total_clients
    processed = sum(len(client["costs"]) for client in state["clients"])
    assert processed == 7
    for client in state["clients"]:
        assert client["session"]["kind"] == "proactive-session"


def test_halt_after_zero_resumes_from_cold(tmp_path):
    fleet = small_fleet()
    directory = str(tmp_path / "session")
    run_fleet_interrupted(fleet, halt_after=0, directory=directory)
    resumed, _ = resume_fleet(directory)
    assert _digests(resumed) == _digests(run_fleet(fleet))


def test_halt_after_beyond_end_is_clamped(tmp_path):
    fleet = small_fleet()
    directory = str(tmp_path / "session")
    state = run_fleet_interrupted(fleet, halt_after=10**6, directory=directory)
    assert state["processed_events"] == state["total_events"]
    resumed, _ = resume_fleet(directory)
    assert _digests(resumed) == _digests(run_fleet(fleet))


def test_negative_halt_rejected(tmp_path):
    with pytest.raises(ValueError):
        run_fleet_interrupted(small_fleet(), halt_after=-1,
                              directory=str(tmp_path))


def test_non_proactive_fleets_are_rejected(tmp_path):
    fleet = FleetConfig.make(BASE, [
        ClientGroupSpec(name="legacy", clients=1, model="PAG")])
    with pytest.raises(ValueError, match="warm restart"):
        run_fleet_interrupted(fleet, halt_after=2, directory=str(tmp_path))


def test_resume_rejects_non_session_directory(tmp_path):
    with pytest.raises((OSError, ValueError)):
        resume_fleet(str(tmp_path))


# --------------------------------------------------------------------------- #
# dynamic fleets: halted updating fleets resume exactly
# --------------------------------------------------------------------------- #
def dynamic_fleet(**overrides):
    import dataclasses
    settings = dict(update_rate=0.1, consistency="versioned")
    settings.update(overrides)
    return dataclasses.replace(default_fleet(3, base=BASE), **settings)


def _update_counts(result):
    return {key: result.update_summary[key]
            for key in ("applied", "inserts", "deletes", "modifies",
                        "live_objects")}


@pytest.mark.parametrize("consistency", ["versioned", "ttl", "none"])
def test_dynamic_killed_and_resumed_equals_uninterrupted(tmp_path, consistency):
    """The replay route: no WAL, pre-halt updates are re-derived."""
    fleet = dynamic_fleet(consistency=consistency)
    uninterrupted = run_fleet(fleet)
    directory = str(tmp_path / "session")
    state = run_fleet_interrupted(fleet, halt_after=state_halt(fleet),
                                  directory=directory)
    assert state["dynamic"] is True and state["durable"] is False
    resumed, _ = resume_fleet(directory)
    assert _digests(resumed) == _digests(uninterrupted)
    assert all(digest for digest in _digests(resumed).values())
    assert (resumed.deterministic_group_summary()
            == uninterrupted.deterministic_group_summary())
    assert _update_counts(resumed) == _update_counts(uninterrupted)


def state_halt(fleet) -> int:
    """Roughly mid-run: half the fleet's query events (updates ride along)."""
    return (fleet.total_clients * fleet.base.query_count) // 2


@pytest.mark.parametrize("consistency", ["versioned", "ttl"])
def test_dynamic_durable_halt_and_resume(tmp_path, consistency):
    """The durable route: pre-halt updates come back from the WAL."""
    from repro.storage.paged import wal_summary

    fleet = dynamic_fleet(consistency=consistency)
    store = str(tmp_path / "server.rpro")
    save_tree(build_tree(fleet.base), store)
    uninterrupted = run_fleet(fleet)
    directory = str(tmp_path / "session")
    state = run_fleet_interrupted(fleet, halt_after=state_halt(fleet),
                                  directory=directory, store_path=store,
                                  durable=True)
    assert state["dynamic"] is True and state["durable"] is True
    # The halted run's committed batches are already durable on disk.
    halted = wal_summary(store)
    assert halted["records"] == state["updater"]["wal_commits"] > 0

    resumed, _ = resume_fleet(directory)
    assert _digests(resumed) == _digests(uninterrupted)
    assert (resumed.deterministic_group_summary()
            == uninterrupted.deterministic_group_summary())
    assert _update_counts(resumed) == _update_counts(uninterrupted)
    # Every applied update was committed through the log, pre- and post-halt.
    assert resumed.update_summary["wal_commits"] \
        == resumed.update_summary["applied"]
    assert wal_summary(store)["records"] \
        == resumed.update_summary["wal_commits"]


def test_durable_and_replay_routes_agree(tmp_path):
    fleet = dynamic_fleet()
    store = str(tmp_path / "server.rpro")
    save_tree(build_tree(fleet.base), store)
    replay_dir = str(tmp_path / "replay")
    durable_dir = str(tmp_path / "durable")
    run_fleet_interrupted(fleet, halt_after=state_halt(fleet),
                          directory=replay_dir)
    run_fleet_interrupted(fleet, halt_after=state_halt(fleet),
                          directory=durable_dir, store_path=store,
                          durable=True)
    replayed, _ = resume_fleet(replay_dir)
    durable, _ = resume_fleet(durable_dir)
    assert _digests(replayed) == _digests(durable)
    assert (replayed.deterministic_group_summary()
            == durable.deterministic_group_summary())
