"""Tests for dynamic fleets: one shared mutation history, many clients."""

import dataclasses

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import (
    ClientGroupSpec,
    FleetConfig,
    build_dynamic_events,
    build_fleet_events,
    default_fleet,
    run_fleet,
)
from repro.sim.runner import build_tree


def _base(queries=6, objects=250):
    return SimulationConfig.tiny(query_count=queries, object_count=objects)


def _fleet(clients=4, **overrides):
    fleet = default_fleet(clients, base=_base())
    return dataclasses.replace(fleet, **overrides) if overrides else fleet


def test_fleet_config_validates_dynamic_knobs():
    with pytest.raises(ValueError, match="consistency"):
        _fleet(consistency="gossip")
    with pytest.raises(ValueError, match="update_rate"):
        _fleet(update_rate=-0.1)
    with pytest.raises(ValueError, match="ttl_seconds"):
        _fleet(ttl_seconds=0.0)
    assert not _fleet().is_dynamic
    assert _fleet(update_rate=0.1).is_dynamic
    assert _fleet(consistency="ttl").is_dynamic


def test_initial_object_ids_match_the_built_tree():
    base = _base()
    tree = build_tree(base)
    from repro.sim.fleet import _initial_object_ids
    assert sorted(tree.objects) == _initial_object_ids(base)


def test_dynamic_events_interleave_updates_without_reordering_queries():
    fleet = _fleet(update_rate=0.1, consistency="versioned")
    specs = fleet.client_specs()
    merged = build_dynamic_events(fleet, specs)
    queries = [(t, cid, rec) for kind, t, cid, rec in merged if kind == "query"]
    assert queries == build_fleet_events(specs)
    updates = [event for kind, _, _, event in merged if kind == "update"]
    assert updates, "expected update events at this rate"
    times = [t for _, t, _, _ in merged]
    assert times == sorted(times)


def test_all_clients_observe_one_mutation_history():
    result = run_fleet(_fleet(update_rate=0.1, consistency="versioned"))
    summary = result.update_summary
    assert summary["applied"] > 0
    assert summary["applied"] == (summary["inserts"] + summary["deletes"]
                                  + summary["modifies"])
    assert summary["consistency"] == "versioned"
    # Every client ran its full trace against the mutating server.
    assert all(len(client.costs) == 6 for client in result.clients)
    # Deterministic: the same fleet replays to identical digests and traffic.
    again = run_fleet(_fleet(update_rate=0.1, consistency="versioned"))
    assert ([c.final_cache_digest for c in result.clients]
            == [c.final_cache_digest for c in again.clients])
    assert (result.deterministic_group_summary()
            == again.deterministic_group_summary())


def test_zero_update_none_fleet_is_decision_identical_to_static():
    static = run_fleet(_fleet())
    explicit = run_fleet(_fleet(update_rate=0.0, consistency="none"))
    assert static.update_summary is None and explicit.update_summary is None
    assert ([c.final_cache_digest for c in static.clients]
            == [c.final_cache_digest for c in explicit.clients])
    assert (static.deterministic_group_summary()
            == explicit.deterministic_group_summary())


def test_zero_update_versioned_fleet_keeps_static_digests():
    """With no updates every handshake verdict is 'valid' (the handshake
    still costs traffic but never mutates the cache), so even the
    protocol-enabled fleet reaches byte-identical cache contents."""
    static = run_fleet(_fleet())
    versioned = run_fleet(_fleet(update_rate=0.0, consistency="versioned"))
    assert ([c.final_cache_digest for c in static.clients]
            == [c.final_cache_digest for c in versioned.clients])


def test_consistency_protocols_diverge_under_updates():
    digests = {}
    for mode in ("versioned", "ttl", "none"):
        result = run_fleet(_fleet(update_rate=0.15, consistency=mode))
        digests[mode] = [c.final_cache_digest for c in result.clients]
    assert digests["versioned"] != digests["none"]
    assert digests["ttl"] != digests["none"]


def test_dynamic_fleet_rejects_workers_and_baseline_models():
    with pytest.raises(ValueError, match="sharded"):
        run_fleet(_fleet(update_rate=0.1), max_workers=4)
    fleet = FleetConfig.make(_base(), [ClientGroupSpec(name="pag", clients=2,
                                                       model="PAG")])
    fleet = dataclasses.replace(fleet, update_rate=0.1)
    with pytest.raises(ValueError, match="dynamic fleet"):
        run_fleet(fleet)


def test_dynamic_fleet_over_cow_page_store(tmp_path):
    from repro.storage.paged import save_tree
    base = _base()
    store = str(tmp_path / "server.rpro")
    save_tree(build_tree(base), store)
    with open(store, "rb") as handle:
        bytes_before = handle.read()
    fleet = _fleet(update_rate=0.1, consistency="versioned")
    result = run_fleet(fleet, store_path=store)
    assert result.update_summary["applied"] > 0
    # The store file itself is untouched by the copy-on-write overlay.
    with open(store, "rb") as handle:
        assert handle.read() == bytes_before
    # And the disk-backed dynamic run is decision-identical to in-memory.
    in_memory = run_fleet(fleet)
    assert ([c.final_cache_digest for c in result.clients]
            == [c.final_cache_digest for c in in_memory.clients])


def test_restart_supports_dynamic_fleets(tmp_path):
    """Halting an updating fleet and resuming reproduces the full run."""
    from repro.sim.restart import resume_fleet, run_fleet_interrupted
    fleet = _fleet(update_rate=0.1, consistency="versioned")
    uninterrupted = run_fleet(fleet)
    directory = str(tmp_path / "session")
    state = run_fleet_interrupted(fleet, halt_after=8, directory=directory)
    assert state["dynamic"] is True
    assert state["durable"] is False
    assert state["updater"]["kind"] == "dataset-updater"
    resumed, _ = resume_fleet(directory)
    assert ([c.final_cache_digest for c in resumed.clients]
            == [c.final_cache_digest for c in uninterrupted.clients])
    assert resumed.update_summary["applied"] \
        == uninterrupted.update_summary["applied"]


def test_restart_durable_validation(tmp_path):
    from repro.sim.restart import run_fleet_interrupted
    # Durable halt needs a fleet that actually writes ...
    with pytest.raises(ValueError, match="dynamic"):
        run_fleet_interrupted(_fleet(), halt_after=3,
                              directory=str(tmp_path / "a"), durable=True)
    # ... and a disk store for the WAL to live next to.
    with pytest.raises(ValueError, match="store"):
        run_fleet_interrupted(_fleet(update_rate=0.1), halt_after=3,
                              directory=str(tmp_path / "b"), durable=True)


def test_fleet_roundtrips_dynamic_fields_through_session_files():
    from repro.sim.restart import fleet_from_dict, fleet_to_dict
    fleet = _fleet(update_rate=0.2, consistency="ttl", ttl_seconds=33.0)
    assert fleet_from_dict(fleet_to_dict(fleet)) == fleet
    # Pre-dynamic session files (no update fields) still load as static.
    legacy = fleet_to_dict(_fleet())
    for key in ("update_rate", "consistency", "ttl_seconds", "update_seed"):
        legacy.pop(key)
    assert not fleet_from_dict(legacy).is_dynamic
