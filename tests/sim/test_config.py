"""Tests for the simulation configuration."""

import pytest

from repro.sim.config import SimulationConfig
from repro.workload.generator import QueryMix


def test_paper_defaults_match_table61():
    config = SimulationConfig.paper()
    assert config.object_count == 123_593
    assert config.window_area == 1e-6
    assert config.join_distance == 5e-5
    assert config.k_max == 5
    assert config.think_time_mean == 50.0
    assert config.speed == 0.0001
    assert config.bandwidth_bps == 384_000.0
    assert config.cache_fraction == 0.01
    assert config.sensitivity == 0.2
    assert config.mean_object_bytes == 10_240
    assert config.zipf_theta == 0.8
    assert config.page_bytes == 4_096


def test_cache_bytes_derived_from_fraction():
    config = SimulationConfig.scaled(object_count=1_000).with_overrides(cache_fraction=0.01)
    assert config.dataset_bytes() == 1_000 * config.mean_object_bytes
    assert config.cache_bytes() == int(0.01 * config.dataset_bytes())


def test_explicit_cache_bytes_override():
    config = SimulationConfig.scaled().with_overrides(explicit_cache_bytes=12_345)
    assert config.cache_bytes() == 12_345


def test_with_overrides_returns_new_config():
    base = SimulationConfig.scaled()
    changed = base.with_overrides(mobility_model="DIR", cache_fraction=0.05)
    assert changed.mobility_model == "DIR"
    assert base.mobility_model == "RAN"
    assert changed.cache_fraction == 0.05


def test_join_window_area_defaults_to_four_times_range_window():
    config = SimulationConfig.scaled()
    assert config.effective_join_window_area() == pytest.approx(4 * config.window_area)
    explicit = config.with_overrides(join_window_area=1e-3)
    assert explicit.effective_join_window_area() == 1e-3


def test_as_table_mentions_core_parameters():
    table = SimulationConfig.scaled().as_table()
    for key in ("spd", "think time", "Area_wnd", "Dist_join", "K_max", "bandwidth",
                "|C|", "|o|", "theta", "s"):
        assert key in table


def test_tiny_and_scaled_factories():
    tiny = SimulationConfig.tiny()
    scaled = SimulationConfig.scaled()
    assert tiny.query_count < scaled.query_count
    assert tiny.object_count < scaled.object_count


def test_query_mix_is_frozen_into_config():
    config = SimulationConfig.scaled().with_overrides(
        query_mix=QueryMix(range_=0.0, knn=1.0, join=0.0))
    assert config.query_mix.knn == 1.0
