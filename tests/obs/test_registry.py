"""The metrics registry: families, labels, snapshots, exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import (
    Counter, DEFAULT_BUCKETS, Gauge, Histogram, MetricsRegistry,
)


# --------------------------------------------------------------------------- #
# families and labels
# --------------------------------------------------------------------------- #
def test_counter_accumulates_per_label_set():
    counter = Counter("repro_queries_total")
    counter.inc(1.0, kind="range")
    counter.inc(2.0, kind="range")
    counter.inc(5.0, kind="knn")
    assert counter.value(kind="range") == 3.0
    assert counter.value(kind="knn") == 5.0
    assert counter.value(kind="join") == 0.0


def test_counter_rejects_negative_increments():
    counter = Counter("c_total")
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_label_order_does_not_split_series():
    counter = Counter("c_total")
    counter.inc(1.0, a="x", b="y")
    counter.inc(1.0, b="y", a="x")
    assert counter.value(a="x", b="y") == 2.0
    assert len(counter.series_items()) == 1


def test_gauge_sets_and_shifts():
    gauge = Gauge("queue_depth")
    gauge.set(7.0)
    gauge.inc(-2.0)
    assert gauge.value() == 5.0


def test_metric_and_label_names_are_validated():
    with pytest.raises(ValueError):
        Counter("bad name")
    counter = Counter("ok_total")
    with pytest.raises(ValueError):
        counter.inc(1.0, **{"bad-label": "x"})


def test_histogram_buckets_count_and_sum():
    histogram = Histogram("pages", buckets=(1.0, 10.0))
    for sample in (0.5, 3.0, 4.0, 1000.0):
        histogram.observe(sample)
    series = histogram.snapshot_series()[""]
    assert series["count"] == 4
    assert series["sum"] == pytest.approx(1007.5)
    assert series["buckets"] == {"1": 1, "10": 2, "+Inf": 1}


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=(5.0, 1.0))


def test_default_buckets_end_in_infinity():
    assert DEFAULT_BUCKETS[-1] == float("inf")


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
def test_registry_get_or_create_returns_same_family():
    registry = MetricsRegistry()
    first = registry.counter("repro_queries_total", "Queries.")
    second = registry.counter("repro_queries_total")
    assert first is second


def test_registry_rejects_kind_and_determinism_conflicts():
    registry = MetricsRegistry()
    registry.counter("x_total")
    with pytest.raises(ValueError):
        registry.gauge("x_total")
    with pytest.raises(ValueError):
        registry.counter("x_total", deterministic=False)


def test_snapshot_splits_deterministic_from_wall_clock():
    registry = MetricsRegistry()
    registry.counter("det_total").inc(3.0)
    registry.gauge("latency_ms", deterministic=False).set(12.5)
    snapshot = registry.snapshot()
    assert "det_total" in snapshot["deterministic"]
    assert "latency_ms" in snapshot["wall_clock"]
    assert "latency_ms" not in snapshot["deterministic"]


def test_deterministic_blob_ignores_wall_clock_series():
    def build(latency):
        registry = MetricsRegistry()
        registry.counter("det_total").inc(3.0, kind="range")
        registry.gauge("latency_ms", deterministic=False).set(latency)
        return registry

    assert build(1.0).deterministic_blob() == build(999.0).deterministic_blob()


def test_deterministic_blob_is_canonical_json():
    registry = MetricsRegistry()
    registry.counter("b_total").inc(1.0)
    registry.counter("a_total").inc(2.0)
    blob = registry.deterministic_blob()
    document = json.loads(blob)
    assert list(document) == sorted(document)
    assert blob == registry.deterministic_blob()


# --------------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------------- #
def test_counter_exposition_format():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", "Queries.").inc(3.0, kind="range")
    text = registry.render_prometheus()
    assert "# HELP repro_queries_total Queries." in text
    assert "# TYPE repro_queries_total counter" in text
    assert 'repro_queries_total{kind="range"} 3' in text
    assert text.endswith("\n")


def test_histogram_exposition_is_cumulative_with_inf_bucket():
    registry = MetricsRegistry()
    histogram = registry.histogram("pages", buckets=(1.0, 10.0))
    for sample in (0.5, 3.0, 1000.0):
        histogram.observe(sample)
    lines = registry.render_prometheus().splitlines()
    assert 'pages_bucket{le="1"} 1' in lines
    assert 'pages_bucket{le="10"} 2' in lines
    assert 'pages_bucket{le="+Inf"} 3' in lines
    assert "pages_sum 1003.5" in lines
    assert "pages_count 3" in lines


def test_exposition_orders_families_and_series():
    registry = MetricsRegistry()
    registry.counter("z_total").inc(1.0, shard="1")
    registry.counter("z_total").inc(1.0, shard="0")
    registry.counter("a_total").inc(1.0)
    text = registry.render_prometheus()
    assert text.index("a_total") < text.index("z_total")
    assert text.index('shard="0"') < text.index('shard="1"')
