"""CLI surface of the observability layer: ``repro trace``, ``--status-port``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_trace_prints_flame_view(capsys):
    assert main(["trace", "--clients", "3", "--queries", "6",
                 "--objects", "400"]) == 0
    output = capsys.readouterr().out
    assert "span" in output and "count" in output
    assert "query" in output
    assert "server.execute" in output


def test_trace_exports_jsonl(tmp_path, capsys):
    target = tmp_path / "trace.jsonl"
    assert main(["trace", "--clients", "3", "--queries", "6",
                 "--objects", "400", "--shards", "2",
                 "--jsonl", str(target)]) == 0
    output = capsys.readouterr().out
    assert f"written to {target}" in output
    lines = target.read_text().splitlines()
    assert lines  # one line per traced query
    first = json.loads(lines[0])
    assert first["name"] == "query"
    assert "shard.visit" in {child["name"]
                             for child in first.get("children", [])}


def test_trace_with_updates_records_update_spans(tmp_path):
    target = tmp_path / "trace.jsonl"
    assert main(["trace", "--clients", "3", "--queries", "6",
                 "--objects", "400", "--update-rate", "0.05",
                 "--jsonl", str(target)]) == 0
    names = {json.loads(line)["name"]
             for line in target.read_text().splitlines()}
    assert names == {"query", "update"}


def test_trace_limit_truncates_flame(capsys):
    assert main(["trace", "--clients", "3", "--queries", "6",
                 "--objects", "400", "--shards", "2", "--limit", "1"]) == 0
    assert "more span paths" in capsys.readouterr().out


def test_fleet_status_port_rejects_parallel_workers():
    with pytest.raises(SystemExit, match="serial run"):
        main(["fleet", "--clients", "4", "--queries", "4",
              "--objects", "300", "--workers", "2", "--status-port", "0"])


def test_fleet_status_port_rejects_resume_and_halt(tmp_path):
    with pytest.raises(SystemExit, match="status-port"):
        main(["fleet", "--resume", str(tmp_path), "--status-port", "0"])
    with pytest.raises(SystemExit, match="status-port"):
        main(["fleet", "--clients", "4", "--halt-after", "5",
              "--session-dir", str(tmp_path), "--status-port", "0"])


def test_fleet_status_port_serves_during_run(capsys):
    assert main(["fleet", "--clients", "4", "--queries", "5",
                 "--objects", "300", "--shards", "2",
                 "--status-port", "0"]) == 0
    output = capsys.readouterr().out
    assert "live ops: http://127.0.0.1:" in output
    assert "Fleet simulation" in output


def test_networked_fleet_report_includes_latency_line(capsys):
    assert main(["fleet", "--clients", "4", "--queries", "5",
                 "--objects", "300", "--transport", "uds"]) == 0
    output = capsys.readouterr().out
    assert "Wire latency" in output
    assert "p99" in output
    assert "non-deterministic" in output
