"""The recording instrument: span trees, JSONL export, flame view, guard."""

from __future__ import annotations

import json

from repro.obs import instrument as obs
from repro.obs.instrument import Instrument, activated
from repro.obs.trace import (
    MetricsRecorder, Recorder, Span, render_flame, spans_to_jsonl,
)


def _record_sample(recorder):
    with recorder.span("query", client=0, seq=0, kind="range"):
        recorder.event("shard.visit", shard=1, pages=5)
        recorder.event("shard.visit", shard=2, pages=3)
        recorder.annotate(pages=8, uplink_bytes=120)
    with recorder.span("query", client=1, seq=0, kind="knn"):
        recorder.event("server.execute", pages=4)


# --------------------------------------------------------------------------- #
# guard and activation
# --------------------------------------------------------------------------- #
def test_disabled_by_default_with_null_instrument():
    assert obs.ENABLED is False
    assert type(obs.active()) is Instrument
    # Every hook on the null instrument is a no-op.
    obs.active().event("x", pages=1)
    obs.active().count("c_total")
    with obs.active().span("x"):
        obs.active().annotate(a=1)


def test_activated_restores_prior_state():
    recorder = Recorder()
    with activated(recorder):
        assert obs.ENABLED is True
        assert obs.active() is recorder
        inner = Recorder()
        with activated(inner):
            assert obs.active() is inner
        assert obs.active() is recorder
    assert obs.ENABLED is False
    assert type(obs.active()) is Instrument


# --------------------------------------------------------------------------- #
# the recorder
# --------------------------------------------------------------------------- #
def test_recorder_builds_span_trees():
    recorder = Recorder()
    _record_sample(recorder)
    assert [root.name for root in recorder.roots] == ["query", "query"]
    first = recorder.roots[0]
    assert first.fields["pages"] == 8  # annotate merged into the open span
    assert [child.name for child in first.children] \
        == ["shard.visit", "shard.visit"]
    assert first.children[0].kind == "event"


def test_recorder_tallies_events_and_counts_in_registry():
    recorder = Recorder()
    _record_sample(recorder)
    recorder.count("repro_queries_total", 1.0, kind="range")
    events = recorder.registry.counter("repro_trace_events_total")
    assert events.value(event="shard.visit") == 2.0
    assert recorder.registry.counter("repro_queries_total") \
        .value(kind="range") == 1.0


def test_recorder_without_timing_leaves_wall_fields_unset():
    recorder = Recorder()
    _record_sample(recorder)
    assert all(root.wall_elapsed_ms is None for root in recorder.roots)
    assert "wall_elapsed_ms" not in recorder.roots[0].to_dict()


def test_recorder_with_timing_stamps_spans_only():
    recorder = Recorder(timing=True)
    _record_sample(recorder)
    root = recorder.roots[0]
    assert root.wall_elapsed_ms is not None and root.wall_elapsed_ms >= 0.0
    assert root.children[0].wall_elapsed_ms is None  # events are instants


def test_metrics_recorder_retains_no_spans():
    recorder = MetricsRecorder()
    with recorder.span("query"):
        recorder.event("server.execute", pages=4)
    recorder.count("repro_queries_total")
    assert not hasattr(recorder, "roots")
    events = recorder.registry.counter("repro_trace_events_total")
    assert events.value(event="server.execute") == 1.0


# --------------------------------------------------------------------------- #
# JSONL export
# --------------------------------------------------------------------------- #
def test_jsonl_is_one_sorted_line_per_root():
    recorder = Recorder()
    _record_sample(recorder)
    text = spans_to_jsonl(recorder.roots)
    lines = text.splitlines()
    assert len(lines) == 2
    document = json.loads(lines[0])
    assert document["name"] == "query"
    assert [child["name"] for child in document["children"]] \
        == ["shard.visit", "shard.visit"]
    # Byte stability: sorted keys, canonical separators.
    assert lines[0] == json.dumps(document, sort_keys=True,
                                  separators=(",", ":"))


def test_jsonl_writes_through_a_stream():
    import io
    recorder = Recorder()
    _record_sample(recorder)
    stream = io.StringIO()
    text = spans_to_jsonl(recorder.roots, stream)
    assert stream.getvalue() == text


def test_jsonl_of_identical_recordings_is_byte_identical():
    first, second = Recorder(), Recorder()
    _record_sample(first)
    _record_sample(second)
    assert spans_to_jsonl(first.roots) == spans_to_jsonl(second.roots)


def test_empty_recording_exports_empty_document():
    assert spans_to_jsonl([]) == ""


# --------------------------------------------------------------------------- #
# flame view
# --------------------------------------------------------------------------- #
def test_flame_view_aggregates_paths_and_sums_quantities():
    recorder = Recorder()
    _record_sample(recorder)
    flame = render_flame(recorder.roots)
    lines = flame.splitlines()
    query_line = next(line for line in lines if line.startswith("query"))
    assert "2" in query_line.split()  # both roots aggregated on one path
    assert "pages=8" in query_line
    visit_line = next(line for line in lines if "shard.visit" in line)
    assert "pages=8" in visit_line  # 5 + 3 summed along the path


def test_flame_view_skips_identity_fields():
    recorder = Recorder()
    _record_sample(recorder)
    flame = render_flame(recorder.roots)
    assert "client=" not in flame  # ids are labels, not quantities
    assert "seq=" not in flame
    assert "shard=" not in flame


def test_flame_view_truncates_at_limit():
    roots = [Span(name=f"s{index}") for index in range(6)]
    flame = render_flame(roots, limit=3)
    assert "3 more span paths" in flame


def test_flame_view_handles_empty_recording():
    assert render_flame([]) == "(no spans recorded)"
