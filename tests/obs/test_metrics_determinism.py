"""The observability layer's determinism contract on real fleet runs.

Two identical seeded runs must produce byte-identical deterministic metric
blobs and trace exports — across replacement policies and across the
in-process and loopback-socket deployments — and switching the
instrumentation on must leave every existing fingerprint (per-group
summaries, final cache digests) untouched.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs import instrument as obs
from repro.obs.instrument import activated
from repro.obs.trace import Recorder, spans_to_jsonl
from repro.sim.config import SimulationConfig
from repro.sim.fleet import default_fleet, run_fleet


def _fleet(policy="GRD3", queries=8, objects=600, clients=4, transport=None,
           shards=None, dynamic=False):
    base = SimulationConfig.scaled(query_count=queries, object_count=objects
                                   ).with_overrides(replacement_policy=policy)
    fleet = default_fleet(clients, base=base)
    if transport is not None:
        fleet = dataclasses.replace(fleet, transport=transport)
    if shards is not None:
        fleet = dataclasses.replace(fleet, shards=shards, partitioner="grid")
    if dynamic:
        fleet = dataclasses.replace(fleet, update_rate=0.05,
                                    consistency="versioned")
    return fleet


def _instrumented_run(**kwargs):
    recorder = Recorder()
    with activated(recorder):
        result = run_fleet(_fleet(**kwargs))
    return recorder, result


# --------------------------------------------------------------------------- #
# byte-identical blobs across seeded runs
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", ["LRU", "MRU", "FAR", "GRD1", "GRD3"])
def test_seeded_runs_share_deterministic_blob(policy):
    first, _ = _instrumented_run(policy=policy)
    second, _ = _instrumented_run(policy=policy)
    blob = first.registry.deterministic_blob()
    assert blob == second.registry.deterministic_blob()
    assert blob != b"{}"  # the run actually fed the registry


def test_seeded_runs_share_trace_export():
    first, _ = _instrumented_run()
    second, _ = _instrumented_run()
    export = spans_to_jsonl(first.roots)
    assert export == spans_to_jsonl(second.roots)
    assert export.count("\n") == len(first.roots)


def test_uds_runs_share_deterministic_blob():
    first, _ = _instrumented_run(transport="uds")
    second, _ = _instrumented_run(transport="uds")
    assert first.registry.deterministic_blob() \
        == second.registry.deterministic_blob()


def test_sharded_dynamic_runs_share_deterministic_blob():
    first, _ = _instrumented_run(shards=3, dynamic=True)
    second, _ = _instrumented_run(shards=3, dynamic=True)
    blob = first.registry.deterministic_blob()
    assert blob == second.registry.deterministic_blob()
    assert b"repro_router_shards_visited_total" in blob
    assert b"repro_updates_total" in blob


# --------------------------------------------------------------------------- #
# the instrumentation changes no result
# --------------------------------------------------------------------------- #
def _fingerprints(result):
    digests = [(client.final_cache_digest, client.final_cache_used_bytes)
               for client in result.clients]
    return result.deterministic_group_summary(), digests


@pytest.mark.parametrize("kwargs", [
    {},
    {"policy": "LRU"},
    {"shards": 3, "dynamic": True},
    {"transport": "uds"},
], ids=["static", "lru", "sharded-dynamic", "uds"])
def test_enabled_run_matches_disabled_fingerprints(kwargs):
    plain = run_fleet(_fleet(**kwargs))
    _, instrumented = _instrumented_run(**kwargs)
    assert _fingerprints(plain) == _fingerprints(instrumented)


def test_disabled_path_records_nothing():
    assert obs.ENABLED is False
    run_fleet(_fleet())
    recorder = Recorder()  # never activated
    assert recorder.roots == []
    snapshot = recorder.registry.snapshot()
    # Only the recorder's own (empty) event-counter family exists.
    assert list(snapshot["deterministic"]) == ["repro_trace_events_total"]
    assert snapshot["deterministic"]["repro_trace_events_total"]["series"] \
        == {}
    assert snapshot["wall_clock"] == {}


def test_guard_is_lowered_after_an_instrumented_run():
    _instrumented_run()
    assert obs.ENABLED is False
