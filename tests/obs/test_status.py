"""The status board and its HTTP server, scraped over real sockets."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.status import (
    StatusBoard, StatusServerThread, active_board, board_active, publish,
)


# --------------------------------------------------------------------------- #
# the board
# --------------------------------------------------------------------------- #
def test_board_assembles_sections_sorted():
    board = StatusBoard()
    board.register("zeta", lambda: {"b": 2})
    board.register("alpha", lambda: {"a": 1})
    document = json.loads(board.status_json())
    assert list(document["sections"]) == ["alpha", "zeta"]
    assert document["sections"]["alpha"] == {"a": 1}


def test_failing_provider_becomes_error_section():
    board = StatusBoard()
    board.register("ok", lambda: 1)

    def explode():
        raise RuntimeError("scrape raced the run teardown")

    board.register("bad", explode)
    sections = board.status()["sections"]
    assert sections["ok"] == 1
    assert sections["bad"] == {"error": "RuntimeError: scrape raced the "
                                        "run teardown"}


def test_unregister_is_idempotent():
    board = StatusBoard()
    board.register("x", lambda: 1)
    board.unregister("x")
    board.unregister("x")
    assert board.status()["sections"] == {}


def test_metrics_text_empty_without_registry():
    assert StatusBoard().metrics_text() == ""
    registry = MetricsRegistry()
    registry.counter("c_total").inc(1.0)
    assert "c_total 1" in StatusBoard(registry).metrics_text()


def test_publish_is_noop_without_active_board():
    assert active_board() is None
    publish("section", lambda: 1)  # must not raise


def test_board_active_scopes_publish_target():
    board = StatusBoard()
    with board_active(board):
        assert active_board() is board
        publish("fleet", lambda: {"clients": 4})
    assert active_board() is None
    assert board.status()["sections"]["fleet"] == {"clients": 4}


# --------------------------------------------------------------------------- #
# the HTTP server
# --------------------------------------------------------------------------- #
@pytest.fixture()
def served_board():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", "Queries.").inc(3.0, kind="range")
    board = StatusBoard(registry)
    board.register("fleet", lambda: {"clients": 4, "events": 48})
    thread = StatusServerThread(board)
    thread.start()
    try:
        yield f"http://{thread.host}:{thread.port}"
    finally:
        thread.stop()


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as reply:
        return reply.status, reply.headers, reply.read()


def test_status_endpoint_serves_board_json(served_board):
    status, headers, body = _get(served_board + "/status")
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    assert json.loads(body)["sections"]["fleet"] == {"clients": 4,
                                                     "events": 48}


def test_metrics_endpoint_serves_exposition(served_board):
    status, headers, body = _get(served_board + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert b'repro_queries_total{kind="range"} 3' in body


def test_dashboard_served_at_root(served_board):
    status, headers, body = _get(served_board + "/")
    assert status == 200
    assert headers["Content-Type"].startswith("text/html")
    assert b"/status" in body and b"/metrics" in body


def test_healthz_endpoint(served_board):
    status, _, body = _get(served_board + "/healthz")
    assert status == 200
    assert body == b"ok\n"


def test_unknown_route_is_404(served_board):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(served_board + "/nope")
    assert excinfo.value.code == 404


def test_non_get_method_is_405(served_board):
    request = urllib.request.Request(served_board + "/status",
                                     data=b"{}", method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=5.0)
    assert excinfo.value.code == 405


def test_query_strings_are_ignored(served_board):
    status, _, body = _get(served_board + "/status?refresh=1")
    assert status == 200
    assert b"sections" in body


def test_thread_start_is_single_shot_and_stop_idempotent():
    thread = StatusServerThread(StatusBoard())
    thread.start()
    with pytest.raises(RuntimeError):
        thread.start()
    thread.stop()
    thread.stop()


def test_thread_surfaces_bind_failure():
    first = StatusServerThread(StatusBoard())
    first.start()
    try:
        second = StatusServerThread(StatusBoard(), port=first.port)
        with pytest.raises(RuntimeError, match="failed to start"):
            second.start()
    finally:
        first.stop()
