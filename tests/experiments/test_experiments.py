"""Smoke tests for the figure-regenerating experiment modules.

These run every experiment end to end on a deliberately tiny configuration
(they exist to guarantee the experiment/benchmark code paths stay runnable;
the shape assertions about the paper's findings live in ``benchmarks/``).
"""

import pytest

from repro.experiments import fig6, fig7, fig8, fig9, fig10, fig11, overheads, table61
from repro.experiments.report import format_table, normalise
from repro.sim.config import SimulationConfig
from repro.workload.generator import QueryMix


TINY = SimulationConfig.tiny(query_count=16, object_count=300)


def test_report_normalise():
    scaled = normalise({"a": 2.0, "b": 4.0})
    assert scaled == {"a": 0.5, "b": 1.0}
    assert normalise({"a": 0.0}) == {"a": 0.0}


def test_report_format_table():
    text = format_table(["name", "value"], [["x", 1.23456], ["y", 1234.5]], title="T")
    assert "T" in text and "name" in text and "x" in text


def test_table61_contains_both_columns():
    tables = table61.run(TINY)
    rendered = table61.render(tables)
    assert "paper" in rendered
    assert "Area_wnd" in rendered


def test_fig6_runs_and_renders():
    summaries = fig6.run(TINY.with_overrides(mobility_model="DIR"))
    assert set(summaries) == {"PAG", "SEM", "APRO"}
    rendered = fig6.render(summaries)
    assert "uplink_bytes" in rendered


def test_fig7_runs_and_renders():
    results = fig7.run(TINY, mobility_models=("RAN", "DIR"))
    assert set(results) == {"RAN", "DIR"}
    rendered = fig7.render(results)
    assert "false miss rate" in rendered


def test_fig8_and_fig9_share_sweep_structure():
    results8 = fig8.run(TINY, fractions=(0.005, 0.02), models=("PAG", "APRO"))
    assert set(results8) == {0.005, 0.02}
    assert "response time" in fig8.render(results8)
    results9 = fig9.run(TINY, fractions=(0.005,), models=("PAG", "APRO"))
    assert "CPU" in fig9.render(results9)


def test_fig10_runs_and_renders():
    results = fig10.run(TINY, policies=("LRU", "GRD3"), mobility_models=("RAN",))
    assert set(results["RAN"]) == {"LRU", "GRD3"}
    assert "replacement" in fig10.render(results)


def test_fig11_runs_and_renders():
    config = fig11.default_config(query_count=20).with_overrides(object_count=300)
    series = fig11.run(config, window=10)
    assert {"FPRO", "CPRO", "APRO"} <= set(series)
    for model in ("FPRO", "CPRO", "APRO"):
        assert len(series[model]["false_miss_rate"]) == 2
    assert "false miss rate" in fig11.render(series)


def test_fig11_default_config_is_knn_only():
    config = fig11.default_config()
    assert config.query_mix.range_ == 0.0
    assert config.query_mix.join == 0.0
    # Small cache relative to the scaled dataset (see the fig11 docstring for
    # how the paper's 0.1% maps onto the scaled dataset size).
    assert config.cache_fraction <= 0.02


def test_overheads_runs_and_renders():
    values = overheads.run(TINY)
    assert values["partition_tree_bytes"] <= 2 * values["index_bytes"]
    assert "partition" in overheads.render(values)
