"""CLI coverage for the sharded execution tier and ``bench --list``."""

import pytest

from repro.cli import main
from repro.perf import scenario_names


def test_fleet_sharded_run_reports_shard_routing(capsys):
    assert main(["fleet", "--clients", "4", "--queries", "6", "--objects",
                 "500", "--shards", "3"]) == 0
    output = capsys.readouterr().out
    assert "3 shard(s) [grid partitioner]" in output
    assert "Shard routing" in output
    assert "queries_routed" in output
    assert "shards_pruned" in output
    assert "pages_read" in output


def test_fleet_shards_one_reports_single_shard(capsys):
    assert main(["fleet", "--clients", "3", "--queries", "5", "--objects",
                 "400", "--shards", "1", "--partitioner", "kd"]) == 0
    output = capsys.readouterr().out
    assert "1 shard(s) [kd partitioner]" in output
    assert "Shard routing" in output


def test_fleet_rejects_invalid_shard_count():
    with pytest.raises(SystemExit):
        main(["fleet", "--clients", "3", "--queries", "5", "--objects",
              "400", "--shards", "0"])


def test_fleet_rejects_shards_with_workers():
    with pytest.raises(SystemExit):
        main(["fleet", "--clients", "4", "--queries", "5", "--objects",
              "400", "--shards", "2", "--workers", "2"])


def test_fleet_rejects_shards_with_resume(tmp_path):
    with pytest.raises(SystemExit):
        main(["fleet", "--resume", str(tmp_path), "--shards", "2"])


def test_fleet_rejects_shards_with_halt(tmp_path):
    with pytest.raises(SystemExit):
        main(["fleet", "--clients", "3", "--queries", "5", "--objects",
              "400", "--shards", "2", "--halt-after", "3",
              "--session-dir", str(tmp_path)])


def test_fleet_rejects_non_proactive_sharded_group():
    with pytest.raises(SystemExit):
        main(["fleet", "--group", "pagers:3:RAN:PAG", "--queries", "5",
              "--objects", "400", "--shards", "2"])


def test_fleet_dynamic_sharded_run(capsys):
    assert main(["fleet", "--clients", "3", "--queries", "6", "--objects",
                 "500", "--shards", "2", "--update-rate", "0.05",
                 "--consistency", "versioned"]) == 0
    output = capsys.readouterr().out
    assert "2 shard(s)" in output
    assert "server updates:" in output


def test_persist_save_shards_then_fleet_from_store(tmp_path, capsys):
    store = str(tmp_path / "shards")
    assert main(["persist", "save-shards", "--out", store, "--shards", "2",
                 "--objects", "500", "--queries", "5"]) == 0
    assert "saved 2 shard store(s)" in capsys.readouterr().out
    assert main(["fleet", "--clients", "3", "--queries", "5", "--objects",
                 "500", "--shards", "2", "--store", store]) == 0
    assert "tree served from" in capsys.readouterr().out


def test_fleet_rejects_mismatched_shard_store(tmp_path, capsys):
    store = str(tmp_path / "shards")
    assert main(["persist", "save-shards", "--out", store, "--shards", "2",
                 "--objects", "500", "--queries", "5"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["fleet", "--clients", "3", "--queries", "5", "--objects",
              "600", "--shards", "2", "--store", store])


def test_persist_save_shards_rejects_bad_partitioner():
    with pytest.raises(SystemExit):
        main(["persist", "save-shards", "--out", "x", "--shards", "2",
              "--partitioner", "voronoi"])


def test_bench_list_names_every_scenario(capsys):
    assert main(["bench", "--list"]) == 0
    output = capsys.readouterr().out
    for name in scenario_names():
        assert name in output
    assert "sharded_fleet" in output
    # One-line descriptions ride along.
    assert "grid-sharded fleet" in output
