"""The perf harness: measurement plumbing, persistence and the CI gate."""

import json

import pytest

from repro.cli import main
from repro.perf.harness import (
    BenchReport,
    ScenarioMeasurement,
    compare_to_baseline,
    format_report,
    load_report,
    run_scenario,
    run_suite,
    write_report,
)
from repro.perf.scenarios import SCALES, SCENARIOS, scenario_names

# Every test drives full perf scenarios (timed repeats): the slow lane.
pytestmark = pytest.mark.slow


def make_measurement(name, wall, fingerprint=None):
    return ScenarioMeasurement(name=name, wall_seconds=wall, repeats=1,
                               all_wall_seconds=[wall], peak_alloc_bytes=4096,
                               live_alloc_bytes=1024,
                               fingerprint=fingerprint or {"m": 1.0})


def make_report(walls, scale="smoke", fingerprints=None):
    report = BenchReport(scale=scale, python_version="3.x", label="test")
    for name, wall in walls.items():
        fp = (fingerprints or {}).get(name)
        report.scenarios[name] = make_measurement(name, wall, fp)
    return report


def test_scenario_registry_names():
    assert scenario_names() == list(SCENARIOS)
    assert {"fig6_models", "fleet_rush_hour", "cache_pressure",
            "sharded_fleet"} <= set(SCENARIOS)
    assert set(SCALES) == {"default", "smoke"}


def test_scenario_descriptions_cover_the_registry():
    from repro.perf import scenario_descriptions
    descriptions = scenario_descriptions()
    assert list(descriptions) == scenario_names()
    assert all(description for description in descriptions.values())
    assert all("\n" not in description
               for description in descriptions.values())


def test_sharded_fleet_scenario_pins_result_equivalence():
    """The scenario's own correctness bit must hold at smoke scale."""
    fingerprint = SCENARIOS["sharded_fleet"](SCALES["smoke"])
    assert fingerprint["results_match"] == 1.0
    assert fingerprint["shards"] == float(SCALES["smoke"]["shard_count"])
    routed = sum(value for key, value in fingerprint.items()
                 if key.endswith(".queries_routed"))
    assert routed > 0


def test_hotspot_cache_scenario_pins_skips_and_equivalence():
    """Cache-on must answer identically AND actually skip shards."""
    fingerprint = SCENARIOS["hotspot_cache"](SCALES["smoke"])
    assert fingerprint["results_match"] == 1.0
    assert fingerprint["shards_skipped"] > 0
    assert 0.0 < fingerprint["cache_hit_rate"] <= 1.0
    assert fingerprint["pages_read_on"] < fingerprint["pages_read_off"]


def test_report_round_trip(tmp_path):
    current = make_report({"a": 1.0, "b": 2.0})
    baseline = make_report({"a": 2.0, "b": 2.0})
    path = tmp_path / "BENCH_test.json"
    payload = write_report(str(path), current, baseline=baseline,
                           meta={"note": "round trip"})
    assert payload["speedup"] == {"a": 2.0, "b": 1.0}
    loaded_current = load_report(str(path), section="current")
    loaded_baseline = load_report(str(path), section="baseline")
    assert loaded_current.scenarios["a"].wall_seconds == 1.0
    assert loaded_baseline.scenarios["a"].wall_seconds == 2.0
    assert loaded_current.scenarios["a"].fingerprint == {"m": 1.0}
    with pytest.raises(ValueError):
        load_report(str(path), section="nope")
    raw = json.loads(path.read_text())
    assert raw["meta"]["note"] == "round trip"


def test_compare_flags_wall_clock_regression():
    baseline = make_report({"a": 1.0, "b": 1.0})
    current = make_report({"a": 1.30, "b": 1.10})
    entries = {e.name: e for e in compare_to_baseline(current, baseline,
                                                      max_regression=0.25)}
    assert entries["a"].regressed
    assert not entries["b"].regressed
    assert entries["a"].ratio == pytest.approx(1.30)
    assert entries["b"].speedup == pytest.approx(1 / 1.10)


def test_compare_flags_fingerprint_mismatch():
    baseline = make_report({"a": 1.0}, fingerprints={"a": {"m": 1.0}})
    current = make_report({"a": 0.5}, fingerprints={"a": {"m": 2.0}})
    (entry,) = compare_to_baseline(current, baseline)
    assert not entry.regressed          # it is faster ...
    assert entry.fingerprint_matches is False  # ... but it changed behaviour


def test_compare_rejects_scale_mismatch():
    with pytest.raises(ValueError, match="scale mismatch"):
        compare_to_baseline(make_report({"a": 1.0}, scale="smoke"),
                            make_report({"a": 1.0}, scale="default"))


def test_compare_refuses_scenarios_missing_from_baseline():
    """A renamed/added scenario must not silently fall out of the gate."""
    baseline = make_report({"a": 1.0})
    current = make_report({"a": 1.0, "brand_new": 1.0})
    with pytest.raises(ValueError, match="brand_new"):
        compare_to_baseline(current, baseline)
    entries = compare_to_baseline(current, baseline, allow_missing=True)
    assert [e.name for e in entries] == ["a"]
    # The baseline having *extra* scenarios (a subset run) is fine.
    subset = make_report({"a": 1.0})
    full_baseline = make_report({"a": 1.0, "b": 1.0})
    assert len(compare_to_baseline(subset, full_baseline)) == 1


def test_check_without_baseline_is_an_error(capsys):
    with pytest.raises(SystemExit, match="--check requires --baseline"):
        main(["bench", "--scenario", "fig6_models", "--scale", "smoke",
              "--repeats", "1", "--no-alloc", "--check"])
    capsys.readouterr()


def test_run_suite_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_suite(["not_a_scenario"], scale="smoke")
    with pytest.raises(ValueError, match="unknown scale"):
        run_suite(scale="galactic")


def test_run_scenario_smoke_produces_fingerprint():
    measurement = run_scenario("cache_pressure", scale_name="smoke", repeats=1,
                               measure_allocations=True)
    assert measurement.wall_seconds > 0
    assert measurement.peak_alloc_bytes > 0
    assert 0 <= measurement.live_alloc_bytes <= measurement.peak_alloc_bytes
    assert measurement.fingerprint  # deterministic metrics recorded
    # Determinism: a second run reproduces the fingerprint exactly.
    again = run_scenario("cache_pressure", scale_name="smoke", repeats=1,
                         measure_allocations=False)
    assert again.fingerprint == measurement.fingerprint


def test_format_report_marks_regressions():
    baseline = make_report({"a": 1.0})
    current = make_report({"a": 2.0})
    comparison = compare_to_baseline(current, baseline)
    text = format_report(current, comparison)
    assert "REGRESSED" in text
    assert "a" in text


def test_bench_cli_writes_report_and_gates(tmp_path, capsys):
    output = tmp_path / "BENCH_ci.json"
    assert main(["bench", "--scenario", "fig6_models", "--scale", "smoke",
                 "--repeats", "1", "--no-alloc", "--output", str(output)]) == 0
    capsys.readouterr()
    payload = json.loads(output.read_text())
    assert "fig6_models" in payload["current"]["scenarios"]

    # Gate against itself: fingerprints must match.  Wall-clock noise between
    # two single-repeat runs on a loaded test machine is real, so this case
    # disarms the timing threshold and exercises the behaviour gate only.
    assert main(["bench", "--scenario", "fig6_models", "--scale", "smoke",
                 "--repeats", "1", "--no-alloc", "--baseline", str(output),
                 "--max-regression", "1000", "--check"]) == 0
    capsys.readouterr()

    # Fabricate an absurdly fast baseline: the gate must fail.
    payload["current"]["scenarios"]["fig6_models"]["wall_seconds"] = 1e-9
    fast = tmp_path / "BENCH_fast.json"
    fast.write_text(json.dumps(payload))
    with pytest.raises(SystemExit, match="wall-clock regression"):
        main(["bench", "--scenario", "fig6_models", "--scale", "smoke",
              "--repeats", "1", "--no-alloc", "--baseline", str(fast), "--check"])
    capsys.readouterr()


def test_storage_scenarios_registered():
    assert {"storage_paged", "warm_restart"} <= set(SCENARIOS)


def test_storage_paged_scenario_asserts_backend_match():
    measurement = run_scenario("storage_paged", scale_name="smoke", repeats=1,
                               measure_allocations=False)
    assert measurement.fingerprint["backend_match"] == 1.0
    assert measurement.fingerprint["logical_page_reads"] > 0
    assert measurement.fingerprint["file_reads"] > 0
    # Deterministic (the fingerprint must be gateable):
    again = run_scenario("storage_paged", scale_name="smoke", repeats=1,
                         measure_allocations=False)
    assert again.fingerprint == measurement.fingerprint


def test_warm_restart_scenario_asserts_digest_match():
    measurement = run_scenario("warm_restart", scale_name="smoke", repeats=1,
                               measure_allocations=False)
    assert measurement.fingerprint["digest_match"] == 1.0
    again = run_scenario("warm_restart", scale_name="smoke", repeats=1,
                         measure_allocations=False)
    assert again.fingerprint == measurement.fingerprint


def test_update_churn_scenario_fingerprint():
    assert "update_churn" in SCENARIOS
    measurement = run_scenario("update_churn", scale_name="smoke", repeats=1,
                               measure_allocations=False)
    fingerprint = measurement.fingerprint
    for mode in ("versioned", "ttl", "none"):
        assert fingerprint[f"{mode}.applied_updates"] > 0
    # Only the versioned protocol pays handshake bytes; only the baselines
    # never refresh in place.
    assert fingerprint["versioned.sync_uplink_bytes"] > 0
    assert fingerprint["ttl.sync_uplink_bytes"] == 0
    assert fingerprint["none.sync_uplink_bytes"] == 0
    assert fingerprint["none.refreshed_items"] == 0
    # Deterministic (the fingerprint must be gateable):
    again = run_scenario("update_churn", scale_name="smoke", repeats=1,
                         measure_allocations=False)
    assert again.fingerprint == measurement.fingerprint
