"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, config_from_args, main


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_config_from_args_scaled():
    parser = build_parser()
    args = parser.parse_args(["compare", "--queries", "12", "--objects", "300",
                              "--mobility", "DIR", "--cache", "0.02",
                              "--replacement", "LRU", "--dataset", "RD"])
    config = config_from_args(args)
    assert config.query_count == 12
    assert config.object_count == 300
    assert config.mobility_model == "DIR"
    assert config.cache_fraction == 0.02
    assert config.replacement_policy == "LRU"
    assert config.dataset_name == "RD"


def test_config_from_args_paper_scale():
    parser = build_parser()
    args = parser.parse_args(["params", "--paper-scale"])
    config = config_from_args(args)
    assert config.object_count == 123_593


def test_params_command_prints_table(capsys):
    assert main(["params", "--queries", "10", "--objects", "200"]) == 0
    output = capsys.readouterr().out
    assert "Area_wnd" in output
    assert "paper (Table 6.1)" in output


def test_compare_command_runs_tiny_simulation(capsys):
    assert main(["compare", "--queries", "8", "--objects", "200",
                 "--models", "PAG,APRO"]) == 0
    output = capsys.readouterr().out
    assert "cache_hit_rate" in output
    assert "PAG" in output and "APRO" in output


def test_figure_table61_command(capsys):
    assert main(["figure", "table61", "--queries", "5", "--objects", "150"]) == 0
    assert "Table 6.1" in capsys.readouterr().out


def test_figure_6_command_tiny(capsys):
    assert main(["figure", "6", "--queries", "8", "--objects", "200"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "42"])
