"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, config_from_args, main


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_config_from_args_scaled():
    parser = build_parser()
    args = parser.parse_args(["compare", "--queries", "12", "--objects", "300",
                              "--mobility", "DIR", "--cache", "0.02",
                              "--replacement", "LRU", "--dataset", "RD"])
    config = config_from_args(args)
    assert config.query_count == 12
    assert config.object_count == 300
    assert config.mobility_model == "DIR"
    assert config.cache_fraction == 0.02
    assert config.replacement_policy == "LRU"
    assert config.dataset_name == "RD"


def test_config_from_args_paper_scale():
    parser = build_parser()
    args = parser.parse_args(["params", "--paper-scale"])
    config = config_from_args(args)
    assert config.object_count == 123_593


def test_params_command_prints_table(capsys):
    assert main(["params", "--queries", "10", "--objects", "200"]) == 0
    output = capsys.readouterr().out
    assert "Area_wnd" in output
    assert "paper (Table 6.1)" in output


def test_compare_command_runs_tiny_simulation(capsys):
    assert main(["compare", "--queries", "8", "--objects", "200",
                 "--models", "PAG,APRO"]) == 0
    output = capsys.readouterr().out
    assert "cache_hit_rate" in output
    assert "PAG" in output and "APRO" in output


def test_figure_table61_command(capsys):
    assert main(["figure", "table61", "--queries", "5", "--objects", "150"]) == 0
    assert "Table 6.1" in capsys.readouterr().out


def test_figure_6_command_tiny(capsys):
    assert main(["figure", "6", "--queries", "8", "--objects", "200"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "42"])


# --------------------------------------------------------------------------- #
# persistence: repro persist / --store / --halt-after / --resume
# --------------------------------------------------------------------------- #
TINY = ["--queries", "8", "--objects", "200"]


def test_persist_save_info_verify_roundtrip(tmp_path, capsys):
    store = str(tmp_path / "server.rpro")
    assert main(["persist", "save-tree", "--out", store] + TINY) == 0
    assert "node pages" in capsys.readouterr().out

    assert main(["persist", "info", store]) == 0
    output = capsys.readouterr().out
    assert "rtree page store" in output and "meta.dataset: NE" in output

    assert main(["persist", "verify", store] + TINY) == 0
    output = capsys.readouterr().out
    assert output.startswith("OK") and "physical file reads" in output


def test_persist_info_rejects_garbage(tmp_path):
    path = tmp_path / "junk.rpro"
    path.write_bytes(b"nope")
    with pytest.raises(SystemExit, match="persist"):
        main(["persist", "info", str(path)])


def test_compare_with_store_matches_memory(tmp_path, capsys):
    store = str(tmp_path / "server.rpro")
    assert main(["persist", "save-tree", "--out", store] + TINY) == 0
    capsys.readouterr()
    assert main(["compare", "--models", "APRO"] + TINY) == 0
    memory_output = capsys.readouterr().out
    assert main(["compare", "--models", "APRO", "--store", store] + TINY) == 0
    store_output = capsys.readouterr().out

    def deterministic_rows(text):
        # Drop the wall-clock CPU row; everything else is seed-deterministic.
        return [line for line in text.splitlines() if "cpu" not in line]

    assert deterministic_rows(store_output) == deterministic_rows(memory_output)


def test_fleet_halt_and_resume(tmp_path, capsys):
    session_dir = str(tmp_path / "session")
    fleet_args = ["fleet", "--clients", "3", "--queries", "4",
                  "--objects", "200"]
    assert main(fleet_args + ["--halt-after", "5",
                              "--session-dir", session_dir]) == 0
    output = capsys.readouterr().out
    assert "halted after 5" in output
    assert main(["fleet", "--resume", session_dir]) == 0
    resumed_output = capsys.readouterr().out
    assert "resumed from" in resumed_output

    # The combined metrics equal an uninterrupted run's.
    assert main(fleet_args) == 0
    uninterrupted_output = capsys.readouterr().out
    for line in ("uplink_bytes", "downlink_bytes", "cache_hit_rate"):
        resumed_line = next(l for l in resumed_output.splitlines()
                            if l.startswith(line))
        plain_line = next(l for l in uninterrupted_output.splitlines()
                          if l.startswith(line))
        assert resumed_line == plain_line


def test_fleet_halt_requires_session_dir():
    with pytest.raises(SystemExit, match="session-dir"):
        main(["fleet", "--clients", "2", "--queries", "2", "--objects", "150",
              "--halt-after", "3"])


def test_fleet_resume_bad_directory(tmp_path):
    with pytest.raises(SystemExit, match="resume"):
        main(["fleet", "--resume", str(tmp_path / "missing")])


def test_help_epilogs_show_examples(capsys):
    for command in ("compare", "fleet", "bench", "persist"):
        with pytest.raises(SystemExit):
            main([command, "--help"])
        assert "examples:" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# error paths: corrupted stores, missing sessions, bad flags
# --------------------------------------------------------------------------- #
def test_persist_verify_rejects_garbage_file(tmp_path):
    path = tmp_path / "junk.rpro"
    path.write_bytes(b"not a page store at all")
    with pytest.raises(SystemExit, match="repro persist: error"):
        main(["persist", "verify", str(path)] + TINY)


def test_persist_verify_rejects_truncated_store(tmp_path, capsys):
    store = tmp_path / "server.rpro"
    assert main(["persist", "save-tree", "--out", str(store)] + TINY) == 0
    capsys.readouterr()
    data = store.read_bytes()
    store.write_bytes(data[:len(data) // 2])
    with pytest.raises(SystemExit, match="corrupt or truncated"):
        main(["persist", "verify", str(store)] + TINY)


def test_persist_verify_rejects_corrupted_page(tmp_path, capsys):
    store = tmp_path / "server.rpro"
    assert main(["persist", "save-tree", "--out", str(store)] + TINY) == 0
    capsys.readouterr()
    from repro.storage import read_header
    page_size = read_header(str(store))["page_size"]
    data = bytearray(store.read_bytes())
    # Overwrite the head of the last object page: its record now decodes
    # to an id that contradicts the directory.
    start = len(data) - page_size
    data[start:start + 16] = b"\xff" * 16
    store.write_bytes(bytes(data))
    with pytest.raises(SystemExit, match="repro persist: error"):
        main(["persist", "verify", str(store)] + TINY)


def test_fleet_resume_missing_session_dir(tmp_path):
    missing = tmp_path / "no-such-session"
    with pytest.raises(SystemExit, match="cannot resume"):
        main(["fleet", "--resume", str(missing)])


def test_fleet_resume_corrupt_session_file(tmp_path):
    session_dir = tmp_path / "session"
    session_dir.mkdir()
    (session_dir / "session.json").write_text("{\"kind\": \"something-else\"}")
    with pytest.raises(SystemExit, match="cannot resume"):
        main(["fleet", "--resume", str(session_dir)])


def test_fleet_rejects_unknown_consistency_value(capsys):
    with pytest.raises(SystemExit):
        main(["fleet", "--clients", "2", "--consistency", "eventually"])
    assert "invalid choice" in capsys.readouterr().err


def test_fleet_rejects_workers_with_updates():
    with pytest.raises(SystemExit, match="sharded"):
        main(["fleet", "--clients", "2", "--queries", "2", "--objects", "150",
              "--update-rate", "0.5", "--workers", "2"])


def test_fleet_rejects_resume_with_update_flags(tmp_path):
    with pytest.raises(SystemExit, match="--resume"):
        main(["fleet", "--resume", str(tmp_path), "--update-rate", "0.5"])
    with pytest.raises(SystemExit, match="--resume"):
        main(["fleet", "--resume", str(tmp_path), "--consistency", "ttl"])
    with pytest.raises(SystemExit, match="--durable"):
        main(["fleet", "--resume", str(tmp_path), "--durable"])


def test_fleet_halt_and_resume_dynamic(tmp_path, capsys):
    """Halting mid-run now works for updating fleets too."""
    session_dir = str(tmp_path / "session")
    assert main(["fleet", "--clients", "2", "--queries", "4", "--objects",
                 "200", "--update-rate", "0.3", "--consistency", "versioned",
                 "--halt-after", "4", "--session-dir", session_dir]) == 0
    assert "halted after 4" in capsys.readouterr().out
    assert main(["fleet", "--resume", session_dir]) == 0
    output = capsys.readouterr().out
    assert "resumed from" in output
    assert "server updates:" in output


def test_fleet_update_run_reports_server_updates(capsys):
    assert main(["fleet", "--clients", "3", "--queries", "4", "--objects",
                 "200", "--update-rate", "0.2", "--consistency",
                 "versioned"]) == 0
    output = capsys.readouterr().out
    assert "versioned consistency" in output
    assert "server updates:" in output


# --------------------------------------------------------------------------- #
# durability: --durable, persist recover / pack, WAL verify paths
# --------------------------------------------------------------------------- #
DYNAMIC = ["--clients", "2", "--queries", "4", "--objects", "200",
           "--update-rate", "0.3", "--consistency", "versioned"]


def _durable_store(tmp_path, capsys):
    """A store a durable CLI fleet has written WAL commits into."""
    store = str(tmp_path / "server.rpro")
    assert main(["persist", "save-tree", "--out", store] + TINY) == 0
    assert main(["fleet", "--store", store, "--durable"] + DYNAMIC) == 0
    output = capsys.readouterr().out
    assert "durable WAL" in output and "WAL commits" in output
    return store


def test_fleet_durable_requires_dynamic_fleet_and_store(tmp_path):
    store = str(tmp_path / "server.rpro")
    with pytest.raises(SystemExit, match="dynamic"):
        main(["fleet", "--clients", "2", "--queries", "2", "--objects", "150",
              "--store", store, "--durable"])
    with pytest.raises(SystemExit, match="disk store"):
        main(["fleet", "--durable"] + DYNAMIC)


def test_durable_fleet_then_info_verify_pack(tmp_path, capsys):
    store = _durable_store(tmp_path, capsys)
    assert main(["persist", "info", store]) == 0
    output = capsys.readouterr().out
    assert "wal:" in output and "committed record(s)" in output

    assert main(["persist", "verify", store] + TINY) == 0
    output = capsys.readouterr().out
    assert output.startswith("OK") and "WAL clean" in output

    assert main(["persist", "pack", store]) == 0
    output = capsys.readouterr().out
    assert "folded" in output
    assert main(["persist", "info", store]) == 0
    assert "wal: none" in capsys.readouterr().out


def test_persist_recover_truncates_torn_tail(tmp_path, capsys):
    import os
    from repro.storage.wal import wal_path

    store = _durable_store(tmp_path, capsys)
    log = wal_path(store)
    size = os.path.getsize(log)
    with open(log, "r+b") as handle:
        handle.truncate(size - 3)

    assert main(["persist", "verify", store] + TINY) == 0
    output = capsys.readouterr().out
    assert output.startswith("RECOVERABLE") and "torn tail" in output

    assert main(["persist", "recover", store]) == 0
    output = capsys.readouterr().out
    assert "truncated" in output
    assert main(["persist", "verify", store] + TINY) == 0
    assert capsys.readouterr().out.startswith("OK")


def test_persist_recover_corrupt_tail_needs_force(tmp_path, capsys):
    from repro.storage.faults import corrupt_byte
    from repro.storage.wal import scan_wal, wal_path

    store = _durable_store(tmp_path, capsys)
    log = wal_path(store)
    corrupt_byte(log, scan_wal(log).record_ends[0] + 25)

    with pytest.raises(SystemExit, match="VERIFY FAILED"):
        main(["persist", "verify", store] + TINY)
    with pytest.raises(SystemExit, match="force"):
        main(["persist", "recover", store])
    assert main(["persist", "recover", store, "--force"]) == 0
    assert "(forced)" in capsys.readouterr().out


def test_persist_recover_nothing_to_do(tmp_path, capsys):
    store = str(tmp_path / "server.rpro")
    assert main(["persist", "save-tree", "--out", store] + TINY) == 0
    capsys.readouterr()
    assert main(["persist", "recover", store]) == 0
    assert "nothing to recover" in capsys.readouterr().out


def test_persist_pack_without_wal_is_a_noop_rewrite(tmp_path, capsys):
    store = str(tmp_path / "server.rpro")
    assert main(["persist", "save-tree", "--out", store] + TINY) == 0
    capsys.readouterr()
    assert main(["persist", "pack", store]) == 0
    output = capsys.readouterr().out
    assert "0 WAL record(s)" in output
