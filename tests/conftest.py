"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datasets import generate_ne_like, generate_uniform
from repro.geometry import Point, Rect
from repro.rtree import RTree, SizeModel, bulk_load_str
from repro.rtree.entry import ObjectRecord


def make_records(count: int, seed: int = 0, spread: float = 1.0,
                 size_bytes: int = 1000) -> list:
    """Uniform random point-like records with deterministic ids and sizes."""
    rng = random.Random(seed)
    records = []
    for object_id in range(count):
        x, y = rng.random() * spread, rng.random() * spread
        mbr = Rect(x, y, min(1.0, x + 0.002), min(1.0, y + 0.002))
        records.append(ObjectRecord(object_id=object_id, mbr=mbr, size_bytes=size_bytes))
    return records


@pytest.fixture(scope="session")
def small_records():
    """120 deterministic records for index-level tests."""
    return make_records(120, seed=5)


@pytest.fixture(scope="session")
def clustered_records():
    """A small NE-like clustered dataset."""
    return generate_ne_like(400, seed=3)


@pytest.fixture(scope="session")
def small_tree(small_records):
    """A bulk-loaded tree with small fanout (several levels)."""
    return bulk_load_str(small_records, size_model=SizeModel(page_bytes=256))


@pytest.fixture(scope="session")
def clustered_tree(clustered_records):
    """A bulk-loaded tree over the clustered dataset."""
    return bulk_load_str(clustered_records, size_model=SizeModel(page_bytes=512))


@pytest.fixture()
def dynamic_tree(small_records):
    """A dynamically built (insert-by-insert) tree; rebuilt per test."""
    tree = RTree(size_model=SizeModel(page_bytes=256))
    tree.insert_all(small_records)
    return tree
