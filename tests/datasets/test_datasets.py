"""Tests for the synthetic dataset generators and the Zipf size model."""

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    ZipfSizeGenerator,
    generate_ne_like,
    generate_rd_like,
    generate_uniform,
    make_dataset,
)
from repro.geometry import Rect


# --------------------------------------------------------------------------- #
# Zipf sizes
# --------------------------------------------------------------------------- #
def test_zipf_mean_close_to_target():
    generator = ZipfSizeGenerator(mean_bytes=10_240, theta=0.8, rng=random.Random(1))
    samples = generator.sample_many(4_000)
    assert statistics.mean(samples) == pytest.approx(10_240, rel=0.25)


def test_zipf_sizes_are_positive_and_bounded_below():
    generator = ZipfSizeGenerator(mean_bytes=2_000, min_bytes=256, rng=random.Random(2))
    assert all(size >= 256 for size in generator.sample_many(500))


def test_zipf_is_skewed():
    generator = ZipfSizeGenerator(mean_bytes=10_240, theta=0.8, rng=random.Random(3))
    samples = generator.sample_many(2_000)
    assert statistics.median(samples) < statistics.mean(samples) * 1.05
    assert max(samples) > 2 * statistics.mean(samples)


def test_zipf_invalid_parameters():
    with pytest.raises(ValueError):
        ZipfSizeGenerator(mean_bytes=0)
    with pytest.raises(ValueError):
        ZipfSizeGenerator(mean_bytes=100, theta=2.5)


def test_zipf_deterministic_with_seeded_rng():
    a = ZipfSizeGenerator(rng=random.Random(7)).sample_many(50)
    b = ZipfSizeGenerator(rng=random.Random(7)).sample_many(50)
    assert a == b


# --------------------------------------------------------------------------- #
# spatial generators
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("generator", [generate_ne_like, generate_rd_like, generate_uniform])
def test_generators_produce_requested_count_in_unit_square(generator):
    records = generator(300, seed=5)
    assert len(records) == 300
    assert len({r.object_id for r in records}) == 300
    unit = Rect.unit()
    for record in records:
        assert unit.contains(record.mbr)
        assert record.size_bytes > 0


def test_generators_are_deterministic():
    assert [r.mbr for r in generate_ne_like(100, seed=9)] == \
        [r.mbr for r in generate_ne_like(100, seed=9)]
    assert [r.mbr for r in generate_ne_like(100, seed=9)] != \
        [r.mbr for r in generate_ne_like(100, seed=10)]


def test_ne_like_is_clustered_compared_to_uniform():
    """NE-like data concentrates in clusters: nearest-neighbour distances shrink."""
    def mean_nn_distance(records, sample=80):
        rng = random.Random(0)
        picked = rng.sample(records, sample)
        total = 0.0
        for record in picked:
            best = min(record.centroid.distance_to(other.centroid)
                       for other in records if other.object_id != record.object_id)
            total += best
        return total / sample

    clustered = generate_ne_like(600, seed=2)
    uniform = generate_uniform(600, seed=2)
    assert mean_nn_distance(clustered) < mean_nn_distance(uniform)


def test_rd_like_segments_are_elongated_or_thin():
    records = generate_rd_like(200, seed=4)
    sides = [(r.mbr.width, r.mbr.height) for r in records]
    assert all(max(w, h) <= 0.01 for w, h in sides)


def test_make_dataset_factory():
    assert len(make_dataset("NE", 50)) == 50
    assert len(make_dataset("rd", 50)) == 50
    assert len(make_dataset("Uniform", 50)) == 50
    with pytest.raises(ValueError):
        make_dataset("TIGER", 50)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=400))
def test_generator_property_count_and_ids(count):
    records = generate_ne_like(count, seed=1)
    assert sorted(r.object_id for r in records) == list(range(count))


def test_rd_like_never_emits_zero_area_mbrs():
    # The road-walk can produce an axis-aligned (degenerate) step; the
    # generator buffers those slivers to positive area.  Regression for the
    # FLT01 rewrite of the degeneracy test from == 0.0 to <= 0.0.
    records = generate_rd_like(400, seed=5)
    assert all(record.mbr.area() > 0.0 for record in records)
