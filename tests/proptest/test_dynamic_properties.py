"""Property-based differential harness for the dynamic-dataset subsystem.

A seed-deterministic driver interleaves random server-side updates
(insert / delete / modify) with random queries through one proactive
session, under every replacement policy × consistency protocol combination,
and checks after every operation:

(a) **oracle equality** — query results equal a naive linear-scan oracle
    over the *current* object set.  Under ``versioned`` this holds for
    every query (the pre-query handshake makes the cache coherent).  Under
    ``ttl`` it holds whenever the last update is older than one TTL (every
    surviving cache item was shipped after it); under ``none`` it holds
    until the first update.  Outside those windows the baselines are
    *allowed* to be stale — that is what they measure — and the harness
    instead asserts the results are sane (only ids that ever existed).

(b) **never-stale cache** — under ``versioned``, after every query each
    cached item is byte-equal to the live tree: node snapshots' real
    entries appear in the current node with identical MBRs, cached objects
    match the current record, and all hierarchy links mirror the tree.

(c) **digest determinism** — replaying the logged op list against a fresh
    system reproduces the exact ``content_digest`` after every op.

The R-tree's own structural invariants are asserted after every mutation
via :func:`repro.rtree.assert_tree_valid`.

On failure the driver *shrinks*: it greedily removes ops from the logged
list while the failure reproduces, then reports the minimal op list.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest

from repro.core.server import ServerQueryProcessor
from repro.geometry import Point, Rect
from repro.rtree import SizeModel, assert_tree_valid, bulk_load_str
from repro.rtree.entry import ObjectRecord
from repro.sim.config import SimulationConfig
from repro.sim.sessions import ProactiveSession
from repro.updates import DatasetUpdater, make_protocol, oracle_results
from repro.updates.stream import UpdateEvent
from repro.workload.queries import JoinQuery, KNNQuery, RangeQuery
from repro.workload.trace import TraceRecord

POLICIES = ("GRD3", "GRD2", "GRD1", "LRU", "MRU", "FAR")
MODES = ("versioned", "ttl", "none")

INITIAL_OBJECTS = 36
OPS_PER_SEQUENCE = 12
TTL_SECONDS = 6.0          # ops are 1 simulated second apart
CACHE_BYTES = 9_000        # ~8 object payloads: eviction pressure is real
SEQUENCES = 200            # per policy × consistency combo (the full lane)
SMOKE_SEQUENCES = 25       # per combo in the fast (-m "not slow") lane


# --------------------------------------------------------------------------- #
# op generation (pure function of the seed — required for shrinking)
# --------------------------------------------------------------------------- #
def _random_mbr(rng: random.Random) -> Rect:
    x, y = rng.random(), rng.random()
    return Rect(x, y, min(1.0, x + 0.004), min(1.0, y + 0.004))


def make_initial_records(seed: int) -> List[ObjectRecord]:
    """The deterministic time-zero object population of one sequence."""
    rng = random.Random(seed * 7919 + 11)
    return [ObjectRecord(object_id=object_id, mbr=_random_mbr(rng),
                         size_bytes=rng.randint(400, 1600))
            for object_id in range(INITIAL_OBJECTS)]


def generate_ops(seed: int, op_count: int = OPS_PER_SEQUENCE) -> List[Tuple]:
    """A deterministic op list: ("update", event) / ("query", query, position).

    The generator tracks its own view of the live id set, so the list is
    replayable (and shrinkable to subsets: the updater skips no-ops).
    """
    rng = random.Random(seed * 6007 + 23)
    live = set(range(INITIAL_OBJECTS))
    next_id = INITIAL_OBJECTS
    update_index = 0
    ops: List[Tuple] = []
    for _ in range(op_count):
        if rng.random() < 0.30:
            kind = rng.choice(("insert", "delete", "modify"))
            if kind != "insert" and len(live) <= 15:
                kind = "insert"
            if kind == "insert":
                object_id = next_id
                next_id += 1
                live.add(object_id)
                event = UpdateEvent(index=update_index, arrival_time=0.0,
                                    kind="insert", object_id=object_id,
                                    mbr=_random_mbr(rng),
                                    size_bytes=rng.randint(400, 1600))
            else:
                object_id = rng.choice(sorted(live))
                if kind == "delete":
                    live.remove(object_id)
                    event = UpdateEvent(index=update_index, arrival_time=0.0,
                                        kind="delete", object_id=object_id)
                else:
                    event = UpdateEvent(index=update_index, arrival_time=0.0,
                                        kind="modify", object_id=object_id,
                                        mbr=_random_mbr(rng),
                                        size_bytes=rng.randint(400, 1600))
            update_index += 1
            ops.append(("update", event))
            continue
        position = Point(rng.random(), rng.random())
        roll = rng.random()
        if roll < 0.45:
            side = rng.uniform(0.15, 0.35)
            query = RangeQuery(window=Rect.from_center(
                position, side, side).clamped_unit())
        elif roll < 0.80:
            query = KNNQuery(point=position, k=rng.randint(1, 3))
        else:
            query = JoinQuery(window=Rect.from_center(
                position, 0.3, 0.3).clamped_unit(),
                threshold=rng.uniform(0.02, 0.08))
        ops.append(("query", query, position))
    return ops


# --------------------------------------------------------------------------- #
# the system under test
# --------------------------------------------------------------------------- #
def build_system(seed: int, policy: str, consistency: str):
    """One fresh server + updater + proactive session for a sequence."""
    tree = bulk_load_str(make_initial_records(seed),
                         size_model=SizeModel(page_bytes=256))
    config = SimulationConfig.tiny().with_overrides(
        explicit_cache_bytes=CACHE_BYTES, replacement_policy=policy)
    server = ServerQueryProcessor(tree)
    updater = DatasetUpdater(tree, server)
    protocol = make_protocol(consistency, updater=updater,
                             size_model=tree.size_model,
                             ttl_seconds=TTL_SECONDS)
    session = ProactiveSession(tree, config, server=server,
                               replacement_policy=policy,
                               consistency=protocol)
    return tree, updater, session


def assert_cache_fresh(cache, tree) -> None:
    """Invariant (b): every cached item is consistent with the live tree."""
    for key, state in cache.items.items():
        payload = state.payload
        if state.is_index_item:
            assert payload.node_id in tree.store, f"{key}: page gone"
            node = tree.store.peek(payload.node_id)
            assert payload.level == node.level, f"{key}: level changed"
            if state.parent_key is None:
                assert node.parent_id is None, f"{key}: became non-root"
            else:
                assert state.parent_key == f"node:{node.parent_id}", (
                    f"{key}: cached under node:{state.parent_key}, live "
                    f"parent is {node.parent_id}")
            current = {}
            for entry in node.entries:
                ref = (("child", entry.child_id) if entry.child_id is not None
                       else ("object", entry.object_id))
                current[ref] = entry.mbr
            for element in payload.elements.values():
                if element.is_super:
                    continue
                ref = (("child", element.child_id)
                       if element.child_id is not None
                       else ("object", element.object_id))
                assert ref in current, f"{key}: stale entry {ref}"
                assert current[ref] == element.mbr, f"{key}: stale MBR {ref}"
        else:
            record = tree.objects.get(payload.object_id)
            assert record is not None, f"{key}: object deleted"
            assert record.mbr == payload.mbr, f"{key}: object moved"
            assert record.size_bytes == payload.size_bytes, f"{key}: resized"
            if state.parent_key is not None:
                leaf_id = int(state.parent_key.partition(":")[2])
                assert leaf_id in tree.store, f"{key}: owning leaf gone"
                assert any(e.object_id == payload.object_id
                           for e in tree.store.peek(leaf_id).entries), (
                    f"{key}: no longer owned by cached leaf {leaf_id}")


def run_sequence(seed: int, policy: str, consistency: str,
                 ops: Optional[List[Tuple]] = None,
                 check: bool = True) -> List[str]:
    """Execute one op sequence; returns the per-op cache digests.

    ``check=True`` asserts invariants (a) and (b) plus the tree and cache
    structural invariants after every op; ``check=False`` is the bare
    replay used for invariant (c) and for shrinking probes.
    """
    if ops is None:
        ops = generate_ops(seed)
    tree, updater, session = build_system(seed, policy, consistency)
    ever_live = set(tree.objects)
    last_update_at: Optional[float] = None
    digests: List[str] = []
    now = 0.0
    query_index = 0
    for op in ops:
        now += 1.0
        if op[0] == "update":
            event = op[1]
            updater.apply(event)
            ever_live.add(event.object_id)
            last_update_at = now
            if check:
                assert_tree_valid(tree)
        else:
            _, query, position = op
            record = TraceRecord(index=query_index, position=position,
                                 think_time=1.0, query=query,
                                 arrival_time=now)
            query_index += 1
            session.process(record)
            got = set(session.last_result_ids)
            if check:
                want = set(oracle_results(tree.objects, query))
                if consistency == "versioned":
                    assert got == want, (
                        f"versioned results diverge from the oracle: "
                        f"extra={sorted(got - want)} "
                        f"missing={sorted(want - got)}")
                    assert_cache_fresh(session.cache, tree)
                else:
                    assert got <= ever_live, (
                        f"fabricated ids {sorted(got - ever_live)}")
                    quiet = (last_update_at is None
                             or (consistency == "ttl"
                                 and now - last_update_at > TTL_SECONDS))
                    if quiet:
                        assert got == want, (
                            f"{consistency} results stale outside the "
                            f"allowed window: extra={sorted(got - want)} "
                            f"missing={sorted(want - got)}")
                session.cache.validate()
        digests.append(session.cache.content_digest())
    return digests


# --------------------------------------------------------------------------- #
# shrink-on-failure
# --------------------------------------------------------------------------- #
def _fails(seed: int, policy: str, consistency: str, ops: List[Tuple]) -> bool:
    try:
        digests = run_sequence(seed, policy, consistency, ops=ops)
        replay = run_sequence(seed, policy, consistency, ops=ops, check=False)
        return digests != replay
    except AssertionError:
        return True


def _format_ops(ops: List[Tuple]) -> str:
    lines = []
    for op in ops:
        if op[0] == "update":
            lines.append(f"  {op[1]!r}")
        else:
            lines.append(f"  query {op[1]!r} at {op[2]!r}")
    return "\n".join(lines)


def check_sequence(seed: int, policy: str, consistency: str) -> None:
    """Run one sequence with all checks; shrink and re-raise on failure."""
    ops = generate_ops(seed)
    try:
        digests = run_sequence(seed, policy, consistency, ops=ops)
        # Invariant (c): a from-scratch rebuild of the same op sequence
        # reproduces the cache digest after every op.
        replay = run_sequence(seed, policy, consistency, ops=ops, check=False)
        assert digests == replay, "cache digest diverged on replay"
    except AssertionError as error:
        shrunk = list(ops)
        changed = True
        while changed:
            changed = False
            for index in range(len(shrunk)):
                trial = shrunk[:index] + shrunk[index + 1:]
                if trial and _fails(seed, policy, consistency, trial):
                    shrunk = trial
                    changed = True
                    break
        raise AssertionError(
            f"seed={seed} policy={policy} consistency={consistency}: {error}"
            f"\nminimal failing op list ({len(shrunk)} ops):\n"
            f"{_format_ops(shrunk)}") from error


# --------------------------------------------------------------------------- #
# the test matrix
# --------------------------------------------------------------------------- #
COMBOS = [(policy, mode) for policy in POLICIES for mode in MODES]


@pytest.mark.parametrize("policy,consistency", COMBOS,
                         ids=[f"{p}-{m}" for p, m in COMBOS])
def test_random_ops_smoke(policy, consistency):
    """Fast lane: a few dozen sequences per combo."""
    for seed in range(SMOKE_SEQUENCES):
        check_sequence(seed, policy, consistency)


@pytest.mark.slow
@pytest.mark.parametrize("policy,consistency", COMBOS,
                         ids=[f"{p}-{m}" for p, m in COMBOS])
def test_random_ops_full(policy, consistency):
    """Full lane: 200 sequences per combo (the acceptance bar)."""
    for seed in range(SMOKE_SEQUENCES, SEQUENCES):
        check_sequence(seed, policy, consistency)


def test_shrinker_reports_a_minimal_op_list(monkeypatch):
    """When an invariant breaks, the driver shrinks and logs the op list.

    Sabotage the oracle so every query 'fails'; the shrink loop must then
    reduce the sequence to a single op and report it.
    """
    import sys
    module = sys.modules[__name__]
    monkeypatch.setattr(module, "oracle_results",
                        lambda objects, query: [-1])
    with pytest.raises(AssertionError) as excinfo:
        check_sequence(0, "LRU", "versioned")
    message = str(excinfo.value)
    assert "minimal failing op list" in message
    assert "(1 ops)" in message
