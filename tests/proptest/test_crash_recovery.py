"""Property-based crash-recovery harness for the durable write path.

A seed-deterministic driver generates a random server-side update stream
(insert / delete / modify), commits it through the WAL in random-sized
batches against a checkpointed store, then crashes the store at a random
sample of WAL byte offsets — always including every record boundary and
its neighbours — and asserts, for each crash point, that reopening with
``recover=True`` lands exactly on the newest wholly-committed batch:

(a) **oracle equality** — the recovered object set equals a snapshot of
    the live tree taken right after that batch committed;
(b) **structural validity** — :func:`repro.rtree.assert_tree_valid`;
(c) **clean log** — recovery truncated any torn tail, so a rescan shows
    exactly the committed records and nothing after them;
(d) **order fidelity** — full recovery reproduces the live tree's object
    insertion order, not just its content.

On failure the driver *shrinks*: it greedily removes update events from
the stream while the failure reproduces, then reports the minimal stream.
"""

from __future__ import annotations

import random
from itertools import count
from typing import List, Optional

import pytest

from repro.core.server import ServerQueryProcessor
from repro.geometry import Rect
from repro.rtree import SizeModel, bulk_load_str
from repro.rtree.entry import ObjectRecord
from repro.storage.faults import assert_crash_point_recovery
from repro.storage.paged import load_tree, save_tree
from repro.storage.wal import HEADER_SIZE, scan_wal, wal_path
from repro.updates import DatasetUpdater
from repro.updates.stream import UpdateEvent

INITIAL_OBJECTS = 30
EVENTS_PER_SEQUENCE = 14
SAMPLED_OFFSETS = 24       # random crash points per sequence (+ boundaries)
SMOKE_SEQUENCES = 10       # fast (-m "not slow") lane
SEQUENCES = 50             # full lane


# --------------------------------------------------------------------------- #
# stream generation (pure function of the seed — required for shrinking)
# --------------------------------------------------------------------------- #
def _random_mbr(rng: random.Random) -> Rect:
    x, y = rng.random(), rng.random()
    return Rect(x, y, min(1.0, x + 0.004), min(1.0, y + 0.004))


def make_initial_records(seed: int) -> List[ObjectRecord]:
    rng = random.Random(seed * 5077 + 3)
    return [ObjectRecord(object_id=object_id, mbr=_random_mbr(rng),
                         size_bytes=rng.randint(400, 1600))
            for object_id in range(INITIAL_OBJECTS)]


def generate_events(seed: int,
                    event_count: int = EVENTS_PER_SEQUENCE) -> List[UpdateEvent]:
    """A deterministic update stream.

    The generator tracks its own view of the live id set; shrunken subsets
    stay valid because the updater skips no-op events (deleting or
    modifying an id that is not live).
    """
    rng = random.Random(seed * 4091 + 17)
    live = set(range(INITIAL_OBJECTS))
    next_id = INITIAL_OBJECTS
    events: List[UpdateEvent] = []
    for index in range(event_count):
        kind = rng.choice(("insert", "delete", "modify"))
        if kind != "insert" and len(live) <= 10:
            kind = "insert"
        if kind == "insert":
            object_id = next_id
            next_id += 1
            live.add(object_id)
            event = UpdateEvent(index=index, arrival_time=float(index),
                                kind="insert", object_id=object_id,
                                mbr=_random_mbr(rng),
                                size_bytes=rng.randint(400, 1600))
        else:
            object_id = rng.choice(sorted(live))
            if kind == "delete":
                live.remove(object_id)
                event = UpdateEvent(index=index, arrival_time=float(index),
                                    kind="delete", object_id=object_id)
            else:
                event = UpdateEvent(index=index, arrival_time=float(index),
                                    kind="modify", object_id=object_id,
                                    mbr=_random_mbr(rng),
                                    size_bytes=rng.randint(400, 1600))
        events.append(event)
    return events


def batch_size_for(seed: int) -> int:
    return random.Random(seed * 911 + 5).randint(1, 4)


# --------------------------------------------------------------------------- #
# one sequence: build, commit, crash everywhere sampled, recover
# --------------------------------------------------------------------------- #
_dir_counter = count()


def run_crash_sequence(seed: int, base_dir,
                       events: Optional[List[UpdateEvent]] = None) -> int:
    """Execute one crash-recovery sequence; returns crash points checked."""
    if events is None:
        events = generate_events(seed)
    work = base_dir / f"seq-{next(_dir_counter)}"
    work.mkdir()
    store = str(work / "store.rpro")
    tree = bulk_load_str(make_initial_records(seed),
                         size_model=SizeModel(page_bytes=256))
    save_tree(tree, store)

    live = load_tree(store, writable=True)
    updater = DatasetUpdater(live, ServerQueryProcessor(live))
    states = [oracle_state(live)]
    batch = batch_size_for(seed)
    for start in range(0, len(events), batch):
        updater.apply_batch(events[start:start + batch])
        states.append(oracle_state(live))
    live_order = list(live.objects)
    live.store.close()

    # Crash points: every record boundary and its neighbours, plus a
    # random sample of interior offsets.
    scan = scan_wal(wal_path(store))
    assert scan.tail_state == "clean"
    log_size = scan.file_length
    offsets = {0, HEADER_SIZE, log_size}
    for end in scan.record_ends:
        offsets.update((end - 1, end, end + 1))
    rng = random.Random(seed * 31 + 7)
    for _ in range(SAMPLED_OFFSETS):
        offsets.add(rng.randint(HEADER_SIZE, log_size))
    valid = {0} | set(range(HEADER_SIZE, log_size + 1))
    clones = work / "clones"
    clones.mkdir()
    checked = assert_crash_point_recovery(
        store, states, str(clones), offsets=sorted(offsets & valid))

    # Property (d): full recovery reproduces the exact insertion order.
    recovered = load_tree(store, recover=True)
    try:
        assert list(recovered.objects) == live_order, (
            "recovered object order diverges from the live tree")
    finally:
        recovered.store.close()
    return checked


# --------------------------------------------------------------------------- #
# shrink-on-failure
# --------------------------------------------------------------------------- #
def oracle_state(tree) -> dict:
    """Snapshot of the live object table (monkeypatched by the meta-test)."""
    return dict(tree.objects)


def _fails(seed: int, base_dir, events: List[UpdateEvent]) -> bool:
    try:
        run_crash_sequence(seed, base_dir, events=events)
        return False
    except AssertionError:
        return True


def check_sequence(seed: int, base_dir) -> None:
    """Run one sequence; shrink the event stream and re-raise on failure."""
    events = generate_events(seed)
    try:
        run_crash_sequence(seed, base_dir, events=events)
    except AssertionError as error:
        shrunk = list(events)
        changed = True
        while changed:
            changed = False
            for index in range(len(shrunk)):
                trial = shrunk[:index] + shrunk[index + 1:]
                if trial and _fails(seed, base_dir, trial):
                    shrunk = trial
                    changed = True
                    break
        listing = "\n".join(f"  {event!r}" for event in shrunk)
        raise AssertionError(
            f"seed={seed} batch={batch_size_for(seed)}: {error}"
            f"\nminimal failing update stream ({len(shrunk)} events):\n"
            f"{listing}") from error


# --------------------------------------------------------------------------- #
# the test matrix
# --------------------------------------------------------------------------- #
def test_random_crash_recovery_smoke(tmp_path):
    """Fast lane: a handful of random streams × sampled crash points."""
    for seed in range(SMOKE_SEQUENCES):
        check_sequence(seed, tmp_path)


@pytest.mark.slow
def test_random_crash_recovery_full(tmp_path):
    """Full lane: fifty streams (the acceptance bar)."""
    for seed in range(SMOKE_SEQUENCES, SEQUENCES):
        check_sequence(seed, tmp_path)


def test_crash_shrinker_reports_a_minimal_stream(tmp_path, monkeypatch):
    """Sabotage the oracle; the driver must shrink to one event and say so."""
    import sys
    module = sys.modules[__name__]
    monkeypatch.setattr(module, "oracle_state",
                        lambda tree: {-1: ObjectRecord(
                            object_id=-1, mbr=Rect(0, 0, 1, 1),
                            size_bytes=1)})
    with pytest.raises(AssertionError) as excinfo:
        check_sequence(0, tmp_path)
    message = str(excinfo.value)
    assert "minimal failing update stream" in message
    assert "(1 events)" in message
