"""Property-based lane for the router-level partition-result cache.

A seed-deterministic driver interleaves random server-side updates with
random queries through one proactive session against a *sharded* router
with the partition-result cache attached, across both partitioners, and
checks after every operation:

(a) **oracle equality** — under ``versioned`` consistency every query's
    result id set equals a naive linear-scan oracle over the current
    object set, no matter which shards the cache skipped or which facts
    an update batch just invalidated;

(b) **differential identity** — the same op sequence replayed cache-off
    produces the identical per-op result id sets (the cache changes
    routing, never answers);

(c) **digest determinism** — replaying the logged ops against a fresh
    cache-on system reproduces the exact client cache ``content_digest``
    after every op.

On failure the driver shrinks greedily to a minimal failing op list,
mirroring :mod:`tests.proptest.test_dynamic_properties`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.rtree import SizeModel, assert_tree_valid
from repro.sim.config import SimulationConfig
from repro.sim.sessions import ProactiveSession
from repro.sharding import PartitionResultCache, ShardedUpdater
from repro.sharding.partitioner import make_plan
from repro.sharding.router import ShardRouter
from repro.sharding.shard import build_shards
from repro.updates import make_protocol, oracle_results
from repro.workload.trace import TraceRecord

from tests.proptest.test_dynamic_properties import (
    generate_ops,
    make_initial_records,
)

PARTITIONERS = ("grid", "kd")
SHARDS = 3
CACHE_BYTES = 2_048        # small enough that fact eviction happens
SEQUENCES = 120            # per partitioner (the full lane)
SMOKE_SEQUENCES = 20       # per partitioner in the fast lane


def build_cached_system(seed: int, partitioner: str, with_cache: bool):
    """One fresh sharded deployment + updater + proactive session."""
    plan = make_plan(make_initial_records(seed), SHARDS, method=partitioner)
    shards = build_shards(plan, size_model=SizeModel(page_bytes=256))
    router = ShardRouter(shards, plan)
    if with_cache:
        router.attach_result_cache(
            PartitionResultCache(capacity_bytes=CACHE_BYTES))
    updater = ShardedUpdater(router)
    config = SimulationConfig.tiny().with_overrides(
        explicit_cache_bytes=9_000, replacement_policy="GRD3")
    protocol = make_protocol("versioned", updater=updater,
                             size_model=router.size_model)
    session = ProactiveSession(router.tree, config, server=router,
                               replacement_policy="GRD3",
                               consistency=protocol)
    return router, updater, session


def run_cached_sequence(seed: int, partitioner: str,
                        ops: Optional[List[Tuple]] = None,
                        with_cache: bool = True,
                        check: bool = True):
    """Execute one op sequence; returns (per-op digests, per-op result ids)."""
    if ops is None:
        ops = generate_ops(seed)
    router, updater, session = build_cached_system(seed, partitioner,
                                                   with_cache)
    digests: List[str] = []
    results: List[Optional[frozenset]] = []
    now = 0.0
    query_index = 0
    for op in ops:
        now += 1.0
        if op[0] == "update":
            updater.apply(op[1])
            results.append(None)
            if check:
                for shard in router.shards:
                    if not shard.is_empty:
                        assert_tree_valid(shard.tree)
        else:
            _, query, position = op
            record = TraceRecord(index=query_index, position=position,
                                 think_time=1.0, query=query,
                                 arrival_time=now)
            query_index += 1
            session.process(record)
            got = set(session.last_result_ids)
            results.append(frozenset(got))
            if check:
                want = set(oracle_results(router.tree.objects, query))
                assert got == want, (
                    f"cache-on versioned results diverge from the oracle: "
                    f"extra={sorted(got - want)} missing={sorted(want - got)}")
                session.cache.validate()
        digests.append(session.cache.content_digest())
    return digests, results


# --------------------------------------------------------------------------- #
# shrink-on-failure
# --------------------------------------------------------------------------- #
def _fails(seed: int, partitioner: str, ops: List[Tuple]) -> bool:
    try:
        digests, results = run_cached_sequence(seed, partitioner, ops=ops)
        replay, _ = run_cached_sequence(seed, partitioner, ops=ops,
                                        check=False)
        if digests != replay:
            return True
        _, reference = run_cached_sequence(seed, partitioner, ops=ops,
                                           with_cache=False, check=False)
        return results != reference
    except AssertionError:
        return True


def check_cached_sequence(seed: int, partitioner: str) -> None:
    """Run one sequence with all checks; shrink and re-raise on failure."""
    ops = generate_ops(seed)
    try:
        digests, results = run_cached_sequence(seed, partitioner, ops=ops)
        # (c) digest determinism on replay.
        replay, _ = run_cached_sequence(seed, partitioner, ops=ops,
                                        check=False)
        assert digests == replay, "cache-on digest diverged on replay"
        # (b) differential identity against the cache-off twin.
        _, reference = run_cached_sequence(seed, partitioner, ops=ops,
                                           with_cache=False, check=False)
        assert results == reference, "cache-on results diverge from cache-off"
    except AssertionError as error:
        shrunk = list(ops)
        changed = True
        while changed:
            changed = False
            for index in range(len(shrunk)):
                trial = shrunk[:index] + shrunk[index + 1:]
                if trial and _fails(seed, partitioner, trial):
                    shrunk = trial
                    changed = True
                    break
        raise AssertionError(
            f"seed={seed} partitioner={partitioner}: {error}\n"
            f"minimal failing op list ({len(shrunk)} ops):\n"
            + "\n".join(f"  {op!r}" for op in shrunk)) from error


# --------------------------------------------------------------------------- #
# the test matrix
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_cache_on_random_ops_smoke(partitioner):
    """Fast lane: a couple dozen sequences per partitioner."""
    for seed in range(SMOKE_SEQUENCES):
        check_cached_sequence(seed, partitioner)


@pytest.mark.slow
@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_cache_on_random_ops_full(partitioner):
    """Full lane: 120 sequences per partitioner (the acceptance bar)."""
    for seed in range(SMOKE_SEQUENCES, SEQUENCES):
        check_cached_sequence(seed, partitioner)
