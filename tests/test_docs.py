"""Documentation checks: required guides exist, internal links resolve.

This is the test half of the CI ``docs`` job (the other half is the
docstring sweep in ``test_docstrings.py``).  It keeps ``docs/`` honest
without any third-party tooling: every relative markdown link in ``docs/``
and ``README.md`` must point at a file (and, for ``#fragment`` links, at a
heading that exists), and the guides the README promises must be present.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

REQUIRED_GUIDES = ("architecture.md", "replacement-policies.md", "cli.md",
                   "persistence.md", "updates.md", "sharding.md",
                   "networking.md", "observability.md")

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted(DOCS_DIR.glob("*.md")))
    return files


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: pathlib.Path) -> set:
    return {_slugify(match) for match in _HEADING.findall(
        path.read_text(encoding="utf-8"))}


def test_required_guides_exist():
    for name in REQUIRED_GUIDES:
        assert (DOCS_DIR / name).is_file(), f"docs/{name} is missing"


def test_architecture_guide_has_the_layer_diagram():
    text = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
    assert "```mermaid" in text, "architecture.md lost its mermaid layer map"
    for layer in ("geometry", "rtree", "storage", "core", "sharding",
                  "net", "sim", "perf"):
        assert layer in text


def test_cli_guide_covers_every_subcommand():
    from repro.cli import build_parser
    text = (DOCS_DIR / "cli.md").read_text(encoding="utf-8")
    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if action.__class__.__name__ == "_SubParsersAction")
    for command in subparsers.choices:
        assert f"repro {command}" in text, (
            f"docs/cli.md does not document 'repro {command}'")


@pytest.mark.parametrize("path", _markdown_files(),
                         ids=[str(p.relative_to(REPO_ROOT))
                              for p in _markdown_files()])
def test_internal_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target_path, _, fragment = target.partition("#")
        resolved = (path.parent / target_path).resolve() if target_path \
            else path.resolve()
        if target_path and not resolved.exists():
            broken.append(target)
            continue
        if fragment and resolved.suffix == ".md":
            if _slugify(fragment) not in _anchors(resolved):
                broken.append(target)
    assert not broken, f"{path.relative_to(REPO_ROOT)}: broken links {broken}"
