"""Server/client integration over a real loopback socket.

Covers the handshake contract (protocol version and size-model pinning),
the request surface (queries, catalogue, node fetch, BYE ledgers), the
typed error paths, and the concurrency regression the server's serial
dispatcher guarantees: N concurrent sessions produce exactly the
per-session results, digests and byte totals of a serial replay —
including under the versioned consistency protocol.
"""

from __future__ import annotations

import dataclasses
import struct
import tempfile
import threading

import pytest

from repro.net import codec, frames
from repro.net.client import (
    Connection,
    NetValidationService,
    RemoteSessionClient,
)
from repro.net.fleet import make_endpoint
from repro.net.frames import RemoteError
from repro.net.server import ReproServer, ServerThread
from repro.network.channel import WirelessChannel
from repro.rtree.partition_tree import PartitionTree
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_shared_state, generate_trace
from repro.sim.sessions import make_session
from repro.updates import DatasetUpdater, make_protocol
from repro.updates.validation import LocalValidationService


@pytest.fixture(scope="module")
def served():
    """A static server behind a UNIX socket, plus its in-process twin."""
    base = SimulationConfig.scaled(query_count=8, object_count=600)
    shared = build_shared_state(base)
    repro_server = ReproServer(shared.server, shared.size_model)
    with tempfile.TemporaryDirectory(prefix="repro-net-test-") as workdir:
        thread = ServerThread(repro_server, "uds",
                              path=f"{workdir}/server.sock")
        thread.start()
        try:
            yield base, shared, repro_server, thread
        finally:
            thread.stop()
    shared.tree.store.close()


@pytest.fixture(scope="module")
def served_versioned():
    """A dynamic-capable server: validation service wired, no churn yet."""
    base = SimulationConfig.scaled(query_count=8, object_count=600)
    shared = build_shared_state(base)
    updater = DatasetUpdater(shared.tree, shared.server,
                             ground_truth=shared.ground_truth)
    repro_server = ReproServer(shared.server, shared.size_model,
                               validation=LocalValidationService(updater))
    with tempfile.TemporaryDirectory(prefix="repro-net-test-") as workdir:
        thread = ServerThread(repro_server, "uds",
                              path=f"{workdir}/server.sock")
        thread.start()
        try:
            yield base, shared, repro_server, thread
        finally:
            thread.stop()
    shared.tree.store.close()


# --------------------------------------------------------------------------- #
# handshake
# --------------------------------------------------------------------------- #
def test_handshake_ships_the_catalogue(served):
    _, shared, _, thread = served
    client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                 client_name="hs-check")
    try:
        assert client.root_id == shared.server.root_id
        assert client.root_mbr == shared.server.root_mbr
    finally:
        client.close()


def test_size_model_mismatch_is_a_typed_error(served):
    _, shared, _, thread = served
    skewed = dataclasses.replace(shared.size_model,
                                 pointer_bytes=shared.size_model.pointer_bytes
                                 + 4)
    with pytest.raises(RemoteError) as excinfo:
        Connection(make_endpoint(thread), skewed, "hs-skewed", 5.0)
    assert excinfo.value.code == "size-model-mismatch"


def test_protocol_version_mismatch_is_a_typed_error(served):
    _, shared, _, thread = served
    hello = codec.encode_hello("hs-version", shared.size_model)
    futuristic = struct.pack("<H", codec.PROTOCOL_VERSION + 1) + hello[2:]
    sock = make_endpoint(thread).connect(5.0)
    try:
        frames.write_frame_socket(sock, frames.HELLO, futuristic)
        frame_type, payload = frames.read_frame_socket(sock)
        assert frame_type == frames.ERROR
        code, _ = codec.decode_error(payload)
        assert code == "version-mismatch"
    finally:
        sock.close()


def test_first_frame_must_be_hello(served):
    _, _, _, thread = served
    sock = make_endpoint(thread).connect(5.0)
    try:
        frames.write_frame_socket(sock, frames.CATALOG_REQ, b"")
        frame_type, payload = frames.read_frame_socket(sock)
        assert frame_type == frames.ERROR
        assert codec.decode_error(payload)[0] == "bad-hello"
    finally:
        sock.close()


# --------------------------------------------------------------------------- #
# the request surface
# --------------------------------------------------------------------------- #
def test_remote_queries_match_the_in_process_server(served):
    base, shared, _, thread = served
    channel = WirelessChannel()
    client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                 client_name="rq-check", channel=channel)
    try:
        for record in generate_trace(base):
            local = shared.server.execute(record.query)
            remote = client.execute(record.query)
            assert remote.result_object_ids() == local.result_object_ids()
            assert remote.downlink_bytes(shared.size_model) \
                == local.downlink_bytes(shared.size_model)
            assert len(remote.index_snapshots) == len(local.index_snapshots)
        assert channel.uplink_bytes_total > 0
        assert channel.downlink_bytes_total > 0
    finally:
        client.close()


def test_catalogue_refetch_is_free(served):
    _, shared, _, thread = served
    channel = WirelessChannel()
    client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                 client_name="cat-check", channel=channel)
    try:
        assert client.root_id == shared.server.root_id
        client.invalidate_catalog()
        assert client.root_id == shared.server.root_id
        assert (channel.uplink_bytes_total, channel.downlink_bytes_total) \
            == (0, 0)
    finally:
        client.close()


def test_partition_tree_for_fetches_remote_pages(served):
    _, shared, _, thread = served
    client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                 client_name="pt-check")
    try:
        tree = client.partition_tree_for(shared.server.root_id)
        assert isinstance(tree, PartitionTree)
        with pytest.raises(KeyError):
            client.partition_tree_for(10 ** 9)
    finally:
        client.close()


def test_bye_ledger_reconciles_with_the_channel(served):
    base, shared, repro_server, thread = served
    channel = WirelessChannel()
    client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                 client_name="bye-check", channel=channel)
    queries = [record.query for record in generate_trace(base)][:3]
    for query in queries:
        client.execute(query)
    client.close()
    ledger = client.server_ledger()
    assert ledger["queries_served"] == len(queries)
    assert ledger["uplink_bytes"] == channel.uplink_bytes_total
    assert ledger["downlink_bytes"] == channel.downlink_bytes_total
    assert ledger["sync_uplink_bytes"] == 0
    assert ledger["wire_bytes_in"] > 0 and ledger["wire_bytes_out"] > 0
    assert repro_server.final_ledgers["bye-check"]["queries_served"] \
        == len(queries)


# --------------------------------------------------------------------------- #
# typed error paths
# --------------------------------------------------------------------------- #
def test_sync_without_validation_is_a_typed_error(served):
    _, shared, _, thread = served
    client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                 client_name="sync-check")
    try:
        with pytest.raises(RemoteError) as excinfo:
            NetValidationService(client).validate([])
        assert excinfo.value.code == "no-validation"
    finally:
        client.close()


def test_undecodable_query_is_a_typed_error(served):
    _, shared, _, thread = served
    connection = Connection(make_endpoint(thread), shared.size_model,
                            "badq-check", 5.0)
    try:
        with pytest.raises(RemoteError) as excinfo:
            connection.exchange(frames.QUERY, b"\x07garbage")
        assert excinfo.value.code == "bad-query"
    finally:
        connection.close()


def test_non_request_frame_is_a_typed_error(served):
    _, shared, _, thread = served
    connection = Connection(make_endpoint(thread), shared.size_model,
                            "resp-check", 5.0)
    try:
        with pytest.raises(RemoteError) as excinfo:
            connection.exchange(frames.RESPONSE, b"")
        assert excinfo.value.code == "unexpected-frame"
    finally:
        connection.close()


# --------------------------------------------------------------------------- #
# concurrency regression: concurrent sessions == serial replay
# --------------------------------------------------------------------------- #
def _session_trace(base, worker, queries=6):
    config = base.with_overrides(
        query_count=queries,
        mobility_seed=base.mobility_seed + 101 * (worker + 1),
        workload_seed=base.workload_seed + 211 * (worker + 1))
    return config, list(generate_trace(config))


def _run_session(thread, shared, base, worker, barrier=None,
                 versioned=False):
    """One full session; returns (result ids per query, digest, totals)."""
    config, records = _session_trace(base, worker)
    channel = WirelessChannel()
    handle = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                 client_name=f"conc-{worker}",
                                 channel=channel)
    consistency = None
    if versioned:
        consistency = make_protocol("versioned",
                                    size_model=shared.size_model,
                                    service=NetValidationService(handle))
    session = make_session("APRO", shared.tree, config, server=handle,
                           consistency=consistency)
    if barrier is not None:
        barrier.wait()
    results = []
    for record in records:
        session.process(record)
        results.append(sorted(session.last_result_ids))
    digest = session.cache.content_digest()
    handle.close()
    return (results, digest,
            (channel.uplink_bytes_total, channel.downlink_bytes_total))


def _serial_vs_concurrent(served_fixture, versioned):
    base, shared, _, thread = served_fixture
    workers = 4
    serial = [_run_session(thread, shared, base, worker,
                           versioned=versioned)
              for worker in range(workers)]
    concurrent = [None] * workers
    errors = []
    barrier = threading.Barrier(workers)

    def run(worker):
        try:
            concurrent[worker] = _run_session(thread, shared, base, worker,
                                              barrier=barrier,
                                              versioned=versioned)
        except Exception as error:  # surfaced below, not lost in the thread
            errors.append(f"worker {worker}: {error!r}")

    threads = [threading.Thread(target=run, args=(worker,))
               for worker in range(workers)]
    for worker_thread in threads:
        worker_thread.start()
    for worker_thread in threads:
        worker_thread.join()
    assert not errors, errors
    assert concurrent == serial


def test_concurrent_sessions_match_serial_replay(served):
    _serial_vs_concurrent(served, versioned=False)


def test_concurrent_versioned_sessions_match_serial_replay(served_versioned):
    _serial_vs_concurrent(served_versioned, versioned=True)
