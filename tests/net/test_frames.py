"""The frame layer's contract: framing, CRC, and the error taxonomy.

A reader must always be able to tell the three failure shapes apart:

* *clean close* — EOF at a frame boundary (``ConnectionLost``, not torn);
* *torn* — EOF inside a frame, the peer died mid-write
  (``ConnectionLost`` with ``torn=True``);
* *garbled* — bytes arrived but fail magic / type / length / CRC
  validation (``FrameError``).
"""

from __future__ import annotations

import asyncio
import socket
import struct
import zlib

import pytest

from repro.net import frames
from repro.net.frames import (
    ConnectionLost,
    FrameError,
    HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    PayloadReader,
    decode_frame,
    encode_frame,
    read_frame_socket,
    split_header,
    write_frame_socket,
)

ALL_TYPES = sorted(frames.FRAME_NAMES)


# --------------------------------------------------------------------------- #
# encoding and in-memory decoding
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("frame_type", ALL_TYPES)
@pytest.mark.parametrize("payload", [b"", b"x", b"payload-bytes" * 7])
def test_every_frame_type_round_trips(frame_type, payload):
    data = encode_frame(frame_type, payload)
    assert len(data) == HEADER_BYTES + len(payload)
    assert decode_frame(data) == (frame_type, payload)


def test_unknown_frame_type_is_rejected_at_encode_time():
    with pytest.raises(ValueError):
        encode_frame(max(ALL_TYPES) + 1, b"")


def test_oversized_payload_is_rejected_at_encode_time(monkeypatch):
    monkeypatch.setattr(frames, "MAX_PAYLOAD_BYTES", 8)
    with pytest.raises(ValueError):
        encode_frame(frames.QUERY, b"nine bytes")
    assert decode_frame(encode_frame(frames.QUERY, b"8 bytes.")) \
        == (frames.QUERY, b"8 bytes.")


def test_short_header_is_garbled():
    with pytest.raises(FrameError):
        split_header(b"RP\x01")


def test_bad_magic_is_garbled():
    data = bytearray(encode_frame(frames.QUERY, b"abc"))
    data[0] ^= 0xFF
    with pytest.raises(FrameError):
        decode_frame(bytes(data))


def test_unknown_type_on_the_wire_is_garbled():
    header = struct.pack("<2sBII", b"RP", 200, 0, zlib.crc32(b""))
    with pytest.raises(FrameError):
        decode_frame(header)


def test_implausible_length_is_garbled_not_an_allocation():
    header = struct.pack("<2sBII", b"RP", frames.QUERY,
                         MAX_PAYLOAD_BYTES + 1, 0)
    with pytest.raises(FrameError):
        split_header(header)


def test_payload_length_mismatch_is_garbled():
    data = encode_frame(frames.QUERY, b"abcdef")
    with pytest.raises(FrameError):
        decode_frame(data[:-1])


def test_crc_mismatch_is_garbled():
    data = bytearray(encode_frame(frames.QUERY, b"abcdef"))
    data[-1] ^= 0xFF  # damage the payload, keep the header CRC
    with pytest.raises(FrameError):
        decode_frame(bytes(data))


# --------------------------------------------------------------------------- #
# the blocking socket reader (the client side)
# --------------------------------------------------------------------------- #
def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def test_socket_round_trip_counts_wire_bytes():
    left, right = _pair()
    try:
        wire = write_frame_socket(left, frames.RESPONSE, b"hello-wire")
        assert wire == HEADER_BYTES + len(b"hello-wire")
        assert read_frame_socket(right) == (frames.RESPONSE, b"hello-wire")
    finally:
        left.close()
        right.close()


def test_clean_close_is_connection_lost_not_torn():
    left, right = _pair()
    left.close()
    try:
        with pytest.raises(ConnectionLost) as excinfo:
            read_frame_socket(right)
        assert excinfo.value.torn is False
    finally:
        right.close()


def test_eof_inside_header_is_torn():
    left, right = _pair()
    left.sendall(encode_frame(frames.QUERY, b"")[:HEADER_BYTES - 3])
    left.close()
    try:
        with pytest.raises(ConnectionLost) as excinfo:
            read_frame_socket(right)
        assert excinfo.value.torn is True
    finally:
        right.close()


def test_eof_inside_payload_is_torn():
    left, right = _pair()
    left.sendall(encode_frame(frames.QUERY, b"abcdef")[:-2])
    left.close()
    try:
        with pytest.raises(ConnectionLost) as excinfo:
            read_frame_socket(right)
        assert excinfo.value.torn is True
    finally:
        right.close()


def test_garbled_bytes_on_socket_are_frame_error():
    left, right = _pair()
    left.sendall(b"XX" + encode_frame(frames.QUERY, b"abc")[2:])
    try:
        with pytest.raises(FrameError):
            read_frame_socket(right)
    finally:
        left.close()
        right.close()


# --------------------------------------------------------------------------- #
# the asyncio reader (the server side)
# --------------------------------------------------------------------------- #
def _read_fed(*chunks: bytes, eof: bool = True):
    async def main():
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        if eof:
            reader.feed_eof()
        return await frames.read_frame_async(reader)

    return asyncio.run(main())


def test_async_round_trip():
    assert _read_fed(encode_frame(frames.SYNC, b"stamps")) \
        == (frames.SYNC, b"stamps")


def test_async_clean_eof_is_not_torn():
    with pytest.raises(ConnectionLost) as excinfo:
        _read_fed()
    assert excinfo.value.torn is False


def test_async_eof_inside_header_is_torn():
    with pytest.raises(ConnectionLost) as excinfo:
        _read_fed(encode_frame(frames.QUERY, b"")[:4])
    assert excinfo.value.torn is True


def test_async_eof_inside_payload_is_torn():
    with pytest.raises(ConnectionLost) as excinfo:
        _read_fed(encode_frame(frames.QUERY, b"abcdef")[:-1])
    assert excinfo.value.torn is True


def test_async_crc_mismatch_is_garbled():
    data = bytearray(encode_frame(frames.QUERY, b"abcdef"))
    data[-1] ^= 0x01
    with pytest.raises(FrameError):
        _read_fed(bytes(data))


# --------------------------------------------------------------------------- #
# PayloadReader: bounds-checked payload access
# --------------------------------------------------------------------------- #
def test_payload_reader_tracks_remaining():
    reader = PayloadReader(b"\x01\x02\x03\x04")
    assert reader.remaining == 4
    assert reader.read_bytes(3) == b"\x01\x02\x03"
    assert reader.remaining == 1


def test_payload_reader_truncated_unpack_is_frame_error():
    reader = PayloadReader(b"\x01\x02")
    with pytest.raises(FrameError):
        reader.unpack(struct.Struct("<I"))


def test_payload_reader_truncated_bytes_is_frame_error():
    reader = PayloadReader(b"ab")
    with pytest.raises(FrameError):
        reader.read_bytes(3)


def test_payload_reader_negative_read_is_frame_error():
    reader = PayloadReader(b"abcd")
    with pytest.raises(FrameError):
        reader.read_bytes(-1)


def test_payload_reader_trailing_bytes_are_frame_error():
    reader = PayloadReader(b"\x01\x02")
    reader.read_bytes(1)
    with pytest.raises(FrameError):
        reader.expect_end()
    reader.read_bytes(1)
    reader.expect_end()  # fully consumed: fine
