"""Property-based round trips for every frame payload codec.

Seed-deterministic drivers (same idiom as ``tests/proptest``): for each
seed a randomized payload object is built, encoded, decoded, and
re-encoded — the re-encoding must reproduce the byte string exactly, so
decoded values carry no hidden loss.  The rejection half of the battery
feeds every codec truncated prefixes, trailing garbage, and single-byte
damage (via :func:`repro.storage.faults.corrupt_byte`, the same helper
the storage fault suite uses) and demands a typed ``FrameError`` — never
an uncaught ``struct.error``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.items import (
    CacheEntry,
    CachedIndexNode,
    FrontierTarget,
    TargetKind,
)
from repro.core.remainder import RemainderQuery
from repro.core.server import IndexNodeSnapshot, ObjectDelivery, ServerResponse
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy
from repro.geometry import Point, Rect
from repro.net import codec, frames
from repro.net.frames import FrameError, PayloadReader
from repro.rtree.entry import ObjectRecord
from repro.rtree.sizes import SizeModel
from repro.storage.faults import corrupt_byte
from repro.updates.validation import (
    DROP,
    REFRESH,
    VALID,
    ValidationStamp,
    ValidationVerdict,
)
from repro.workload.queries import JoinQuery, KNNQuery, RangeQuery

SEEDS = range(12)


# --------------------------------------------------------------------------- #
# randomized payload builders
# --------------------------------------------------------------------------- #
def _rect(rng: random.Random) -> Rect:
    xs = sorted(rng.uniform(0.0, 1.0) for _ in range(2))
    ys = sorted(rng.uniform(0.0, 1.0) for _ in range(2))
    return Rect(xs[0], ys[0], xs[1], ys[1])


def _code(rng: random.Random) -> str:
    return "".join(rng.choice("01") for _ in range(rng.randint(0, 8)))


def _query(rng: random.Random):
    kind = rng.randrange(3)
    if kind == 0:
        return RangeQuery(window=_rect(rng))
    if kind == 1:
        return KNNQuery(point=Point(rng.uniform(0, 1), rng.uniform(0, 1)),
                        k=rng.randint(1, 50))
    return JoinQuery(window=_rect(rng), threshold=rng.uniform(0.0, 0.2))


def _target(rng: random.Random) -> FrontierTarget:
    kind = rng.choice((TargetKind.NODE, TargetKind.OBJECT, TargetKind.SUPER))
    return FrontierTarget(
        kind=kind, mbr=_rect(rng), priority=rng.uniform(0.0, 10.0),
        node_id=rng.randrange(1 << 32) if rng.random() < 0.5 else None,
        object_id=rng.randrange(1 << 32) if rng.random() < 0.5 else None,
        code=_code(rng),
        parent_node_id=rng.randrange(1 << 20) if rng.random() < 0.5 else None,
        confirm_only=rng.random() < 0.3)


def _remainder(rng: random.Random, query) -> RemainderQuery:
    frontier = []
    for _ in range(rng.randint(0, 6)):
        width = rng.choice((1, 2))
        frontier.append(tuple(_target(rng) for _ in range(width)))
    return RemainderQuery(
        query=query, frontier=frontier,
        k_remaining=rng.randint(0, 40) if rng.random() < 0.5 else None,
        reported_fmr=rng.uniform(0.0, 1.0) if rng.random() < 0.5 else None)


def _policy(rng: random.Random) -> SupportingIndexPolicy:
    return SupportingIndexPolicy(
        form=rng.choice((IndexForm.FULL, IndexForm.COMPACT,
                         IndexForm.ADAPTIVE)),
        depth=rng.randint(0, 6), max_depth=rng.randint(0, 9))


def _entry(rng: random.Random, code: str) -> CacheEntry:
    kind = rng.randrange(3)
    if kind == 0:
        return CacheEntry(mbr=_rect(rng), code=code)
    if kind == 1:
        return CacheEntry(mbr=_rect(rng), code=code,
                          child_id=rng.randrange(1 << 40))
    return CacheEntry(mbr=_rect(rng), code=code,
                      object_id=rng.randrange(1 << 40))


def _unique_codes(rng: random.Random, count: int) -> list:
    codes = set()
    while len(codes) < count:
        codes.add(_code(rng) + str(len(codes)))
    return sorted(codes, key=lambda code: rng.random())


def _record(rng: random.Random) -> ObjectRecord:
    return ObjectRecord(object_id=rng.randrange(1 << 40), mbr=_rect(rng),
                        size_bytes=rng.randint(0, 1 << 20))


def _snapshot(rng: random.Random) -> IndexNodeSnapshot:
    count = rng.randint(0, 5)
    return IndexNodeSnapshot(
        node_id=rng.randrange(1 << 32), level=rng.randint(0, 8),
        parent_id=rng.randrange(1 << 32) if rng.random() < 0.7 else None,
        elements=[_entry(rng, code)
                  for code in _unique_codes(rng, count)])


def _response(rng: random.Random) -> ServerResponse:
    deliveries = [
        ObjectDelivery(record=_record(rng),
                       parent_node_id=(rng.randrange(1 << 32)
                                       if rng.random() < 0.8 else None),
                       confirm_only=rng.random() < 0.3)
        for _ in range(rng.randint(0, 6))]
    return ServerResponse(
        deliveries=deliveries,
        index_snapshots=[_snapshot(rng) for _ in range(rng.randint(0, 4))],
        accessed_node_count=rng.randint(0, 500),
        examined_elements=rng.randint(0, 5000),
        cpu_seconds=rng.uniform(0.0, 0.5))


def _cached_node(rng: random.Random) -> CachedIndexNode:
    codes = _unique_codes(rng, rng.randint(1, 5))
    return CachedIndexNode(
        node_id=rng.randrange(1 << 32), level=rng.randint(0, 8),
        elements={code: _entry(rng, code) for code in codes})


def _stamps(rng: random.Random) -> list:
    return [ValidationStamp(
        is_node=rng.random() < 0.5, item_id=rng.randrange(1 << 40),
        cached_version=rng.randrange(1 << 32),
        parent_id=rng.randrange(1 << 32) if rng.random() < 0.7 else None)
        for _ in range(rng.randint(0, 8))]


def _verdicts(rng: random.Random) -> list:
    verdicts = []
    for _ in range(rng.randint(0, 8)):
        action = rng.choice((VALID, DROP, REFRESH))
        if action != REFRESH:
            verdicts.append(ValidationVerdict(action=action))
        elif rng.random() < 0.5:
            verdicts.append(ValidationVerdict(
                action=REFRESH, version=rng.randrange(1 << 32),
                node=_cached_node(rng), is_leaf=rng.random() < 0.5))
        else:
            verdicts.append(ValidationVerdict(
                action=REFRESH, version=rng.randrange(1 << 32),
                record=_record(rng)))
    return verdicts


def _size_model(rng: random.Random) -> SizeModel:
    return SizeModel(page_bytes=rng.randint(512, 65536),
                     coordinate_bytes=rng.choice((4, 8)),
                     pointer_bytes=rng.choice((4, 8)),
                     query_header_bytes=rng.randint(1, 64),
                     object_id_bytes=rng.choice((4, 8)))


def _ledger(rng: random.Random) -> dict:
    return {field: rng.randrange(1 << 40) for field in codec.LEDGER_FIELDS}


# --------------------------------------------------------------------------- #
# every frame payload: encode → decode → re-encode identity
# --------------------------------------------------------------------------- #
def _families(seed: int):
    """(name, payload bytes, decode, re-encode) for every frame payload."""
    rng = random.Random(seed)
    query = _query(rng)
    remainder = _remainder(rng, query)
    policy = _policy(rng)
    response = _response(rng)
    stamps = _stamps(rng)
    verdicts = _verdicts(rng)
    model = _size_model(rng)
    name = rng.choice(("client-7", "wörker-Δ", ""))
    root_id, root_mbr = rng.randrange(1 << 32), _rect(rng)
    node_versions = {rng.randrange(1 << 32): rng.randrange(1 << 32)
                     for _ in range(rng.randint(0, 5))}
    object_versions = {rng.randrange(1 << 32): rng.randrange(1 << 32)
                      for _ in range(rng.randint(0, 5))}
    page = bytes(rng.randrange(256) for _ in range(rng.randint(0, 64)))
    ledger = _ledger(rng)
    applied = rng.randrange(1 << 40)

    def redo_query(decoded):
        return codec.encode_query_request(*decoded)

    def redo_response(decoded):
        got, got_root, got_mbr = decoded
        return codec.encode_response(got, got_root, got_mbr)

    def redo_sync_ack(decoded):
        got, got_root, got_mbr = decoded
        return codec.encode_sync_ack(got, got_root, got_mbr)

    def redo_versions_ack(decoded):
        nodes, objects = decoded
        return codec.encode_versions_ack(nodes, objects,
                                         list(nodes), list(objects))

    return [
        ("hello", codec.encode_hello(name, model), codec.decode_hello,
         lambda decoded: codec.encode_hello(decoded[1],
                                            SizeModel(*decoded[2]))),
        ("hello_ack",
         codec.encode_hello_ack(root_id, root_mbr, rng.random() < 0.5),
         codec.decode_hello_ack,
         lambda decoded: codec.encode_hello_ack(*decoded)),
        ("query", codec.encode_query_request(query, remainder, policy),
         codec.decode_query_request, redo_query),
        ("query_bare", codec.encode_query_request(query, None, None),
         codec.decode_query_request, redo_query),
        ("response", codec.encode_response(response, root_id, root_mbr),
         codec.decode_response, redo_response),
        ("sync", codec.encode_sync_request(stamps),
         codec.decode_sync_request, codec.encode_sync_request),
        ("sync_ack", codec.encode_sync_ack(verdicts, root_id, root_mbr),
         codec.decode_sync_ack, redo_sync_ack),
        ("sync_done", codec.encode_sync_done(applied),
         codec.decode_sync_done, codec.encode_sync_done),
        ("versions", codec.encode_versions_request(
            sorted(node_versions), sorted(object_versions)),
         codec.decode_versions_request,
         lambda decoded: codec.encode_versions_request(*decoded)),
        ("versions_ack", codec.encode_versions_ack(
            node_versions, object_versions,
            list(node_versions), list(object_versions)),
         codec.decode_versions_ack, redo_versions_ack),
        ("node_req", codec.encode_node_request(rng.randrange(1 << 32)),
         codec.decode_node_request, codec.encode_node_request),
        ("node_ack", codec.encode_node_ack(page),
         codec.decode_node_ack, codec.encode_node_ack),
        ("node_ack_missing", codec.encode_node_ack(None),
         codec.decode_node_ack, codec.encode_node_ack),
        ("catalog_ack", codec.encode_catalog(root_id, root_mbr),
         codec.decode_catalog_ack,
         lambda decoded: codec.encode_catalog(*decoded)),
        ("error", codec.encode_error("some-code", "what happened: ünïcode"),
         codec.decode_error, lambda decoded: codec.encode_error(*decoded)),
        ("bye_ack", codec.encode_bye_ack(ledger),
         codec.decode_bye_ack, codec.encode_bye_ack),
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_every_payload_family_reencodes_identically(seed):
    for name, payload, decode, reencode in _families(seed):
        decoded = decode(payload)
        assert reencode(decoded) == payload, name


@pytest.mark.parametrize("seed", SEEDS)
def test_every_strict_prefix_is_rejected(seed):
    rng = random.Random(seed * 31 + 7)
    for name, payload, decode, _ in _families(seed):
        if not payload:
            continue
        cuts = range(len(payload)) if len(payload) <= 200 else \
            sorted(rng.sample(range(len(payload)), 60))
        for cut in cuts:
            with pytest.raises(FrameError):
                decode(payload[:cut])


@pytest.mark.parametrize("seed", SEEDS)
def test_trailing_garbage_is_rejected(seed):
    for name, payload, decode, _ in _families(seed):
        with pytest.raises(FrameError):
            decode(payload + b"\x00")


# --------------------------------------------------------------------------- #
# single-byte damage: every flip of a framed message is a FrameError
# --------------------------------------------------------------------------- #
def test_corrupt_byte_sweep_over_a_framed_query(tmp_path):
    """``corrupt_byte`` damage at *every* offset is caught by the frame.

    The magic, type, and length fields fail structural validation; any
    payload or CRC damage fails the CRC check — there is no offset where
    a flipped byte decodes silently.
    """
    rng = random.Random(42)
    payload = codec.encode_query_request(_query(rng), None, None)
    data = frames.encode_frame(frames.QUERY, payload)
    for offset in range(len(data)):
        path = tmp_path / f"frame-{offset}.bin"
        path.write_bytes(data)
        corrupt_byte(str(path), offset)
        damaged = path.read_bytes()
        assert damaged != data
        with pytest.raises(FrameError):
            frames.decode_frame(damaged)
    # The pristine bytes still decode: the sweep damaged copies only.
    assert frames.decode_frame(data) == (frames.QUERY, payload)


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_byte_sampled_sweep_over_every_family(seed, tmp_path):
    rng = random.Random(seed * 17 + 3)
    for name, payload, _, _ in _families(seed):
        data = frames.encode_frame(frames.ERROR, payload)
        offsets = rng.sample(range(len(data)), min(8, len(data)))
        for offset in offsets:
            path = tmp_path / f"{name}-{offset}.bin"
            path.write_bytes(data)
            corrupt_byte(str(path), offset)
            with pytest.raises(FrameError):
                frames.decode_frame(path.read_bytes())


# --------------------------------------------------------------------------- #
# targeted semantic rejections (valid frames, poisoned field values)
# --------------------------------------------------------------------------- #
def _poisoned(payload: bytes, offset: int, value: int) -> bytes:
    data = bytearray(payload)
    data[offset] = value
    return bytes(data)


def test_unknown_query_kind_is_rejected():
    payload = codec.encode_query_request(RangeQuery(window=Rect(0, 0, 1, 1)),
                                         None, None)
    with pytest.raises(FrameError):
        codec.decode_query_request(_poisoned(payload, 0, 9))


def test_nonpositive_knn_k_is_rejected():
    reader = PayloadReader(codec.encode_query(
        KNNQuery(point=Point(0.5, 0.5), k=3))[:-8] + (0).to_bytes(8, "little"))
    with pytest.raises(FrameError):
        codec.read_query(reader)


def test_bad_presence_flag_is_rejected():
    payload = codec.encode_node_ack(None)
    with pytest.raises(FrameError):
        codec.decode_node_ack(_poisoned(payload, 0, 2))


def test_bad_boolean_flag_is_rejected():
    payload = codec.encode_hello_ack(1, Rect(0, 0, 1, 1), True)
    with pytest.raises(FrameError):
        codec.decode_hello_ack(_poisoned(payload, len(payload) - 1, 7))


def test_implausible_count_is_rejected_before_allocation():
    payload = codec.encode_sync_request([])
    with pytest.raises(FrameError):
        codec.decode_sync_request(_poisoned(payload, 3, 0xFF))


def test_unknown_verdict_action_is_rejected():
    payload = codec.encode_sync_ack([ValidationVerdict(action=VALID)],
                                    1, Rect(0, 0, 1, 1))
    with pytest.raises(FrameError):
        codec.decode_sync_ack(_poisoned(payload, len(payload) - 1, 9))


def test_bad_frontier_width_is_rejected():
    rng = random.Random(1)
    query = RangeQuery(window=Rect(0, 0, 1, 1))
    remainder = RemainderQuery(query=query, frontier=[(_target(rng),)])
    payload = codec.encode_query_request(query, remainder, None)
    # The width byte sits right after the query (33 bytes), the remainder
    # presence flag, and the frontier count.
    width_offset = 33 + 1 + 4
    assert payload[width_offset] == 1
    with pytest.raises(FrameError):
        codec.decode_query_request(_poisoned(payload, width_offset, 3))


def test_garbled_utf8_string_is_rejected():
    payload = codec.encode_error("ab", "cd")
    with pytest.raises(FrameError):
        codec.decode_error(_poisoned(payload, 2, 0xFF))
