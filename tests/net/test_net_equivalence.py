"""The loopback deployment's equivalence contract.

A fleet served over a real socket (UDS or TCP) must be **byte-identical**
to the in-process fleet: every deterministic per-query cost field, every
final cache digest, every cache byte count — for static fleets, for all
three consistency modes under churn, and for sharded fleets.  On top of
the cost identity, every client's ``WirelessChannel`` totals must
reconcile *exactly* with the server's per-connection ledgers
(``net_summary``).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.fleet import default_fleet, run_fleet

ALL_TRANSPORTS = ("uds", "tcp")


def _small_fleet(policy="GRD3", queries=10, objects=800, clients=4):
    base = SimulationConfig.scaled(query_count=queries, object_count=objects
                                   ).with_overrides(replacement_policy=policy)
    return default_fleet(clients, base=base)


def _deterministic_cost(cost):
    return (cost.query_index, cost.query_type, cost.uplink_bytes,
            cost.downlink_bytes, cost.downloaded_result_bytes,
            cost.confirmed_cached_bytes, cost.index_downlink_bytes,
            cost.result_bytes, cost.cached_result_bytes, cost.saved_bytes,
            cost.contacted_server, cost.server_page_reads,
            cost.sync_uplink_bytes, cost.sync_downlink_bytes,
            cost.refreshed_items, cost.invalidated_items, cost.response_time)


def _assert_byte_identical(reference, networked):
    for ref_client, net_client in zip(reference.clients, networked.clients):
        assert ([_deterministic_cost(cost) for cost in ref_client.costs]
                == [_deterministic_cost(cost) for cost in net_client.costs])
        assert ref_client.final_cache_digest == net_client.final_cache_digest
        assert ref_client.final_cache_used_bytes \
            == net_client.final_cache_used_bytes


def _assert_reconciled(networked, transport, clients):
    summary = networked.net_summary
    assert summary is not None
    assert summary["transport"] == transport
    assert summary["all_reconciled"] is True
    assert len(summary["clients"]) == clients
    for entry in summary["clients"]:
        assert entry["reconciled"] is True
        assert entry["retries"] == 0
        assert entry["client_uplink_bytes"] == entry["server_uplink_bytes"]
        assert entry["client_downlink_bytes"] \
            == entry["server_downlink_bytes"]
        assert entry["queries_served"] > 0
        # Raw wire bytes exist but never enter the modelled accounting.
        assert entry["wire_bytes_to_server"] > entry["client_uplink_bytes"] \
            or entry["wire_bytes_to_server"] > 0


def _networked(fleet, transport):
    return run_fleet(dataclasses.replace(fleet, transport=transport))


# --------------------------------------------------------------------------- #
# static fleets
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("transport", ALL_TRANSPORTS)
@pytest.mark.parametrize("policy", ["GRD3", "LRU"])
def test_static_fleet_is_byte_identical(transport, policy):
    fleet = _small_fleet(policy=policy)
    reference = run_fleet(fleet)
    networked = _networked(fleet, transport)
    _assert_byte_identical(reference, networked)
    _assert_reconciled(networked, transport, clients=4)
    assert reference.net_summary is None


# --------------------------------------------------------------------------- #
# dynamic fleets: all three consistency modes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("consistency", ["versioned", "ttl", "none"])
def test_dynamic_fleet_is_byte_identical_over_uds(consistency):
    fleet = dataclasses.replace(_small_fleet(), update_rate=0.05,
                                consistency=consistency)
    reference = run_fleet(fleet)
    networked = _networked(fleet, "uds")
    _assert_byte_identical(reference, networked)
    _assert_reconciled(networked, "uds", clients=4)
    assert reference.update_summary == networked.update_summary


def test_dynamic_versioned_fleet_is_byte_identical_over_tcp():
    fleet = dataclasses.replace(_small_fleet(), update_rate=0.05,
                                consistency="versioned")
    reference = run_fleet(fleet)
    networked = _networked(fleet, "tcp")
    _assert_byte_identical(reference, networked)
    _assert_reconciled(networked, "tcp", clients=4)


def test_versioned_sync_traffic_lands_in_the_ledger():
    """Under churn the handshake bytes show up on both sides and agree."""
    fleet = dataclasses.replace(_small_fleet(), update_rate=0.1,
                                consistency="versioned")
    networked = _networked(fleet, "uds")
    sync_uplink = sum(cost.sync_uplink_bytes for client in networked.clients
                      for cost in client.costs)
    assert sync_uplink > 0
    client_uplink = sum(entry["client_uplink_bytes"]
                        for entry in networked.net_summary["clients"])
    plain_uplink = sum(cost.uplink_bytes - cost.sync_uplink_bytes
                      for client in networked.clients
                      for cost in client.costs)
    assert client_uplink == plain_uplink + sync_uplink


# --------------------------------------------------------------------------- #
# sharded fleets behind the wire
# --------------------------------------------------------------------------- #
def test_sharded_fleet_is_byte_identical_over_uds():
    fleet = dataclasses.replace(_small_fleet(), shards=2)
    reference = run_fleet(fleet)
    networked = _networked(fleet, "uds")
    _assert_byte_identical(reference, networked)
    _assert_reconciled(networked, "uds", clients=4)
    assert networked.shard_summary["shards"] == 2
    assert reference.shard_summary["queries_routed"] \
        == networked.shard_summary["queries_routed"]


def test_sharded_versioned_fleet_is_byte_identical_over_uds():
    fleet = dataclasses.replace(_small_fleet(), shards=2, update_rate=0.05,
                                consistency="versioned")
    reference = run_fleet(fleet)
    networked = _networked(fleet, "uds")
    _assert_byte_identical(reference, networked)
    _assert_reconciled(networked, "uds", clients=4)
    assert reference.update_summary == networked.update_summary


# --------------------------------------------------------------------------- #
# config guard rails
# --------------------------------------------------------------------------- #
def test_unknown_transport_is_rejected():
    fleet = _small_fleet()
    with pytest.raises(ValueError, match="transport"):
        dataclasses.replace(fleet, transport="carrier-pigeon")


def test_networked_fleet_rejects_parallel_workers():
    fleet = dataclasses.replace(_small_fleet(), transport="uds")
    with pytest.raises(ValueError, match="serial"):
        run_fleet(fleet, max_workers=2)


def test_networked_fleet_rejects_disk_stores(tmp_path):
    fleet = dataclasses.replace(_small_fleet(), transport="uds")
    with pytest.raises(ValueError, match="inproc"):
        run_fleet(fleet, store_path=str(tmp_path / "pages.db"))
