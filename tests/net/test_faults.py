"""The client pool's fault battery: kills, torn frames, garbled frames.

Every failure must surface as a typed :mod:`repro.net.frames` error or a
successful retry, and an acknowledged query must never be double-billed:
the channel bills only decoded responses, the server ledgers only shipped
ones, and the two reconcile exactly even across a retry.
"""

from __future__ import annotations

import contextlib
import os
import socket
import tempfile
import threading

import pytest

from repro.geometry import Rect
from repro.net import codec, frames
from repro.net.client import Endpoint, RemoteSessionClient
from repro.net.fleet import make_endpoint
from repro.net.frames import ConnectionLost, FrameError
from repro.net.server import ReproServer, ServerThread
from repro.network.channel import WirelessChannel
from repro.rtree.sizes import SizeModel
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_shared_state, generate_trace
from repro.workload.queries import RangeQuery


@pytest.fixture(scope="module")
def shared_state():
    base = SimulationConfig.scaled(query_count=6, object_count=500)
    shared = build_shared_state(base)
    try:
        yield base, shared
    finally:
        shared.tree.store.close()


def _queries(base, count):
    return [record.query for record in generate_trace(base)][:count]


# --------------------------------------------------------------------------- #
# a server that was never there
# --------------------------------------------------------------------------- #
def test_dead_endpoint_is_a_typed_error(tmp_path):
    endpoint = Endpoint(transport="uds", path=str(tmp_path / "nobody.sock"))
    channel = WirelessChannel()
    client = RemoteSessionClient(endpoint, SizeModel(), channel=channel)
    with pytest.raises(ConnectionLost):
        client.execute(RangeQuery(window=Rect(0, 0, 1, 1)))
    assert client.retries == 1  # the dial itself was retried once
    assert (channel.uplink_bytes_total, channel.downlink_bytes_total) == (0, 0)


# --------------------------------------------------------------------------- #
# server killed between queries, then restarted: reconnect and resume
# --------------------------------------------------------------------------- #
def test_killed_server_surfaces_then_reconnect_resumes(shared_state):
    base, shared = shared_state
    first, second = _queries(base, 2)
    with tempfile.TemporaryDirectory(prefix="repro-net-kill-") as workdir:
        path = f"{workdir}/server.sock"
        thread = ServerThread(ReproServer(shared.server, shared.size_model),
                              "uds", path=path)
        thread.start()
        channel = WirelessChannel()
        client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                     channel=channel)
        try:
            survivor = client.execute(first)
            thread.stop()
            with contextlib.suppress(FileNotFoundError):
                os.unlink(path)
            with pytest.raises(ConnectionLost):
                client.execute(second)
            billed_after_kill = (channel.uplink_bytes_total,
                                 channel.downlink_bytes_total)

            revived = ServerThread(
                ReproServer(shared.server, shared.size_model), "uds",
                path=path)
            revived.start()
            try:
                resumed = client.execute(second)
            finally:
                client.close()
                revived.stop()
        finally:
            thread.stop()

    # The failed attempt billed nothing; only the two decoded responses did.
    clean_channel = _clean_totals(shared, [first, second])
    assert survivor.result_object_ids() \
        == shared.server.execute(first).result_object_ids()
    assert resumed.result_object_ids() \
        == shared.server.execute(second).result_object_ids()
    assert billed_after_kill \
        == (first.descriptor_bytes(shared.size_model),
            shared.server.execute(first).downlink_bytes(shared.size_model))
    assert (channel.uplink_bytes_total,
            channel.downlink_bytes_total) == clean_channel


def _clean_totals(shared, queries):
    """Channel totals of a fault-free run over the same queries."""
    with tempfile.TemporaryDirectory(prefix="repro-net-clean-") as workdir:
        thread = ServerThread(ReproServer(shared.server, shared.size_model),
                              "uds", path=f"{workdir}/server.sock")
        thread.start()
        channel = WirelessChannel()
        client = RemoteSessionClient(make_endpoint(thread), shared.size_model,
                                     channel=channel)
        try:
            for query in queries:
                client.execute(query)
        finally:
            client.close()
            thread.stop()
    return channel.uplink_bytes_total, channel.downlink_bytes_total


# --------------------------------------------------------------------------- #
# a response torn mid-frame: retry on a fresh connection, bill once
# --------------------------------------------------------------------------- #
class _ChokeProxy:
    """TCP proxy that cuts server→client mid-frame on the first connection.

    The first proxied connection forwards only ``cut_after`` bytes from
    the server before closing both sides — enough for the HELLO_ACK, not
    for the first RESPONSE, so the client sees a *torn* frame.  Every
    later connection is forwarded untouched.
    """

    def __init__(self, target_host: str, target_port: int,
                 cut_after: int) -> None:
        self._target = (target_host, target_port)
        self._budget = cut_after
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self) -> None:
        while True:
            try:
                client_side, _ = self._listener.accept()
            except OSError:
                return
            budget, self._budget = self._budget, None
            upstream = socket.create_connection(self._target)
            threading.Thread(target=self._pump,
                             args=(client_side, upstream, None),
                             daemon=True).start()
            threading.Thread(target=self._pump,
                             args=(upstream, client_side, budget),
                             daemon=True).start()

    @staticmethod
    def _pump(source: socket.socket, sink: socket.socket,
              budget) -> None:
        sent = 0
        try:
            while True:
                chunk = source.recv(4096)
                if not chunk:
                    break
                if budget is not None and sent + len(chunk) > budget:
                    sink.sendall(chunk[:budget - sent])
                    break
                sink.sendall(chunk)
                sent += len(chunk)
        except OSError:
            pass
        # shutdown (not just close) so a peer blocked in recv sees EOF
        # immediately — that is the torn frame the client must observe.
        for sock in (source, sink):
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()

    def close(self) -> None:
        self._listener.close()


def test_torn_response_retries_once_and_bills_once(shared_state):
    base, shared = shared_state
    (query,) = _queries(base, 1)
    hello_ack_wire = frames.HEADER_BYTES + len(codec.encode_hello_ack(
        shared.server.root_id, shared.server.root_mbr, False))
    thread = ServerThread(ReproServer(shared.server, shared.size_model),
                          "tcp")
    thread.start()
    proxy = _ChokeProxy(thread.host, thread.port,
                        cut_after=hello_ack_wire + 8)
    channel = WirelessChannel()
    client = RemoteSessionClient(
        Endpoint(transport="tcp", host="127.0.0.1", port=proxy.port),
        shared.size_model, channel=channel)
    try:
        response = client.execute(query)
    finally:
        client.close()
        proxy.close()
        thread.stop()

    local = shared.server.execute(query)
    assert response.result_object_ids() == local.result_object_ids()
    assert client.retries == 1
    # Billed exactly once, on the decoded retry — never for the torn try.
    assert channel.uplink_bytes_total \
        == query.descriptor_bytes(shared.size_model)
    assert channel.downlink_bytes_total \
        == local.downlink_bytes(shared.size_model)
    # The BYE ledger covers only the surviving connection and reconciles:
    # the torn connection acknowledged nothing on either side.
    ledger = client.server_ledger()
    assert ledger["queries_served"] == 1
    assert ledger["uplink_bytes"] == channel.uplink_bytes_total
    assert ledger["downlink_bytes"] == channel.downlink_bytes_total


# --------------------------------------------------------------------------- #
# a garbled response: typed error, no retry, nothing billed
# --------------------------------------------------------------------------- #
def _fake_server(respond):
    """A raw-socket server that handshakes, then hands off to ``respond``."""
    listener = socket.create_server(("127.0.0.1", 0))

    def serve() -> None:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            try:
                frame_type, _ = frames.read_frame_socket(conn)
                assert frame_type == frames.HELLO
                frames.write_frame_socket(
                    conn, frames.HELLO_ACK,
                    codec.encode_hello_ack(1, Rect(0, 0, 1, 1), False))
                respond(conn)
            except Exception:
                pass
            finally:
                with contextlib.suppress(OSError):
                    conn.close()

    threading.Thread(target=serve, daemon=True).start()
    return listener


def test_garbled_response_is_a_typed_error_and_bills_nothing():
    def respond(conn: socket.socket) -> None:
        frames.read_frame_socket(conn)  # the QUERY
        data = bytearray(frames.encode_frame(frames.RESPONSE, b"\x00" * 64))
        data[frames.HEADER_BYTES + 5] ^= 0xFF  # damage the payload, not CRC
        conn.sendall(bytes(data))

    listener = _fake_server(respond)
    channel = WirelessChannel()
    client = RemoteSessionClient(
        Endpoint(transport="tcp", host="127.0.0.1",
                 port=listener.getsockname()[1]),
        SizeModel(), channel=channel)
    try:
        with pytest.raises(FrameError):
            client.execute(RangeQuery(window=Rect(0, 0, 1, 1)))
        # Garbled streams are not retried: the server may have acted.
        assert client.retries == 0
        assert (channel.uplink_bytes_total,
                channel.downlink_bytes_total) == (0, 0)
    finally:
        client.close()
        listener.close()


# --------------------------------------------------------------------------- #
# a client that dies mid-frame must not wedge the server
# --------------------------------------------------------------------------- #
def test_half_written_client_frame_leaves_the_server_healthy(shared_state):
    base, shared = shared_state
    (query,) = _queries(base, 1)
    with tempfile.TemporaryDirectory(prefix="repro-net-half-") as workdir:
        thread = ServerThread(ReproServer(shared.server, shared.size_model),
                              "uds", path=f"{workdir}/server.sock")
        thread.start()
        try:
            endpoint = make_endpoint(thread)
            rude = endpoint.connect(5.0)
            frames.write_frame_socket(
                rude, frames.HELLO,
                codec.encode_hello("rude", shared.size_model))
            frames.read_frame_socket(rude)  # HELLO_ACK
            payload = codec.encode_query_request(query, None, None)
            rude.sendall(frames.encode_frame(frames.QUERY, payload)[:7])
            rude.close()

            polite = RemoteSessionClient(endpoint, shared.size_model)
            try:
                response = polite.execute(query)
            finally:
                polite.close()
            assert response.result_object_ids() \
                == shared.server.execute(query).result_object_ids()
        finally:
            thread.stop()
