"""Tests for the update-stream generator and the version registry."""

import pytest

from repro.updates import UpdateStreamConfig, VersionRegistry, generate_update_stream
from repro.updates.stream import UpdateEvent


def _stream(rate=0.1, horizon=500.0, seed=1, **overrides):
    config = UpdateStreamConfig(update_rate=rate, seed=seed, **overrides)
    return generate_update_stream(range(50), horizon, config)


def test_stream_is_deterministic():
    assert _stream() == _stream()
    assert _stream(seed=2) != _stream(seed=3)


def test_stream_rate_zero_or_empty_horizon_is_empty():
    assert _stream(rate=0.0) == []
    assert _stream(horizon=0.0) == []


def test_stream_arrivals_ordered_and_within_horizon():
    events = _stream()
    assert events, "expected a non-empty stream at this rate"
    times = [event.arrival_time for event in events]
    assert times == sorted(times)
    assert 0.0 < times[0] and times[-1] <= 500.0
    assert [event.index for event in events] == list(range(len(events)))


def test_stream_respects_live_floor_and_mints_fresh_ids():
    config = UpdateStreamConfig(update_rate=1.0, insert_weight=0.0,
                                delete_weight=1.0, modify_weight=0.0,
                                min_live_objects=48, seed=5)
    events = generate_update_stream(range(50), 100.0, config)
    assert any(e.kind == "delete" for e in events)
    assert any(e.kind == "insert" for e in events), \
        "the floor must convert deletes into inserts"
    live = set(range(50))
    for event in events:
        if event.kind == "insert":
            live.add(event.object_id)
        elif event.kind == "delete":
            assert event.object_id in live
            live.remove(event.object_id)
        assert len(live) >= 48, "the live floor was breached"
    inserted = [e.object_id for e in events if e.kind == "insert"]
    assert inserted == sorted(inserted)
    assert all(object_id >= 50 for object_id in inserted)


def test_event_validation():
    with pytest.raises(ValueError, match="unknown update kind"):
        UpdateEvent(index=0, arrival_time=0.0, kind="replace", object_id=1)
    with pytest.raises(ValueError, match="need mbr"):
        UpdateEvent(index=0, arrival_time=0.0, kind="insert", object_id=1)
    with pytest.raises(ValueError, match="non-negative"):
        UpdateStreamConfig(update_rate=-1.0)
    with pytest.raises(ValueError, match="weights"):
        UpdateStreamConfig(insert_weight=0, delete_weight=0, modify_weight=0)


def test_registry_versions_and_death():
    registry = VersionRegistry()
    assert registry.node_version(7) == 1
    assert registry.bump_node(7) == 2
    assert registry.node_version(7) == 2
    registry.drop_node(7)
    assert registry.node_version(7) is None

    assert registry.object_version(3) == 1
    registry.drop_object(3)
    assert registry.object_version(3) is None
    # Reusing the id after a fresh insert resurrects it at a newer version.
    assert registry.bump_object(3) == 2
    assert registry.object_version(3) == 2
