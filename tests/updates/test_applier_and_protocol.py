"""Tests for the dataset updater and the cache-consistency protocols."""

import random

import pytest

from repro.core.server import ServerQueryProcessor
from repro.geometry import Point, Rect
from repro.rtree import SizeModel, assert_tree_valid, bulk_load_str
from repro.rtree.entry import ObjectRecord
from repro.sim.config import SimulationConfig
from repro.sim.sessions import ProactiveSession, make_session
from repro.updates import DatasetUpdater, make_protocol
from repro.updates.protocol import TTLProtocol
from repro.updates.stream import UpdateEvent
from repro.workload.queries import RangeQuery
from repro.workload.trace import TraceRecord


def _records(count, seed=9):
    rng = random.Random(seed)
    records = []
    for object_id in range(count):
        x, y = rng.random(), rng.random()
        records.append(ObjectRecord(object_id=object_id,
                                    mbr=Rect(x, y, min(1, x + 0.004),
                                             min(1, y + 0.004)),
                                    size_bytes=1000))
    return records


def _system(count=60):
    tree = bulk_load_str(_records(count), size_model=SizeModel(page_bytes=256))
    server = ServerQueryProcessor(tree)
    updater = DatasetUpdater(tree, server)
    return tree, server, updater


def _insert_event(index, object_id, rng=None):
    rng = rng or random.Random(index)
    x, y = rng.random(), rng.random()
    return UpdateEvent(index=index, arrival_time=float(index), kind="insert",
                       object_id=object_id,
                       mbr=Rect(x, y, min(1, x + 0.004), min(1, y + 0.004)),
                       size_bytes=800)


# --------------------------------------------------------------------------- #
# DatasetUpdater
# --------------------------------------------------------------------------- #
def test_updater_applies_and_versions_dirty_nodes():
    tree, server, updater = _system()
    before = dict(updater.registry.node_versions)
    assert updater.apply(_insert_event(0, 60))
    assert 60 in tree.objects
    assert_tree_valid(tree)
    assert updater.registry.node_versions != before
    assert updater.registry.dataset_version == 1
    # The owning leaf's version bumped and its partition tree was dropped.
    leaf_id = next(node.node_id for node in tree.all_nodes()
                   if node.is_leaf and any(e.object_id == 60 for e in node.entries))
    assert updater.registry.node_version(leaf_id) > 1
    assert leaf_id not in server.partition_trees


def test_updater_delete_and_modify():
    tree, server, updater = _system()
    assert updater.apply(UpdateEvent(index=0, arrival_time=0.0, kind="delete",
                                     object_id=5))
    assert 5 not in tree.objects
    assert updater.registry.object_version(5) is None
    assert_tree_valid(tree)

    event = _insert_event(1, 6)
    moved = UpdateEvent(index=1, arrival_time=1.0, kind="modify", object_id=6,
                        mbr=event.mbr, size_bytes=777)
    assert updater.apply(moved)
    assert tree.objects[6].size_bytes == 777
    assert updater.registry.object_version(6) == 2
    assert_tree_valid(tree)


def test_updater_skips_noop_events():
    tree, server, updater = _system()
    assert not updater.apply(UpdateEvent(index=0, arrival_time=0.0,
                                         kind="delete", object_id=999))
    assert not updater.apply(_insert_event(1, 5))  # id already live
    assert updater.applied == 0 and updater.skipped == 2
    assert updater.registry.dataset_version == 0


def test_updater_clears_shared_ground_truth():
    from repro.sim.sessions import GroundTruthCache
    tree, server, _ = _system()
    ground_truth = GroundTruthCache(tree)
    updater = DatasetUpdater(tree, server, ground_truth=ground_truth)
    query = RangeQuery(window=Rect(0.0, 0.0, 1.0, 1.0))
    before_ids, _ = ground_truth.results_for(query)
    assert len(ground_truth) == 1
    updater.apply(UpdateEvent(index=0, arrival_time=0.0, kind="delete",
                              object_id=before_ids[0]))
    assert len(ground_truth) == 0
    after_ids, _ = ground_truth.results_for(query)
    assert before_ids[0] not in after_ids


def test_updater_survives_heavy_churn():
    tree, server, updater = _system(count=120)
    rng = random.Random(17)
    next_id = 120
    for step in range(150):
        roll = rng.random()
        live = sorted(tree.objects)
        if roll < 0.4 or len(live) < 20:
            updater.apply(_insert_event(step, next_id, rng))
            next_id += 1
        elif roll < 0.7:
            updater.apply(UpdateEvent(index=step, arrival_time=float(step),
                                      kind="delete",
                                      object_id=rng.choice(live)))
        else:
            x, y = rng.random(), rng.random()
            updater.apply(UpdateEvent(index=step, arrival_time=float(step),
                                      kind="modify",
                                      object_id=rng.choice(live),
                                      mbr=Rect(x, y, min(1, x + 0.004),
                                               min(1, y + 0.004)),
                                      size_bytes=rng.randint(500, 1500)))
        assert_tree_valid(tree)
    tree.validate()


# --------------------------------------------------------------------------- #
# protocols
# --------------------------------------------------------------------------- #
def _session(tree, server, updater, mode, ttl=10.0):
    config = SimulationConfig.tiny().with_overrides(explicit_cache_bytes=50_000)
    protocol = make_protocol(mode, updater=updater,
                             size_model=tree.size_model, ttl_seconds=ttl)
    return ProactiveSession(tree, config, server=server, consistency=protocol)


def _query_at(index, now, center=Point(0.5, 0.5), side=0.4):
    return TraceRecord(index=index, position=center, think_time=1.0,
                       arrival_time=now,
                       query=RangeQuery(window=Rect.from_center(
                           center, side, side).clamped_unit()))


def test_make_protocol_validation():
    assert make_protocol("none") is None
    assert isinstance(make_protocol("ttl"), TTLProtocol)
    with pytest.raises(ValueError, match="unknown consistency"):
        make_protocol("gossip")
    with pytest.raises(ValueError, match="DatasetUpdater"):
        make_protocol("versioned")
    with pytest.raises(ValueError, match="positive"):
        TTLProtocol(ttl_seconds=0.0)


def test_versioned_sync_bills_the_handshake_every_query():
    tree, server, updater = _system()
    session = _session(tree, server, updater, "versioned")
    first = session.process(_query_at(0, 1.0))
    assert first.sync_uplink_bytes == 0  # cache was empty: nothing to validate
    second = session.process(_query_at(1, 2.0))
    # The client cannot know the dataset is unchanged without asking, so a
    # non-empty cache pays the per-item validation stamps every query...
    stamp = tree.size_model.pointer_bytes + 4
    expected = tree.size_model.query_header_bytes + stamp * len(session.cache)
    assert second.sync_uplink_bytes > 0
    # ...but with no updates every verdict is 'valid': nothing is refreshed
    # or dropped and the cache contents stay byte-identical to static.
    assert second.refreshed_items == 0 and second.invalidated_items == 0
    third = session.process(_query_at(2, 3.0))
    assert third.sync_uplink_bytes == expected


def test_versioned_sync_bills_and_reconciles_after_updates():
    tree, server, updater = _system()
    session = _session(tree, server, updater, "versioned")
    session.process(_query_at(0, 1.0))
    assert len(session.cache) > 0
    victim = sorted(session.cache.cached_object_ids())[0]
    updater.apply(UpdateEvent(index=0, arrival_time=1.5, kind="delete",
                              object_id=victim))
    cost = session.process(_query_at(1, 2.0))
    assert cost.sync_uplink_bytes > 0
    assert cost.sync_downlink_bytes > 0
    assert cost.invalidated_items + cost.refreshed_items > 0
    assert not session.cache.has_object(victim)
    assert session.cache.invalidations > 0
    session.cache.validate()


def test_ttl_expires_stale_subtrees_without_traffic():
    tree, server, updater = _system()
    session = _session(tree, server, updater, "ttl", ttl=5.0)
    session.process(_query_at(0, 1.0))
    assert len(session.cache) > 0
    cost = session.process(_query_at(1, 2.0))
    assert cost.invalidated_items == 0  # still fresh
    cost = session.process(_query_at(2, 20.0))  # far past the TTL
    assert cost.invalidated_items > 0
    assert cost.sync_uplink_bytes == 0 and cost.sync_downlink_bytes == 0
    session.cache.validate()


def test_refresh_item_keeps_cache_bookkeeping_coherent():
    tree, server, updater = _system()
    session = _session(tree, server, updater, "versioned")
    session.process(_query_at(0, 1.0))
    cached = sorted(session.cache.cached_object_ids())
    assert cached, "expected cached objects"
    target = cached[0]
    # Grow the object in place: versioned must refresh, not drop, because
    # the owning leaf is unchanged apart from the payload size.
    record = tree.objects[target]
    updater.apply(UpdateEvent(index=0, arrival_time=1.2, kind="modify",
                              object_id=target, mbr=record.mbr,
                              size_bytes=record.size_bytes + 500))
    cost = session.process(_query_at(1, 2.0))
    assert cost.refreshed_items >= 1
    assert session.cache.get_object(target).size_bytes == record.size_bytes + 500
    assert session.cache.refreshes >= 1
    session.cache.validate()


def test_make_session_rejects_consistency_for_baselines():
    tree, server, updater = _system()
    protocol = make_protocol("ttl")
    config = SimulationConfig.tiny()
    with pytest.raises(ValueError, match="does not support"):
        make_session("PAG", tree, config, consistency=protocol)
    session = make_session("APRO", tree, config, server=server,
                           consistency=protocol)
    assert isinstance(session, ProactiveSession)
    assert isinstance(session.consistency, TTLProtocol)
