"""Verdict-semantics regressions for the validation service.

Pinned here: the full verdict table of ``_validate_object`` — most
importantly the PR-9 fix that a *root-attached* object stamp
(``parent_id=None``) whose record still exists is REFRESHed, not silently
DROPped (pre-PR-9 every version-changed parentless object was dropped
outright, forcing a full re-download on the next query).  The networked
service must mirror the same verdicts over the wire.
"""

from __future__ import annotations

import tempfile

from repro.sim.config import SimulationConfig
from repro.sim.runner import build_shared_state
from repro.updates import DatasetUpdater
from repro.updates.stream import UpdateEvent
from repro.updates.validation import (
    DROP,
    REFRESH,
    VALID,
    LocalValidationService,
    ValidationStamp,
)


def _shared_system():
    base = SimulationConfig.scaled(query_count=4, object_count=300)
    shared = build_shared_state(base)
    updater = DatasetUpdater(shared.tree, shared.server)
    return shared, updater, LocalValidationService(updater)


def _leaves_of(tree):
    """Leaf node ids of ``tree``, discovered by a root-down walk."""
    leaves = []
    stack = [tree.root_id]
    while stack:
        node = tree.store.peek(stack.pop())
        if node.is_leaf:
            leaves.append(node.node_id)
        else:
            stack.extend(entry.child_id for entry in node.entries)
    return leaves


def _owning_leaf(tree, object_id):
    for leaf_id in _leaves_of(tree):
        if any(entry.object_id == object_id
               for entry in tree.store.peek(leaf_id).entries):
            return leaf_id
    raise AssertionError(f"object {object_id} is owned by no leaf")


def _modify(updater, object_id, index=0):
    record = updater.tree.objects[object_id]
    event = UpdateEvent(index=index, arrival_time=0.0, kind="modify",
                        object_id=object_id, mbr=record.mbr,
                        size_bytes=record.size_bytes + 16)
    assert updater.apply(event)


def _object_stamp(object_id, version, parent_id):
    return ValidationStamp(is_node=False, item_id=object_id,
                           cached_version=version, parent_id=parent_id)


def test_object_verdict_table():
    shared, updater, service = _shared_system()
    try:
        tree = shared.tree
        object_id = sorted(tree.objects)[0]
        leaf_id = _owning_leaf(tree, object_id)
        stale_leaf = next(leaf for leaf in _leaves_of(tree)
                          if leaf != leaf_id and not any(
                              e.object_id == object_id
                              for e in tree.store.peek(leaf).entries))
        current = updater.registry.object_version(object_id)

        # Unchanged version: VALID regardless of the hierarchy claim.
        assert service.validate([
            _object_stamp(object_id, current, leaf_id)])[0].action == VALID
        assert service.validate([
            _object_stamp(object_id, current, None)])[0].action == VALID

        _modify(updater, object_id)
        bumped = updater.registry.object_version(object_id)
        assert bumped != current

        # Version changed, still owned by the claimed leaf: REFRESH.
        verdict = service.validate([
            _object_stamp(object_id, current, leaf_id)])[0]
        assert verdict.action == REFRESH
        assert verdict.version == bumped
        assert verdict.record is not None
        assert verdict.record.object_id == object_id

        # Version changed, claimed leaf no longer owns it: DROP.
        assert service.validate([
            _object_stamp(object_id, current, stale_leaf)])[0].action == DROP
    finally:
        shared.tree.store.close()


def test_parentless_object_stamp_is_refreshed_not_dropped():
    """The PR-9 fix: ``parent_id=None`` + live record => REFRESH."""
    shared, updater, service = _shared_system()
    try:
        object_id = sorted(shared.tree.objects)[1]
        old = updater.registry.object_version(object_id)
        _modify(updater, object_id)
        verdict = service.validate([
            _object_stamp(object_id, old, None)])[0]
        assert verdict.action == REFRESH
        assert verdict.record is not None
        assert verdict.record.size_bytes \
            == shared.tree.objects[object_id].size_bytes
    finally:
        shared.tree.store.close()


def test_deleted_object_is_dropped_for_any_parent_claim():
    shared, updater, service = _shared_system()
    try:
        object_id = sorted(shared.tree.objects)[2]
        leaf_id = _owning_leaf(shared.tree, object_id)
        old = updater.registry.object_version(object_id)
        assert updater.apply(UpdateEvent(index=0, arrival_time=0.0,
                                         kind="delete", object_id=object_id))
        for parent in (leaf_id, None):
            assert service.validate([
                _object_stamp(object_id, old, parent)])[0].action == DROP
    finally:
        shared.tree.store.close()


def test_net_service_mirrors_parentless_refresh_over_the_wire():
    """The loopback codec preserves ``parent_id=None`` and the verdict."""
    from repro.net.client import NetValidationService, RemoteSessionClient
    from repro.net.fleet import make_endpoint
    from repro.net.server import ReproServer, ServerThread

    shared, updater, local = _shared_system()
    repro_server = ReproServer(shared.server, shared.size_model,
                               validation=local)
    with tempfile.TemporaryDirectory(prefix="repro-validation-") as workdir:
        thread = ServerThread(repro_server, "uds",
                              path=f"{workdir}/server.sock")
        thread.start()
        try:
            client = RemoteSessionClient(make_endpoint(thread),
                                         shared.size_model,
                                         client_name="verdicts")
            try:
                remote = NetValidationService(client)
                object_id = sorted(shared.tree.objects)[3]
                leaf_id = _owning_leaf(shared.tree, object_id)
                old = updater.registry.object_version(object_id)
                _modify(updater, object_id)
                stamps = [_object_stamp(object_id, old, None),
                          _object_stamp(object_id, old, leaf_id)]
                over_wire = remote.validate(stamps)
                in_process = local.validate(stamps)
                assert [v.action for v in over_wire] \
                    == [v.action for v in in_process] == [REFRESH, REFRESH]
                assert over_wire[0].record.object_id == object_id
                assert over_wire[0].version == in_process[0].version
            finally:
                client.close()
        finally:
            thread.stop()
    shared.tree.store.close()
