"""Setup shim so that ``pip install -e .`` works without network access.

All project metadata lives in ``pyproject.toml`` (PEP 621); this file only
exists so pip can fall back to the legacy editable-install path in offline
environments where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
