"""Packaging for the proactive spatial-caching reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so that
``pip install -e .`` works through the legacy editable-install path in
offline environments where the ``wheel``/``build`` packages are
unavailable.  Installing exposes the ``repro`` console script (and the
legacy ``repro-spatial-cache`` alias).
"""

from setuptools import find_packages, setup

setup(
    name="repro-spatial-cache",
    version="0.2.0",
    description=("Proactive caching for spatial queries in mobile environments "
                 "(ICDE 2005 reproduction + fleet-scale simulator)"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # CI exercises 3.10 and 3.12; 3.9 is no longer a supported target
    # (repro._compat keeps a harmless __dict__ fallback for older
    # interpreters, but nothing tests it).
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "repro-spatial-cache = repro.cli:main",
        ],
    },
)
