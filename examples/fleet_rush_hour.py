"""Fleet simulation: a city's rush hour against one shared spatial server.

Simulates three very different client populations sharing one server:

* **pedestrians** — random-waypoint walkers with the default 1% cache;
* **vehicles** — fast, directed movers with half the cache and a
  range-query-heavy mix (navigation windows);
* **hotspot** — near-stationary users (cafe laptops, kiosks) with a double
  cache and a kNN-heavy mix ("what's near me?").

All clients run adaptive proactive caching (APRO) except the vehicles, whose
high speed makes cached index snapshots go stale quickly — they are a good
stress test.  The run prints per-group headline metrics and the aggregate
load the fleet put on the server.

Run with::

    python examples/fleet_rush_hour.py
"""

from __future__ import annotations

from repro.experiments.report import format_fleet_report
from repro.sim.config import SimulationConfig
from repro.sim.fleet import ClientGroupSpec, FleetConfig, run_fleet
from repro.workload.generator import QueryMix


def main(query_count: int = 30, object_count: int = 4_000,
         pedestrians: int = 24, vehicles: int = 16, hotspot: int = 10) -> None:
    """Simulate the three-group rush-hour fleet and print the report."""
    base = SimulationConfig.scaled(query_count=query_count,
                                   object_count=object_count)
    fleet = FleetConfig.make(base, [
        ClientGroupSpec(name="pedestrians", clients=pedestrians, mobility_model="RAN"),
        ClientGroupSpec(name="vehicles", clients=vehicles, mobility_model="DIR",
                        speed_factor=8.0, cache_fraction=0.005,
                        query_mix=QueryMix(range_=2.0, knn=1.0, join=0.5)),
        ClientGroupSpec(name="hotspot", clients=hotspot, mobility_model="RAN",
                        speed_factor=0.25, cache_fraction=0.02,
                        query_mix=QueryMix(range_=0.5, knn=2.0, join=0.5)),
    ])
    print(f"Simulating {fleet.total_clients} clients "
          f"({', '.join(g.name for g in fleet.groups)}) against one shared server...")
    result = run_fleet(fleet)

    print()
    print(format_fleet_report(result, title="Per-group headline metrics"))
    print()

    qps = result.windowed_queries_per_second(windows=6)
    bars = "".join("▁▂▃▄▅▆▇█"[min(7, int(8 * rate / max(qps)))] if max(qps) else " "
                   for rate in qps)
    print(f"Arrival rate over the run: {bars}  "
          f"(peak {max(qps):.2f} q/s, mean {result.server_load().queries_per_second:.2f} q/s)")


if __name__ == "__main__":
    main()
