"""Quickstart: proactive caching in a dozen lines.

Builds a small NE-like dataset, bulk-loads the server's R*-tree, and runs a
paired comparison of page caching (PAG), semantic caching (SEM) and adaptive
proactive caching (APRO) on an identical query trace, printing the headline
metrics of the paper's Figure 6.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_comparison


def main(query_count: int = 200, object_count: int = 4_000) -> None:
    """Run the paired PAG / SEM / APRO comparison and print the metrics."""
    # A laptop-scale configuration: 4,000 clustered objects, 200 mixed
    # range / kNN / join queries, 1% cache, random-waypoint mobility.
    config = SimulationConfig.scaled(query_count=query_count,
                                     object_count=object_count)
    print("Simulation parameters")
    for key, value in config.as_table().items():
        print(f"  {key:>12}: {value}")
    print()

    results = run_comparison(config, models=("PAG", "SEM", "APRO"))

    metrics = ("uplink_bytes", "downlink_bytes", "cache_hit_rate",
               "byte_hit_rate", "false_miss_rate", "response_time")
    rows = []
    for metric in metrics:
        rows.append([metric] + [results[model].summary()[metric]
                                for model in ("PAG", "SEM", "APRO")])
    print(format_table(["metric", "PAG", "SEM", "APRO"], rows,
                       title="Paired comparison on an identical query trace"))
    print()

    apro = results["APRO"].summary()
    sem = results["SEM"].summary()
    print(f"APRO answers {apro['cache_hit_rate']:.0%} of result bytes from the cache "
          f"(semantic caching: {sem['cache_hit_rate']:.0%}) and still downloads "
          f"{apro['downlink_bytes'] / 1024:.1f} KiB per query on average.")


if __name__ == "__main__":
    main()
