"""The paper's running example: Joey looks for a motel while driving.

Section 1 of the paper motivates proactive caching with three examples:

* Example 1.1 — Joey issues a range query Q0 around his position and then a
  wider range query Q1; semantic caching only ships the remainder Q1 - Q0.
* Example 1.2 — if the second query is instead a 3-nearest-neighbour query
  Q2, semantic caching cannot reuse the cached range results at all.
* Example 1.3 — proactive caching answers Q2 partly from the cache because
  it cached the supporting R-tree index nodes along with the motels.

This script replays exactly that scenario against the proactive cache and
prints which motels were answered locally versus fetched from the server.

Run with::

    python examples/joey_motel_search.py
"""

from __future__ import annotations

from repro.core.cache import ProactiveCache
from repro.core.client import ClientQueryProcessor
from repro.core.items import CachedIndexNode, CachedObject
from repro.core.replacement import GRD3Policy
from repro.core.server import ServerQueryProcessor
from repro.core.supporting_index import SupportingIndexPolicy
from repro.datasets import generate_ne_like
from repro.geometry import Point, Rect
from repro.rtree import SizeModel, bulk_load_str


def apply_response(cache, response):
    """Insert the server's supporting index and result objects into the cache."""
    for snapshot in response.index_snapshots:
        cache.insert_node_snapshot(
            CachedIndexNode(snapshot.node_id, snapshot.level,
                            {e.code: e for e in snapshot.elements}),
            snapshot.parent_id)
    for delivery in response.deliveries:
        cache.insert_object(
            CachedObject(delivery.record.object_id, delivery.record.mbr,
                         delivery.record.size_bytes),
            delivery.parent_node_id)


def describe(execution, response, size_model):
    saved = sorted(execution.saved_objects)
    fetched = sorted(response.result_object_ids()) if response else []
    print(f"  answered locally : {len(saved)} motels {saved}")
    print(f"  fetched from srv : {len(fetched)} motels {fetched}")
    if response is not None:
        print(f"  downlink         : {response.result_bytes()} result bytes + "
              f"{response.index_bytes(size_model)} index bytes")
    else:
        print("  downlink         : 0 bytes (no server contact)")
    print()


def main(motel_count: int = 2_000) -> None:
    """Replay the paper's Section-1 Joey scenario against the proactive cache."""
    size_model = SizeModel(page_bytes=512)
    motels = generate_ne_like(motel_count, seed=42)
    tree = bulk_load_str(motels, size_model=size_model)
    server = ServerQueryProcessor(tree, size_model=size_model)
    policy = SupportingIndexPolicy.adaptive(initial_depth=1)

    cache = ProactiveCache(capacity_bytes=2_000_000, size_model=size_model,
                           replacement_policy=GRD3Policy())
    client = ClientQueryProcessor(cache, root_id=server.root_id, root_mbr=server.root_mbr)

    joey = Point(0.42, 0.57)

    from repro.workload.queries import KNNQuery, RangeQuery

    # Q0: a range query around Joey's position.
    q0 = RangeQuery(window=Rect.from_center(joey, 0.06, 0.06))
    print("Q0: range query around Joey (cold cache)")
    cache.tick()
    execution = client.execute(q0)
    response = server.execute(q0, execution.remainder(), policy) if not execution.complete else None
    if response:
        apply_response(cache, response)
    describe(execution, response, size_model)

    # Q1: a wider range query — mostly answered from the cache.
    q1 = RangeQuery(window=Rect.from_center(joey, 0.09, 0.09))
    print("Q1: wider range query (semantic caching would ship Q1 - Q0)")
    cache.tick()
    execution = client.execute(q1)
    response = server.execute(q1, execution.remainder(), policy) if not execution.complete else None
    if response:
        apply_response(cache, response)
    describe(execution, response, size_model)

    # Q2: a 3NN query — impossible to reuse under semantic caching, but the
    # proactively cached index nodes let the client confirm nearby motels.
    q2 = KNNQuery(point=joey, k=3)
    print("Q2: 3-nearest-motels query (Example 1.2/1.3)")
    cache.tick()
    execution = client.execute(q2)
    response = server.execute(q2, execution.remainder(), policy) if not execution.complete else None
    if response:
        apply_response(cache, response)
    describe(execution, response, size_model)

    print(f"cache now holds {len(cache)} items "
          f"({cache.index_bytes()} index bytes, {cache.object_bytes()} object bytes)")


if __name__ == "__main__":
    main()
