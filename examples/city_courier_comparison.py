"""A directed-movement courier compares caching models and eviction policies.

A courier drives across town along purposeful routes (the DIR mobility
model), asking a mix of "what is around me" queries: delivery zones in a
window (range), the nearest k drop boxes (kNN), and pairs of nearby pickup
points that can be batched (distance self-join).  The example runs the same
trace through page caching, semantic caching and proactive caching, then
shows how the choice of cache replacement policy (LRU / FAR / GRD3) affects
the proactive cache under both mobility models — the paper's Figures 7
and 10 in miniature.

Run with::

    python examples/city_courier_comparison.py
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_environment, run_model, run_models
from repro.sim.sweeps import replacement_sweep


def main(query_count: int = 200, object_count: int = 4_000,
         sweep_query_count: int = 150) -> None:
    """Compare caching models and eviction policies on the courier trace."""
    config = SimulationConfig.scaled(
        query_count=query_count, object_count=object_count).with_overrides(
        mobility_model="DIR", cache_fraction=0.02)

    print("Courier scenario: directed movement, 2% cache, mixed workload")
    environment = build_environment(config)
    results = run_models(environment, ("PAG", "SEM", "APRO"))

    rows = []
    for model, result in results.items():
        summary = result.summary()
        rows.append([model, summary["cache_hit_rate"], summary["false_miss_rate"],
                     summary["downlink_bytes"] / 1024.0, summary["response_time"]])
    print(format_table(["model", "hit rate", "false miss", "downlink KiB", "resp (s)"],
                       rows, title="Caching models on the courier trace"))
    print()

    print("Replacement policies for the proactive cache (RAN vs DIR):")
    sweep = replacement_sweep(config.with_overrides(query_count=sweep_query_count),
                              policies=("LRU", "FAR", "GRD3"),
                              mobility_models=("RAN", "DIR"))
    rows = []
    for policy in ("LRU", "FAR", "GRD3"):
        rows.append([policy,
                     sweep["RAN"][policy].summary()["response_time"],
                     sweep["DIR"][policy].summary()["response_time"]])
    print(format_table(["policy", "RAN resp (s)", "DIR resp (s)"], rows))
    print()
    print("GRD3 is designed to be the most stable choice across mobility patterns;")
    print("LRU tends to look better under DIR, FAR and GRD3 under RAN (paper Fig. 10).")


if __name__ == "__main__":
    main()
