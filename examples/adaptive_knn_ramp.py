"""Adaptive proactive caching under a shifting kNN workload (Figure 11).

A courier app issues only k-nearest-neighbour queries, but the k it needs
changes over the day: wide searches in the morning (k ~ 10), pinpoint
searches at noon (k ~ 1), wide again in the evening.  The experiment pits
the three supporting-index forms against each other:

* FPRO — always cache the full form of every accessed index node;
* CPRO — always cache the minimal compact form;
* APRO — adapt the ``d+``-level compact form to the observed false-miss rate.

Run with::

    python examples/adaptive_knn_ramp.py
"""

from __future__ import annotations

from repro.experiments import fig11
from repro.experiments.report import format_table


def main(query_count: int = 300, window: int = 25) -> None:
    """Run the Figure-11 kNN ramp and print the per-window adaptation table."""
    config = fig11.default_config(query_count=query_count)
    print("kNN-only workload, k ramping 10 -> 1 -> 10, cache = 0.1% of the dataset")
    print()

    series = fig11.run(config, window=window)

    models = ("FPRO", "CPRO", "APRO")
    headers = ["window", "avg k"] + [f"{m} fmr" for m in models] + \
              [f"{m} i/c" for m in models]
    k_values = series["_k_schedule"]["k"]
    rows = []
    for index in range(len(k_values)):
        row = [index, k_values[index]]
        for model in models:
            values = series[model]["false_miss_rate"]
            row.append(values[index] if index < len(values) else "")
        for model in models:
            values = series[model]["index_fraction"]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    print(format_table(headers, rows, title="False miss rate and index share over time"))
    print()

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    print("Mean response time per scheme:")
    for model in models:
        print(f"  {model}: {mean(series[model]['response_time']):.3f} s")
    print()
    print("Adaptive depth d chosen by APRO per window:",
          [round(v, 1) for v in series["APRO"]["depth"]])


if __name__ == "__main__":
    main()
