"""Benchmark / regeneration of Table 6.1 (system parameter settings)."""

from repro.experiments import table61

from benchmarks.conftest import run_once


def test_table61_parameters(benchmark, bench_config):
    """Regenerate Table 6.1 for the paper's and this run's configuration."""
    tables = run_once(benchmark, table61.run, bench_config)
    output = table61.render(tables)
    print("\n" + output)
    assert "Area_wnd" in output
    assert set(tables) == {"paper", "this run"}
