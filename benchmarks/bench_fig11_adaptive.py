"""Figure 11 — FPRO vs CPRO vs APRO under the k-ramp workload (kNN only).

Reproduced shape claims:

* FPRO caches the largest index share (``i/c``) and achieves the lowest,
  most stable false miss rate;
* CPRO caches the smallest index share and has the highest / most volatile
  false miss rate;
* APRO sits in between on both, and its response time improves on CPRO's by
  shipping just enough extra index.

Note: in the paper APRO also edges out FPRO on response time; at the scaled
dataset size the index is so cheap relative to the 10 KB objects that FPRO's
full-form caching costs almost nothing, so FPRO can win on raw response time
here.  The asserted (and reproduced) ordering is therefore
CPRO >= APRO >= FPRO on fmr, FPRO >= APRO >= CPRO on index share, and
APRO <= CPRO on response time.  See EXPERIMENTS.md.
"""

from repro.experiments import fig11

from benchmarks.conftest import run_once


def _mean(values):
    values = [v for v in values if v == v]
    return sum(values) / len(values) if values else 0.0


def test_fig11_adaptive_schemes(benchmark, bench_config):
    config = fig11.default_config(query_count=bench_config.query_count).with_overrides(
        object_count=bench_config.object_count)
    series = run_once(benchmark, fig11.run, config)
    print("\n" + fig11.render(series))

    fpro, cpro, apro = series["FPRO"], series["CPRO"], series["APRO"]
    # 11(b): FPRO ships/keeps the most index, CPRO the least.
    assert _mean(fpro["index_fraction"]) >= _mean(apro["index_fraction"]) - 1e-9
    assert _mean(apro["index_fraction"]) >= _mean(cpro["index_fraction"]) - 1e-9
    # 11(a): CPRO's false miss rate is the worst, FPRO's the best, APRO between.
    assert _mean(cpro["false_miss_rate"]) >= _mean(apro["false_miss_rate"]) - 1e-9
    assert _mean(apro["false_miss_rate"]) >= _mean(fpro["false_miss_rate"]) - 1e-9
    # 11(c): the adaptive scheme improves on the normal compact form and stays
    # within a modest factor of the best scheme.
    assert _mean(apro["response_time"]) <= _mean(cpro["response_time"]) + 1e-9
    best = min(_mean(fpro["response_time"]), _mean(cpro["response_time"]),
               _mean(apro["response_time"]))
    assert _mean(apro["response_time"]) <= 1.5 * best
