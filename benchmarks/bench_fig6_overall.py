"""Figure 6 — overall comparison of PAG, SEM and APRO (DIR, |C| = 1%).

Reproduced shape claims (checked as assertions):

* PAG's cache hit rate is zero; APRO's is the highest of the three.
* SEM downloads the most bytes per query.
* APRO achieves the lowest response time.
* APRO's downlink stays within a modest factor of PAG's (the paper reports
  "slightly larger").
"""

from repro.experiments import fig6

from benchmarks.conftest import run_once


def test_fig6_overall_comparison(benchmark, bench_config):
    config = bench_config.with_overrides(mobility_model="DIR", cache_fraction=0.01)
    summaries = run_once(benchmark, fig6.run, config)
    print("\n" + fig6.render(summaries))

    pag, sem, apro = summaries["PAG"], summaries["SEM"], summaries["APRO"]
    assert pag["cache_hit_rate"] == 0.0
    assert apro["cache_hit_rate"] > sem["cache_hit_rate"]
    assert sem["downlink_bytes"] >= apro["downlink_bytes"]
    assert apro["response_time"] <= min(pag["response_time"], sem["response_time"])
    assert apro["downlink_bytes"] <= 3.0 * pag["downlink_bytes"]
