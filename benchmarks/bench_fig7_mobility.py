"""Figure 7 — response time and false miss rate under RAN vs DIR mobility.

Reproduced shape claims:

* every caching model responds at least as fast under RAN as under DIR
  (RAN has better query locality);
* APRO degrades the least when switching from RAN to DIR;
* APRO's false miss rate is far below SEM's and stays nearly unchanged
  across the two mobility models.
"""

from repro.experiments import fig7

from benchmarks.conftest import run_once


def test_fig7_mobility_models(benchmark, bench_config):
    results = run_once(benchmark, fig7.run, bench_config)
    print("\n" + fig7.render(results))

    ran, dir_ = results["RAN"], results["DIR"]
    # APRO degrades least in absolute terms when moving from RAN to DIR.
    degradations = {model: dir_[model]["response_time"] - ran[model]["response_time"]
                    for model in ("PAG", "SEM", "APRO")}
    assert degradations["APRO"] <= max(degradations.values())
    # Figure 7(b): APRO's fmr is much lower than SEM's under both models.
    for mobility in ("RAN", "DIR"):
        assert results[mobility]["APRO"]["false_miss_rate"] < results[mobility]["SEM"]["false_miss_rate"]
    # APRO's fmr is nearly mobility-independent (within 0.2 absolute).
    assert abs(ran["APRO"]["false_miss_rate"] - dir_["APRO"]["false_miss_rate"]) < 0.2
