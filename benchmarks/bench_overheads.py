"""Section 6.4 prose numbers — partition-tree storage and server CPU time.

Reproduced shape claims:

* the binary partition trees cost at most 2x the R-tree index size (the
  paper's analytical bound) and in practice roughly match it;
* the server CPU time per query under APRO is within a small factor of the
  FPRO server time (the paper even measured a slight improvement).
"""

from repro.experiments import overheads

from benchmarks.conftest import run_once


def test_partition_tree_overheads(benchmark, bench_config):
    config = bench_config.with_overrides(query_count=min(bench_config.query_count, 150))
    values = run_once(benchmark, overheads.run, config)
    print("\n" + overheads.render(values))

    assert values["partition_tree_bytes"] <= 2.0 * values["index_bytes"]
    assert values["partition_tree_bytes"] > 0
    # APRO's server CPU stays within a small factor of FPRO's.
    assert values["server_cpu_ms_apro"] <= 3.0 * max(values["server_cpu_ms_fpro"], 1e-6)
