"""Fleet-scale simulation benchmark: many clients, one shared server.

Times a heterogeneous three-group fleet (pedestrians / vehicles / hotspot
users) replayed event-driven against a single shared server, and checks the
structural claims the fleet subsystem makes:

* every client's queries are all answered (clients x queries events total);
* groups really are heterogeneous (the fast small-cache vehicles hit the
  server more often than the slow large-cache hotspot users);
* the shared server sees the sum of all per-client traffic.
"""

import os

from repro.sim.config import SimulationConfig
from repro.sim.fleet import default_fleet, run_fleet

from benchmarks.conftest import run_once


FLEET_CLIENTS = int(os.environ.get("BENCH_FLEET_CLIENTS", "24"))
FLEET_QUERIES = int(os.environ.get("BENCH_FLEET_QUERIES", "40"))


def test_fleet_simulation(benchmark, bench_config):
    base = bench_config.with_overrides(query_count=FLEET_QUERIES)
    fleet = default_fleet(FLEET_CLIENTS, base=base)
    result = run_once(benchmark, run_fleet, fleet)

    assert len(result.clients) == FLEET_CLIENTS
    load = result.server_load()
    assert load.total_queries == FLEET_CLIENTS * FLEET_QUERIES
    assert load.duration_seconds > 0
    assert load.queries_per_second > 0

    groups = result.group_summary()
    assert set(groups) == {"pedestrians", "vehicles", "hotspot"}
    assert groups["vehicles"]["server_contact_rate"] >= \
        groups["hotspot"]["server_contact_rate"]
    assert sum(int(summary["queries"]) for summary in groups.values()) == \
        load.total_queries
