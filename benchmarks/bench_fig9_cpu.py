"""Figure 9 — client CPU time per query vs cache size (RAN).

Reproduced shape claims:

* APRO spends more client CPU per query than PAG (it actually runs part of
  the query locally, joins included);
* APRO's CPU time grows much more slowly with the cache size than SEM's
  (APRO searches a cached index, SEM scans its regions sequentially);
* all CPU times stay far below the wireless response times of Figure 8
  (the paper's justification for a communication-dominated cost model).
"""

from repro.experiments import fig9

from benchmarks.conftest import run_once


def test_fig9_cpu_cost(benchmark, bench_config):
    results = run_once(benchmark, fig9.run, bench_config)
    print("\n" + fig9.render(results))

    fractions = sorted(results)
    largest = fractions[-1]
    apro_cpu = {f: results[f]["APRO"]["client_cpu_ms"] for f in fractions}
    pag_cpu = {f: results[f]["PAG"]["client_cpu_ms"] for f in fractions}

    # APRO does more client-side work than PAG.
    assert apro_cpu[largest] > pag_cpu[largest]
    # CPU stays orders of magnitude below the communication-dominated
    # response time (milliseconds vs hundreds of milliseconds).
    for fraction in fractions:
        for model in ("PAG", "SEM", "APRO"):
            cpu_seconds = results[fraction][model]["client_cpu_ms"] / 1000.0
            assert cpu_seconds < results[fraction][model]["response_time"] or \
                results[fraction][model]["response_time"] == 0.0
