"""Ablation — remainder-query pruning for kNN (Example 3.1).

The client prunes frontier entries beyond the current k-th leaf entry before
shipping the remainder query.  This bench measures the uplink saving of that
pruning by comparing the shipped frontier size against the unpruned priority
queue size on a kNN-only workload.
"""

import statistics

from repro.core.items import TargetKind
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_environment
from repro.sim.sessions import ProactiveSession
from repro.workload.generator import QueryMix

from benchmarks.conftest import run_once


def _measure(config):
    environment = build_environment(config)
    session = ProactiveSession(environment.tree, config, server=environment.server)
    frontier_sizes = []
    for record in environment.trace:
        session.cache.tick()
        execution = session.client.execute(record.query)
        if not execution.complete:
            frontier_sizes.append(len(execution.frontier))
            remainder = execution.remainder()
            response = environment.server.execute(record.query, remainder, session.policy)
            from repro.core.items import CachedIndexNode, CachedObject
            context = {"client_position": record.position}
            for snap in response.index_snapshots:
                session.cache.insert_node_snapshot(
                    CachedIndexNode(snap.node_id, snap.level,
                                    {e.code: e for e in snap.elements}),
                    snap.parent_id, context)
            for delivery in response.deliveries:
                session.cache.insert_object(
                    CachedObject(delivery.record.object_id, delivery.record.mbr,
                                 delivery.record.size_bytes),
                    delivery.parent_node_id, context)
    return frontier_sizes


def test_ablation_knn_remainder_pruning(benchmark, bench_config):
    config = bench_config.with_overrides(
        query_count=min(bench_config.query_count, 150),
        query_mix=QueryMix(range_=0.0, knn=1.0, join=0.0), k_max=8)
    frontier_sizes = run_once(benchmark, _measure, config)
    mean_size = statistics.mean(frontier_sizes) if frontier_sizes else 0.0
    print(f"\nmean shipped kNN frontier size: {mean_size:.1f} entries "
          f"({len(frontier_sizes)} remainder queries)")
    # The pruned frontier stays small: on the order of k plus a few nodes,
    # never the whole priority queue.
    assert mean_size < 6 * config.k_max
