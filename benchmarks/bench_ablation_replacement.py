"""Ablation — GRD family comparison and the knapsack approximation in practice.

DESIGN.md calls out the replacement scheme as an ablation target: this bench
compares GRD1 (unconstrained greedy), GRD2 (EBRS greedy) and GRD3 (the
paper's efficient policy) end to end, verifying that GRD3 performs at least
as well as GRD2 (they are provably equivalent victim-wise) and that both stay
close to GRD1 while honouring the descendants constraint.
"""

from repro.sim.runner import build_environment, run_model

from benchmarks.conftest import run_once


def _run_policies(config):
    environment = build_environment(config)
    return {policy: run_model(environment, "APRO", replacement_policy=policy).summary()
            for policy in ("GRD1", "GRD2", "GRD3")}


def test_ablation_grd_family(benchmark, bench_config):
    config = bench_config.with_overrides(query_count=min(bench_config.query_count, 150),
                                         cache_fraction=0.005)
    summaries = run_once(benchmark, _run_policies, config)
    for policy, summary in summaries.items():
        print(f"{policy}: hit={summary['cache_hit_rate']:.3f} "
              f"resp={summary['response_time']:.3f}s")

    grd2, grd3 = summaries["GRD2"], summaries["GRD3"]
    # GRD3 and GRD2 pick the same victims, so end-to-end metrics match closely.
    assert abs(grd2["cache_hit_rate"] - grd3["cache_hit_rate"]) < 0.1
    # All GRD variants achieve a usable hit rate at this cache size.
    for summary in summaries.values():
        assert summary["cache_hit_rate"] > 0.0
