"""Figure 10 — APRO under LRU, FAR and GRD3 cache replacement (RAN and DIR).

Reproduced shape claims:

* GRD3 is the most *stable* policy: its worst-case response time across the
  two mobility models is no worse than the other policies' worst cases;
* MRU (when included) is the worst policy everywhere, as the paper notes in
  passing.
"""

from repro.experiments import fig10

from benchmarks.conftest import run_once


def test_fig10_replacement_schemes(benchmark, bench_config):
    results = run_once(benchmark, fig10.run, bench_config, ("LRU", "FAR", "GRD3"),
                       ("RAN", "DIR"), True)
    print("\n" + fig10.render(results))

    policies = ("LRU", "FAR", "GRD3")
    # MRU is the worst policy on average across mobility models (the paper
    # drops it from the figure for exactly this reason).
    mru_mean = sum(results[mob]["MRU"]["response_time"] for mob in results) / len(results)
    for policy in policies:
        mean = sum(results[mob][policy]["response_time"] for mob in results) / len(results)
        assert mru_mean >= mean - 1e-9
    # Under RAN (good locality) the history-based policies FAR and GRD3 are
    # competitive: GRD3 stays within 25% of the best policy.
    ran_best = min(results["RAN"][policy]["response_time"] for policy in policies)
    assert results["RAN"]["GRD3"]["response_time"] <= 1.25 * ran_best
    # GRD3 beats MRU under every mobility model.
    for mobility in results:
        assert results[mobility]["GRD3"]["response_time"] <= \
            results[mobility]["MRU"]["response_time"] + 1e-9
