"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
configuration (see DESIGN.md for the scaling rationale) and prints the same
rows / series the paper reports.  The files are named ``bench_*`` so the
tier-1 test run never collects them; run them explicitly with::

    pytest benchmarks/ -o python_files='bench_*' --benchmark-only -s

The ``-s`` flag shows the rendered tables; without it only the timings are
reported.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig


# One shared scale for all figure benchmarks so cross-figure numbers are
# comparable.  Increase these for a closer-to-paper run, e.g.
#   BENCH_QUERIES=2000 BENCH_OBJECTS=20000 pytest benchmarks/ --benchmark-only
import os

BENCH_QUERIES = int(os.environ.get("BENCH_QUERIES", "250"))
BENCH_OBJECTS = int(os.environ.get("BENCH_OBJECTS", "4000"))


@pytest.fixture(scope="session")
def bench_config() -> SimulationConfig:
    """The baseline configuration shared by the figure benchmarks."""
    return SimulationConfig.scaled(query_count=BENCH_QUERIES, object_count=BENCH_OBJECTS)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
