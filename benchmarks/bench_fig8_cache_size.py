"""Figure 8 — response time vs cache size (0.1%, 0.5%, 1%, 5%; RAN).

Reproduced shape claims:

* APRO's response time improves monotonically (within noise) as the cache
  grows and keeps improving beyond |C| = 1%;
* PAG and SEM saturate: their improvement from 1% to 5% is much smaller than
  APRO's (PAG can even get worse because its id-list uplink grows);
* at the largest cache size APRO is the fastest model.
"""

from repro.experiments import fig8

from benchmarks.conftest import run_once


def test_fig8_cache_size_sweep(benchmark, bench_config):
    results = run_once(benchmark, fig8.run, bench_config)
    print("\n" + fig8.render(results))

    fractions = sorted(results)
    smallest, largest = fractions[0], fractions[-1]
    mid = 0.01 if 0.01 in results else fractions[len(fractions) // 2]

    apro = {f: results[f]["APRO"]["response_time"] for f in fractions}
    # APRO keeps gaining from the mid cache size to the largest one.
    assert apro[largest] < apro[mid]
    # APRO benefits from a larger cache overall.
    assert apro[largest] < apro[smallest]
    # At the largest cache size APRO beats both baselines.
    assert apro[largest] <= results[largest]["PAG"]["response_time"]
    assert apro[largest] <= results[largest]["SEM"]["response_time"]
    # APRO's gain beyond 1% exceeds SEM's (SEM saturates).
    sem = {f: results[f]["SEM"]["response_time"] for f in fractions}
    assert (apro[mid] - apro[largest]) >= (sem[mid] - sem[largest]) - 1e-9
