"""The wireless channel: a 384 Kbps 3G link shared by uplink and downlink."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import ResponseTimeModel
from repro.network.messages import as_int_bytes


@dataclass
class WirelessChannel:
    """Byte-accurate transmission model of the client's wireless link.

    The paper assumes a 384 Kbps 3G channel and states that wireless
    communication dominates both latency and energy, so the channel exposes
    transmission delays (via :class:`ResponseTimeModel`) and cumulative byte
    counters used for the uplink / downlink metrics.
    """

    bandwidth_bps: float = 384_000.0
    fixed_rtt_seconds: float = 0.0
    # Exact int byte counters — same unit as TrafficLog entries, so channel
    # and log totals for the same message stream are equal with ==.
    uplink_bytes_total: int = 0
    downlink_bytes_total: int = 0

    @property
    def timing(self) -> ResponseTimeModel:
        """The response-time model for this channel."""
        return ResponseTimeModel(bandwidth_bps=self.bandwidth_bps,
                                 fixed_rtt_seconds=self.fixed_rtt_seconds)

    def send_uplink(self, num_bytes: int) -> float:
        """Account for an uplink transmission; returns its delay in seconds."""
        self.uplink_bytes_total += as_int_bytes(num_bytes)
        return self.timing.uplink_delay(num_bytes)

    def send_downlink(self, num_bytes: int) -> float:
        """Account for a downlink transmission; returns its delay in seconds."""
        self.downlink_bytes_total += as_int_bytes(num_bytes)
        return num_bytes * self.timing.seconds_per_byte

    def reset(self) -> None:
        """Zero the cumulative counters."""
        self.uplink_bytes_total = 0
        self.downlink_bytes_total = 0
