"""Wireless-channel model and per-query traffic accounting."""

from repro.network.channel import WirelessChannel
from repro.network.messages import TrafficLog

__all__ = ["WirelessChannel", "TrafficLog"]
