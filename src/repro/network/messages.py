"""Per-query traffic logging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


def as_int_bytes(num_bytes) -> int:
    """Normalise a byte count to a non-negative int.

    Byte counts are integral everywhere in the system (the size model only
    produces ints); an integral float is accepted for backward
    compatibility, anything fractional or negative is a caller bug.
    """
    value = int(num_bytes)
    if value != num_bytes:
        raise ValueError(f"byte count must be integral, got {num_bytes!r}")
    if value < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes!r}")
    return value


@dataclass
class TrafficLog:
    """Chronological record of every message a simulated client exchanged.

    Each entry is ``(query_index, direction, bytes)`` where direction is
    ``"up"`` or ``"down"`` and bytes is an exact int — the same unit the
    :class:`~repro.network.channel.WirelessChannel` counters accumulate, so
    the totals of a log and of the channel it mirrors are comparable with
    ``==``, not ``pytest.approx``.  Mostly useful for debugging and for the
    traffic breakdown printed by some benchmarks.
    """

    entries: List[Tuple[int, str, int]] = field(default_factory=list)

    def log_uplink(self, query_index: int, num_bytes: int) -> None:
        """Record an uplink message."""
        self.entries.append((query_index, "up", as_int_bytes(num_bytes)))

    def log_downlink(self, query_index: int, num_bytes: int) -> None:
        """Record a downlink message."""
        self.entries.append((query_index, "down", as_int_bytes(num_bytes)))

    def uplink_bytes(self) -> int:
        """Total uplink bytes logged."""
        return sum(size for _, direction, size in self.entries if direction == "up")

    def downlink_bytes(self) -> int:
        """Total downlink bytes logged."""
        return sum(size for _, direction, size in self.entries if direction == "down")

    def bytes_for_query(self, query_index: int) -> Tuple[int, int]:
        """``(uplink, downlink)`` bytes for one query."""
        up = sum(size for idx, direction, size in self.entries
                 if idx == query_index and direction == "up")
        down = sum(size for idx, direction, size in self.entries
                   if idx == query_index and direction == "down")
        return up, down
