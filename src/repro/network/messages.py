"""Per-query traffic logging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class TrafficLog:
    """Chronological record of every message a simulated client exchanged.

    Each entry is ``(query_index, direction, bytes)`` where direction is
    ``"up"`` or ``"down"``.  Mostly useful for debugging and for the traffic
    breakdown printed by some benchmarks.
    """

    entries: List[Tuple[int, str, float]] = field(default_factory=list)

    def log_uplink(self, query_index: int, num_bytes: float) -> None:
        """Record an uplink message."""
        self.entries.append((query_index, "up", num_bytes))

    def log_downlink(self, query_index: int, num_bytes: float) -> None:
        """Record a downlink message."""
        self.entries.append((query_index, "down", num_bytes))

    def uplink_bytes(self) -> float:
        """Total uplink bytes logged."""
        return sum(size for _, direction, size in self.entries if direction == "up")

    def downlink_bytes(self) -> float:
        """Total downlink bytes logged."""
        return sum(size for _, direction, size in self.entries if direction == "down")

    def bytes_for_query(self, query_index: int) -> Tuple[float, float]:
        """``(uplink, downlink)`` bytes for one query."""
        up = sum(size for idx, direction, size in self.entries
                 if idx == query_index and direction == "up")
        down = sum(size for idx, direction, size in self.entries
                   if idx == query_index and direction == "down")
        return up, down
