"""The consistency-validation service behind the versioned protocol.

The versioned protocol's handshake is a pure request/response exchange:
the client sends one *stamp* per cached item (what it holds and at which
version), the server answers one *verdict* per stamp (keep it, drop it, or
refresh it with fresh bytes).  This module names that exchange so the same
client-side protocol code runs against two service implementations:

* :class:`LocalValidationService` — answers from the in-process
  :class:`~repro.updates.applier.DatasetUpdater` (or its sharded twin);
  this is the classic simulated deployment;
* ``repro.net.client.NetValidationService`` — ships the same stamps over
  the wire to a :class:`~repro.net.server.ReproServer` and decodes the
  same verdicts, which is what keeps the loopback-networked fleets
  *byte-identical* to the in-process ones.

The verdict for each stamp is computed from server-side state only, so
batching the whole cache's stamps into one exchange is decision-identical
to the old one-item-at-a-time validation: a verdict can only be *applied
or skipped* client-side (an earlier drop may have removed the item), never
changed by another verdict.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.core.items import CachedIndexNode
from repro.rtree.entry import ObjectRecord

#: Verdict actions (wire constants — never renumber).
VALID = 0
DROP = 1
REFRESH = 2


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ValidationStamp:
    """One cached item's identity and version, as the client reports it.

    ``parent_id`` is the node id of the item's *cached* parent (``None``
    for a root-attached item): the server compares it against the live
    hierarchy so an item that moved since it was cached is dropped rather
    than silently refreshed in the wrong position.
    """

    is_node: bool
    item_id: int
    cached_version: int
    parent_id: Optional[int]


@dataclass(**DATACLASS_SLOTS)
class ValidationVerdict:
    """The server's answer for one stamp.

    ``action`` is :data:`VALID`, :data:`DROP` or :data:`REFRESH`.  A node
    refresh carries the full snapshot plus its leaf flag (the client uses
    it to re-check ownership of cached child objects); an object refresh
    carries the fresh record.  ``version`` is the server's current version
    stamp of the refreshed item.
    """

    action: int
    version: int = 0
    node: Optional[CachedIndexNode] = None
    is_leaf: bool = False
    record: Optional[ObjectRecord] = None


class ValidationService(abc.ABC):
    """What the versioned protocol needs from the server side."""

    @abc.abstractmethod
    def validate(self, stamps: Sequence[ValidationStamp]
                 ) -> List[ValidationVerdict]:
        """One verdict per stamp, in stamp order."""

    @abc.abstractmethod
    def current_versions(self, node_ids: Sequence[int],
                         object_ids: Sequence[int]
                         ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """The server's current version stamps of the named items.

        Items without a registry entry are simply absent from the returned
        mappings (the protocol leaves its cached stamp untouched for them).
        """

    def finish_sync(self, uplink_bytes: int, downlink_bytes: int) -> None:
        """Hook invoked once per completed handshake with its billed bytes.

        The local service ignores it; the networked service bills the
        modelled bytes to the client's wireless channel and reports the
        applied downlink back to the server's per-connection ledger.
        """


class LocalValidationService(ValidationService):
    """Answer validation requests from the in-process dataset updater.

    ``updater`` is duck-typed: a
    :class:`~repro.updates.applier.DatasetUpdater` or a
    :class:`~repro.sharding.updater.ShardedUpdater` — anything exposing
    ``registry``, ``tree`` and ``server``.
    """

    def __init__(self, updater: object) -> None:
        self.updater = updater

    # -- verdict computation ---------------------------------------------- #
    def validate(self, stamps: Sequence[ValidationStamp]
                 ) -> List[ValidationVerdict]:
        """One verdict per stamp, read from the live tree and registry."""
        return [self._validate_node(stamp) if stamp.is_node
                else self._validate_object(stamp) for stamp in stamps]

    def _validate_node(self, stamp: ValidationStamp) -> ValidationVerdict:
        from repro.updates.protocol import full_node_snapshot
        registry = self.updater.registry  # type: ignore[attr-defined]
        tree = self.updater.tree  # type: ignore[attr-defined]
        node_id = stamp.item_id
        current = registry.node_version(node_id)
        if current is None or node_id not in tree.store:
            return ValidationVerdict(action=DROP)
        if current == stamp.cached_version:
            return ValidationVerdict(action=VALID)
        node = tree.store.peek(node_id)
        if not node.entries or node.parent_id != stamp.parent_id:
            return ValidationVerdict(action=DROP)
        snapshot = full_node_snapshot(
            self.updater.server, node_id)  # type: ignore[attr-defined]
        return ValidationVerdict(action=REFRESH, version=current,
                                 node=snapshot, is_leaf=node.is_leaf)

    def _validate_object(self, stamp: ValidationStamp) -> ValidationVerdict:
        registry = self.updater.registry  # type: ignore[attr-defined]
        tree = self.updater.tree  # type: ignore[attr-defined]
        object_id = stamp.item_id
        current = registry.object_version(object_id)
        if current is None:
            return ValidationVerdict(action=DROP)
        if current == stamp.cached_version:
            return ValidationVerdict(action=VALID)
        record = tree.objects.get(object_id)
        if record is None:
            return ValidationVerdict(action=DROP)
        if stamp.parent_id is not None:
            # The client holds the object under a cached leaf: the live
            # hierarchy must still agree before a refresh-in-place is safe.
            leaf_id = stamp.parent_id
            still_owned = (leaf_id in tree.store
                           and any(entry.object_id == object_id
                                   for entry in
                                   tree.store.peek(leaf_id).entries))
            if not still_owned:
                return ValidationVerdict(action=DROP)
        # A root-attached stamp (parent_id=None) makes no hierarchy claim:
        # the record still existing is all a refresh needs.  (Pre-PR-9 this
        # path dropped every version-changed parentless object outright.)
        return ValidationVerdict(action=REFRESH, version=current,
                                 record=record)

    # -- version stamps for fresh responses -------------------------------- #
    def current_versions(self, node_ids: Sequence[int],
                         object_ids: Sequence[int]
                         ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Registry lookups; unregistered items are omitted."""
        registry = self.updater.registry  # type: ignore[attr-defined]
        node_versions: Dict[int, int] = {}
        for node_id in node_ids:
            version = registry.node_version(node_id)
            if version is not None:
                node_versions[node_id] = version
        object_versions: Dict[int, int] = {}
        for object_id in object_ids:
            version = registry.object_version(object_id)
            if version is not None:
                object_versions[object_id] = version
        return node_versions, object_versions
