"""Applying update events to the live server: tree mutation + dirty tracking.

:class:`DatasetUpdater` is the server-side half of the dynamic-dataset
subsystem.  It owns the shared R-tree (in memory or on a copy-on-write
paged backend), mutates it through the ordinary R* insert / delete paths,
and — the part everything downstream depends on — works out exactly which
pages the mutation touched by diffing cheap per-node content fingerprints
before and after.  Dirty pages get their versions bumped in the
:class:`~repro.updates.registry.VersionRegistry` and their memoised
partition trees dropped (the server lazily rebuilds them); the shared
ground-truth memo is cleared because its cached result sets are stale.

Dirty detection is funnel-based: while an event applies, the updater wraps
the store's ``edit`` / ``allocate`` / ``free`` methods — the only paths a
structural mutation can take — and afterwards re-fingerprints exactly the
touched pages.  That handles every mutation shape (splits, forced
reinsertion, condense cascades, root growth and shrink) in O(touched
pages), and on a copy-on-write paged backend never re-decodes untouched
file pages.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.sessions import GroundTruthCache

from repro.core.server import ServerQueryProcessor
from repro.obs import instrument as obs
from repro.rtree.entry import ObjectRecord
from repro.rtree.node import Node
from repro.rtree.serialize import encode_node, encode_object
from repro.rtree.tree import RTree
from repro.storage.paged import PagedFileBackend
from repro.storage.wal import Delta, WalRecord
from repro.updates.registry import VersionRegistry
from repro.updates.stream import UpdateEvent


def _node_fingerprint(node: Node) -> Tuple:
    """A content tuple that changes iff the shipped form of the page changes."""
    return (node.level, node.parent_id,
            tuple((entry.child_id, entry.object_id,
                   entry.mbr.min_x, entry.mbr.min_y,
                   entry.mbr.max_x, entry.mbr.max_y)
                  for entry in node.entries))


class DatasetUpdater:
    """Mutates the live tree and keeps the server's derived state coherent.

    Parameters
    ----------
    tree:
        The server's R-tree; must be writable (in-memory, or a paged
        backend opened with ``copy_on_write=True``).
    server:
        The query processor whose memoised partition trees must track the
        mutations.
    ground_truth:
        Optional shared ground-truth memo to clear on every mutation.
    registry:
        Version registry to stamp; a fresh one is created when omitted.
    """

    def __init__(self, tree: RTree, server: ServerQueryProcessor,
                 ground_truth: Optional["GroundTruthCache"] = None,
                 registry: Optional[VersionRegistry] = None) -> None:
        self.tree = tree
        self.server = server
        self.ground_truth = ground_truth
        self.registry = registry or VersionRegistry()
        # Queries entering through the server pin the registry's committed
        # version (MVCC): a pin taken mid-batch raises, so readers never
        # observe a half-applied batch.
        server.registry = self.registry
        self.applied = 0
        self.skipped = 0
        self.counts = {"insert": 0, "delete": 0, "modify": 0}
        #: Batches durably committed to a write-ahead log (0 without one).
        self.wal_commits = 0
        self._fingerprints = self._snapshot()

    def _snapshot(self) -> Dict[int, Tuple]:
        return {node.node_id: _node_fingerprint(node)
                for node in self.tree.all_nodes()}

    # ------------------------------------------------------------------ #
    # applying events
    # ------------------------------------------------------------------ #
    def apply(self, event: UpdateEvent) -> bool:
        """Apply one update event; returns False when it was a no-op.

        A delete or modify of an id that no longer exists, or an insert of
        an id that already does, is skipped (counted in :attr:`skipped`) —
        this keeps replaying *subsets* of a logged event list legal, which
        the property harness's shrink loop relies on.
        """
        return self.apply_batch((event,)) == 1

    def apply_batch(self, events: Iterable[UpdateEvent]) -> int:
        """Apply a batch of events as one atomic commit; returns applied count.

        The whole batch is bracketed by the registry's
        :meth:`~repro.updates.registry.VersionRegistry.begin_batch` /
        ``commit_batch`` (readers pinning a version mid-batch raise), and —
        when the tree's store carries a write-ahead log — lands on disk as
        exactly one fsync'd commit record, so a crash either persists the
        batch completely or not at all.
        """
        touched: Set[int] = set()
        freed: Set[int] = set()
        deltas: List[Tuple[int, Optional[ObjectRecord]]] = []
        applied = 0
        self.registry.begin_batch()
        try:
            with self._watch_store(touched, freed):
                for event in events:
                    if self._apply_event(event, deltas):
                        applied += 1
            if applied:
                changed = self._propagate_dirty(touched, freed)
                self.registry.dataset_version += applied
                self._commit(changed, freed, deltas)
        finally:
            self.registry.commit_batch()
        return applied

    def _apply_event(self, event: UpdateEvent,
                     deltas: List[Tuple[int, Optional[ObjectRecord]]]) -> bool:
        """Mutate the tree for one event, recording its object deltas."""
        mutated = False
        if event.kind == "insert":
            if event.object_id not in self.tree.objects:
                record = ObjectRecord(object_id=event.object_id,
                                      mbr=event.mbr,
                                      size_bytes=event.size_bytes)
                self.tree.insert(record)
                self.registry.bump_object(event.object_id)
                deltas.append((event.object_id, record))
                mutated = True
        elif event.kind == "delete":
            if self.tree.delete(event.object_id):
                self.registry.drop_object(event.object_id)
                deltas.append((event.object_id, None))
                mutated = True
        else:  # modify: atomic delete + reinsert under the same id
            if self.tree.delete(event.object_id):
                record = ObjectRecord(object_id=event.object_id,
                                      mbr=event.mbr,
                                      size_bytes=event.size_bytes)
                self.tree.insert(record)
                self.registry.bump_object(event.object_id)
                # Two deltas, mirroring the operational order, so replay
                # reproduces the dict-reinsertion position exactly.
                deltas.append((event.object_id, None))
                deltas.append((event.object_id, record))
                mutated = True
        if not mutated:
            self.skipped += 1
            return False
        self.applied += 1
        self.counts[event.kind] += 1
        return True

    def _commit(self, changed: Set[int], freed: Set[int],
                deltas: List[Tuple[int, Optional[ObjectRecord]]]) -> None:
        """Append the batch to the store's WAL, if one is attached."""
        store = self.tree.store
        if not isinstance(store, PagedFileBackend) or store.wal is None:
            return
        pages: List[Delta] = [(node_id, None) for node_id in freed]
        pages.extend((node_id, encode_node(store.peek(node_id)))
                     for node_id in changed)
        record = WalRecord(
            version=self.registry.dataset_version,
            root_id=self.tree.root_id,
            height=self.tree.height,
            next_page_id=store.next_page_id,
            pages=tuple(sorted(pages, key=lambda delta: delta[0])),
            objects=tuple(
                (object_id, None if obj is None else encode_object(obj))
                for object_id, obj in deltas))
        store.commit_record(record)
        self.wal_commits += 1
        if obs.ENABLED:
            obs.active().count("repro_wal_commits_total", 1.0)

    @contextmanager
    def _watch_store(self, touched: set, freed: set) -> Iterator[None]:
        """Record which pages a mutation touches, via the store's own funnel.

        Every structural change flows through ``edit`` / ``allocate`` /
        ``free`` (the RTree mutation paths fetch mutable nodes exclusively
        with ``edit``), so wrapping the three methods for the duration of
        one event yields the exact candidate set to re-fingerprint — no
        whole-tree sweep, and on a copy-on-write paged backend no
        re-decode of untouched file pages.
        """
        store = self.tree.store
        original_edit = store.edit
        original_allocate = store.allocate
        original_free = store.free

        def edit(node_id: int) -> Node:
            touched.add(node_id)
            return original_edit(node_id)

        def allocate(level: int) -> Node:
            node = original_allocate(level)
            touched.add(node.node_id)
            return node

        def free(node_id: int) -> None:
            freed.add(node_id)
            return original_free(node_id)

        store.edit, store.allocate, store.free = edit, allocate, free
        try:
            yield
        finally:
            store.edit = original_edit
            store.allocate = original_allocate
            store.free = original_free

    def _propagate_dirty(self, touched: Set[int], freed: Set[int]) -> Set[int]:
        """Re-fingerprint the touched pages; stamp versions, drop derived state.

        Returns the set of pages whose content actually changed — the page
        images the commit record must carry.
        """
        partition_trees = self.server.partition_trees
        changed: Set[int] = set()
        for node_id in freed:
            self.registry.drop_node(node_id)
            partition_trees.pop(node_id, None)
            self._fingerprints.pop(node_id, None)
        for node_id in touched - freed:
            fingerprint = _node_fingerprint(self.tree.store.peek(node_id))
            if self._fingerprints.get(node_id) != fingerprint:
                self._fingerprints[node_id] = fingerprint
                self.registry.bump_node(node_id)
                partition_trees.pop(node_id, None)
                changed.add(node_id)
        if self.ground_truth is not None:
            self.ground_truth.clear()
        return changed

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, int]:
        """Deterministic counters for reports and perf fingerprints."""
        return {
            "applied": self.applied,
            "skipped": self.skipped,
            "inserts": self.counts["insert"],
            "deletes": self.counts["delete"],
            "modifies": self.counts["modify"],
            "dataset_version": self.registry.dataset_version,
            "live_objects": len(self.tree.objects),
            "wal_commits": self.wal_commits,
        }

    # ------------------------------------------------------------------ #
    # persistence (dynamic halt/resume)
    # ------------------------------------------------------------------ #
    # repro: allow[STM01] tree/server/ground_truth are the live wiring the
    # resume path reconstructs; _fingerprints is re-snapshotted from the
    # restored tree by restore_state.
    def state_dict(self) -> dict:
        """Snapshot the updater's counters and registry for halt/resume."""
        return {
            "format": 1,
            "kind": "dataset-updater",
            "applied": self.applied,
            "skipped": self.skipped,
            "counts": dict(self.counts),
            "wal_commits": self.wal_commits,
            "registry": self.registry.state_dict(),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a halt-time snapshot; the tree must already be at the
        matching state (recovered from a WAL, or rebuilt by replay)."""
        if state.get("format") != 1 or state.get("kind") != "dataset-updater":
            raise ValueError(f"not a dataset-updater snapshot: "
                             f"{state.get('kind')!r}")
        self.applied = state["applied"]
        self.skipped = state["skipped"]
        self.counts = dict(state["counts"])
        self.wal_commits = state["wal_commits"]
        self.registry.restore_state(state["registry"])
        self._fingerprints = self._snapshot()
