"""Naive linear-scan query oracles over the *current* object set.

The property-based differential harness needs an answer key that shares no
code with the system under test: no R-tree, no partition trees, no cache —
just a full scan of the object table as it exists right now.  Each oracle
mirrors the semantics of the corresponding query processor:

* range — every object whose MBR intersects the window;
* kNN — the ``k`` objects with smallest MINDIST from their MBR to the query
  point (ties are measure-zero under the harness's random geometry);
* join — every object inside the window participating in at least one pair
  within the distance threshold.
"""

from __future__ import annotations

from typing import Dict, List

from repro.rtree.entry import ObjectRecord
from repro.workload.queries import JoinQuery, KNNQuery, Query, RangeQuery


def oracle_range(objects: Dict[int, ObjectRecord], query: RangeQuery) -> List[int]:
    """Ids of every object intersecting the range window (sorted)."""
    window = query.window
    return sorted(object_id for object_id, record in objects.items()
                  if record.mbr.intersects(window))


def oracle_knn(objects: Dict[int, ObjectRecord], query: KNNQuery) -> List[int]:
    """Ids of the ``k`` nearest objects by MBR MINDIST (sorted)."""
    ranked = sorted(objects.values(),
                    key=lambda record: (record.mbr.min_dist_to_point(query.point),
                                        record.object_id))
    return sorted(record.object_id for record in ranked[:query.k])


def oracle_join(objects: Dict[int, ObjectRecord], query: JoinQuery) -> List[int]:
    """Ids of objects participating in a qualifying join pair (sorted)."""
    window, threshold = query.window, query.threshold
    candidates = [record for record in objects.values()
                  if record.mbr.intersects(window)]
    participating = set()
    for i, left in enumerate(candidates):
        for right in candidates[i + 1:]:
            if left.mbr.min_dist_to_rect(right.mbr) <= threshold:
                participating.add(left.object_id)
                participating.add(right.object_id)
    return sorted(participating)


def oracle_results(objects: Dict[int, ObjectRecord], query: Query) -> List[int]:
    """Linear-scan ground truth for any supported query type."""
    if isinstance(query, RangeQuery):
        return oracle_range(objects, query)
    if isinstance(query, KNNQuery):
        return oracle_knn(objects, query)
    if isinstance(query, JoinQuery):
        return oracle_join(objects, query)
    raise TypeError(f"unsupported query type {type(query)!r}")
