"""Version stamps for node pages and object records.

The versioned consistency protocol needs one fact per cached item: *has the
server-side original changed since this copy was shipped?*  The registry
answers it with monotonically increasing per-id version counters — every
page whose content changes (entries added, removed, MBR adjusted) and every
object record that is inserted, modified or deleted gets a bump from the
:class:`~repro.updates.applier.DatasetUpdater`.  Versions start at 1 for
anything that existed before the first update; page and object ids are
never reused by either storage backend, so a dead id can simply be marked
dead forever.
"""

from __future__ import annotations

from typing import Dict, Optional, Set


class VersionRegistry:
    """Per-id version counters for nodes and objects, plus death records."""

    def __init__(self) -> None:
        self.node_versions: Dict[int, int] = {}
        self.object_versions: Dict[int, int] = {}
        self.dead_nodes: Set[int] = set()
        self.dead_objects: Set[int] = set()
        #: Bumped once per applied update event; cheap "anything changed?" probe.
        self.dataset_version = 0

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def node_version(self, node_id: int) -> Optional[int]:
        """Current version of a node page; ``None`` when the page is dead."""
        if node_id in self.dead_nodes:
            return None
        return self.node_versions.get(node_id, 1)

    def object_version(self, object_id: int) -> Optional[int]:
        """Current version of an object record; ``None`` when deleted."""
        if object_id in self.dead_objects:
            return None
        return self.object_versions.get(object_id, 1)

    # ------------------------------------------------------------------ #
    # mutation (the updater drives these)
    # ------------------------------------------------------------------ #
    def bump_node(self, node_id: int) -> int:
        """Record that a node page's content changed; returns the new version."""
        self.dead_nodes.discard(node_id)
        version = self.node_versions.get(node_id, 1) + 1
        self.node_versions[node_id] = version
        return version

    def bump_object(self, object_id: int) -> int:
        """Record that an object record changed; returns the new version."""
        self.dead_objects.discard(object_id)
        version = self.object_versions.get(object_id, 1) + 1
        self.object_versions[object_id] = version
        return version

    def drop_node(self, node_id: int) -> None:
        """Record that a node page was freed."""
        self.dead_nodes.add(node_id)

    def drop_object(self, object_id: int) -> None:
        """Record that an object record was deleted."""
        self.dead_objects.add(object_id)
