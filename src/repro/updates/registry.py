"""Version stamps for node pages and object records.

The versioned consistency protocol needs one fact per cached item: *has the
server-side original changed since this copy was shipped?*  The registry
answers it with monotonically increasing per-id version counters — every
page whose content changes (entries added, removed, MBR adjusted) and every
object record that is inserted, modified or deleted gets a bump from the
:class:`~repro.updates.applier.DatasetUpdater`.  Versions start at 1 for
anything that existed before the first update; page and object ids are
never reused by either storage backend, so a dead id can simply be marked
dead forever.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.storage.backend import StorageError


class VersionRegistry:
    """Per-id version counters for nodes and objects, plus death records.

    The registry is also the MVCC gatekeeper of the durable write path:
    the updater brackets every batch with :meth:`begin_batch` /
    :meth:`commit_batch`, and readers call :meth:`pin` at query start.
    ``committed_version`` only advances at commit, and pinning inside an
    open batch raises — so a scatter-gather query can never observe a
    half-applied batch, and a pin taken before a crash names a version
    recovery is guaranteed to reach.
    """

    def __init__(self) -> None:
        self.node_versions: Dict[int, int] = {}
        self.object_versions: Dict[int, int] = {}
        self.dead_nodes: Set[int] = set()
        self.dead_objects: Set[int] = set()
        #: Bumped once per applied update event; cheap "anything changed?" probe.
        self.dataset_version = 0
        #: ``dataset_version`` as of the last completed batch.
        self.committed_version = 0
        self._in_batch = False

    # ------------------------------------------------------------------ #
    # batch bracketing and read pinning (MVCC)
    # ------------------------------------------------------------------ #
    @property
    def in_batch(self) -> bool:
        """True between :meth:`begin_batch` and :meth:`commit_batch`."""
        return self._in_batch

    def begin_batch(self) -> None:
        """Open an update batch; reads are barred until it commits."""
        if self._in_batch:
            raise StorageError("update batch already open (re-entrant or "
                               "concurrent batches are not supported)")
        self._in_batch = True

    def commit_batch(self) -> int:
        """Close the open batch, publishing its dataset version to readers."""
        if not self._in_batch:
            raise StorageError("commit_batch without begin_batch")
        self._in_batch = False
        self.committed_version = self.dataset_version
        return self.committed_version

    def pin(self) -> int:
        """Stamp a read: the committed version this query executes against.

        Raises when a batch is mid-apply — the one moment derived state
        (page images, partition trees, version tables) may be internally
        inconsistent.
        """
        if self._in_batch:
            raise StorageError("cannot pin a read mid-batch: an update "
                               "batch is being applied")
        return self.committed_version

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    # repro: allow[STM01] _in_batch is per-process transient state: a
    # snapshot is only taken between batches, where it is always False.
    def state_dict(self) -> dict:
        """JSON-ready snapshot; id keys become strings, sets sorted lists."""
        return {
            "format": 1,
            "kind": "version-registry",
            "dataset_version": self.dataset_version,
            "committed_version": self.committed_version,
            "node_versions": {str(node_id): version for node_id, version
                              in self.node_versions.items()},
            "object_versions": {str(object_id): version for object_id, version
                                in self.object_versions.items()},
            "dead_nodes": sorted(self.dead_nodes),
            "dead_objects": sorted(self.dead_objects),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`state_dict`."""
        if state.get("format") != 1 or state.get("kind") != "version-registry":
            raise StorageError(f"not a version-registry snapshot: "
                               f"{state.get('kind')!r}")
        self.dataset_version = state["dataset_version"]
        self.committed_version = state["committed_version"]
        self.node_versions = {int(node_id): version for node_id, version
                              in state["node_versions"].items()}
        self.object_versions = {int(object_id): version for object_id, version
                                in state["object_versions"].items()}
        self.dead_nodes = set(state["dead_nodes"])
        self.dead_objects = set(state["dead_objects"])
        self._in_batch = False

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def node_version(self, node_id: int) -> Optional[int]:
        """Current version of a node page; ``None`` when the page is dead."""
        if node_id in self.dead_nodes:
            return None
        return self.node_versions.get(node_id, 1)

    def object_version(self, object_id: int) -> Optional[int]:
        """Current version of an object record; ``None`` when deleted."""
        if object_id in self.dead_objects:
            return None
        return self.object_versions.get(object_id, 1)

    # ------------------------------------------------------------------ #
    # mutation (the updater drives these)
    # ------------------------------------------------------------------ #
    def bump_node(self, node_id: int) -> int:
        """Record that a node page's content changed; returns the new version."""
        self.dead_nodes.discard(node_id)
        version = self.node_versions.get(node_id, 1) + 1
        self.node_versions[node_id] = version
        return version

    def bump_object(self, object_id: int) -> int:
        """Record that an object record changed; returns the new version."""
        self.dead_objects.discard(object_id)
        version = self.object_versions.get(object_id, 1) + 1
        self.object_versions[object_id] = version
        return version

    def drop_node(self, node_id: int) -> None:
        """Record that a node page was freed."""
        self.dead_nodes.add(node_id)

    def drop_object(self, object_id: int) -> None:
        """Record that an object record was deleted."""
        self.dead_objects.add(object_id)
