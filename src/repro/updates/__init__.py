"""The dynamic-dataset subsystem: server-side updates + cache consistency.

The paper assumes a static object set; a production deployment churns —
POIs open and close, prices change, objects move.  This package adds that
churn and the machinery that keeps proactive client caches honest about it:

* :mod:`repro.updates.stream` — seed-deterministic update streams
  (insert / delete / modify with Zipf-skewed hot objects) interleaved with
  query traffic by the fleet's arrival-time machinery;
* :mod:`repro.updates.registry` — version stamps for every live node page
  and object record, bumped whenever server-side content changes;
* :mod:`repro.updates.applier` — :class:`DatasetUpdater`, which applies
  update events to the live R-tree (R*-style insert / delete, in memory or
  through the paged backend's copy-on-write overlay), detects exactly which
  pages changed, bumps their versions and invalidates the server's derived
  state (partition trees, memoised ground truth);
* :mod:`repro.updates.protocol` — the client-side cache-consistency
  protocols: version-stamped lazy validation (``versioned``), a TTL
  baseline (``ttl``) and the no-op staleness baseline (``none``), all
  billing their wire traffic through the byte-accurate cost model;
* :mod:`repro.updates.validation` — the validation-service abstraction the
  versioned protocol talks to: the in-process implementation answers from
  the live updater, the networked one (:mod:`repro.net`) ships the same
  stamps over a socket and decodes the same verdicts;
* :mod:`repro.updates.oracle` — naive linear-scan query oracles over the
  current object set, the reference the property-based differential
  harness compares every cached answer against.
"""

from repro.updates.applier import DatasetUpdater
from repro.updates.oracle import oracle_results
from repro.updates.protocol import (
    CacheSyncReport,
    ConsistencyProtocol,
    TTLProtocol,
    VersionedProtocol,
    make_protocol,
)
from repro.updates.registry import VersionRegistry
from repro.updates.validation import (
    LocalValidationService,
    ValidationService,
    ValidationStamp,
    ValidationVerdict,
)
from repro.updates.stream import (
    CONSISTENCY_MODES,
    UpdateEvent,
    UpdateStreamConfig,
    generate_update_stream,
)

__all__ = [
    "CONSISTENCY_MODES",
    "CacheSyncReport",
    "ConsistencyProtocol",
    "DatasetUpdater",
    "LocalValidationService",
    "TTLProtocol",
    "UpdateEvent",
    "UpdateStreamConfig",
    "ValidationService",
    "ValidationStamp",
    "ValidationVerdict",
    "VersionRegistry",
    "VersionedProtocol",
    "generate_update_stream",
    "make_protocol",
    "oracle_results",
]
