"""Seed-deterministic update streams: insert / delete / modify events.

An update stream is generated once per run from a seed, exactly like the
query traces, so paired experiments replay the *same* mutation history.
Arrivals follow a Poisson process at ``update_rate`` events per simulated
second over the fleet's query horizon; victims of deletes and modifies are
drawn Zipf-skewed over the live id population (low ids are hot, matching the
paper's skewed object popularity), and inserts mint fresh ids with uniform
positions and Zipf-distributed payload sizes.

The generator tracks its *own* view of the live id set while emitting
events, so the stream is a pure function of its inputs — replaying a logged
event list (the property harness's shrink loop does this) needs no access
to the generator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.datasets.zipf import ZipfSizeGenerator
from repro.geometry import Rect

#: The cache-consistency modes the fleet / CLI accept.
CONSISTENCY_MODES = ("versioned", "ttl", "none")


@dataclass(frozen=True)
class UpdateEvent:
    """One server-side mutation of the object set.

    ``kind`` is ``"insert"`` (a new object appears), ``"delete"`` (an
    existing object disappears) or ``"modify"`` (an existing object changes
    its MBR and/or payload size — a moved POI or a re-priced listing).
    ``mbr`` / ``size_bytes`` carry the new geometry and payload for inserts
    and modifies; deletes leave them ``None``.
    """

    index: int
    arrival_time: float
    kind: str
    object_id: int
    mbr: Optional[Rect] = None
    size_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete", "modify"):
            raise ValueError(f"unknown update kind {self.kind!r}")
        if self.kind in ("insert", "modify") and (self.mbr is None
                                                  or self.size_bytes is None):
            raise ValueError(f"{self.kind} events need mbr and size_bytes")


@dataclass(frozen=True)
class UpdateStreamConfig:
    """Knobs of one update stream.

    ``update_rate`` is in events per simulated second; the kind weights mix
    inserts, deletes and modifies; ``zipf_theta`` skews victim selection
    towards hot (low-rank) objects; ``min_live_objects`` floors the dataset
    so deletes can never empty the tree under the query workload's feet.
    """

    update_rate: float = 0.0
    insert_weight: float = 1.0
    delete_weight: float = 1.0
    modify_weight: float = 1.0
    zipf_theta: float = 0.8
    mean_object_bytes: int = 10_240
    object_extent: float = 0.002
    min_live_objects: int = 8
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.update_rate < 0:
            raise ValueError("update_rate must be non-negative")
        weights = (self.insert_weight, self.delete_weight, self.modify_weight)
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError("update kind weights must be non-negative and "
                             "not all zero")


def _zipf_pick(rng: random.Random, ordered_ids: List[int], theta: float) -> int:
    """Draw one id, rank-skewed: low-rank (old, hot) ids are more likely."""
    count = len(ordered_ids)
    if count == 1:
        return ordered_ids[0]
    # Inverse-CDF sampling of rank ~ r^-(theta) via the power transform:
    # u^(1/(1-theta)) concentrates mass at small ranks for theta in (0, 1).
    u = rng.random()
    if theta <= 0:
        rank = int(u * count)
    else:
        exponent = 1.0 / max(1e-9, 1.0 - min(theta, 0.999))
        rank = int((u ** exponent) * count)
    return ordered_ids[min(rank, count - 1)]


def _random_mbr(rng: random.Random, extent: float) -> Rect:
    """A small random object MBR inside the unit square."""
    x, y = rng.random(), rng.random()
    return Rect(x, y, min(1.0, x + extent), min(1.0, y + extent))


def generate_update_stream(initial_ids: Iterable[int], horizon: float,
                           config: UpdateStreamConfig) -> List[UpdateEvent]:
    """The deterministic update event list for one run.

    ``initial_ids`` is the object population at time zero; ``horizon`` is
    the end of the simulated run (the last query arrival).  Events arrive
    Poisson at ``config.update_rate`` per second and are returned in
    arrival order.  The function is pure: the same inputs always produce
    the same event list.
    """
    if config.update_rate <= 0 or horizon <= 0:
        return []
    rng = random.Random(config.seed)
    sizes = ZipfSizeGenerator(mean_bytes=config.mean_object_bytes,
                              theta=config.zipf_theta,
                              rng=random.Random(config.seed + 1))
    live = sorted(initial_ids)
    next_id = (max(live) + 1) if live else 1
    kinds = ("insert", "delete", "modify")
    weights = [config.insert_weight, config.delete_weight, config.modify_weight]
    events: List[UpdateEvent] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(config.update_rate)
        if clock > horizon:
            break
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind != "insert" and len(live) <= config.min_live_objects:
            kind = "insert"
        if kind == "insert":
            object_id = next_id
            next_id += 1
            live.append(object_id)
            events.append(UpdateEvent(index=len(events), arrival_time=clock,
                                      kind="insert", object_id=object_id,
                                      mbr=_random_mbr(rng, config.object_extent),
                                      size_bytes=sizes.sample()))
        elif kind == "delete":
            object_id = _zipf_pick(rng, live, config.zipf_theta)
            live.remove(object_id)
            events.append(UpdateEvent(index=len(events), arrival_time=clock,
                                      kind="delete", object_id=object_id))
        else:
            object_id = _zipf_pick(rng, live, config.zipf_theta)
            events.append(UpdateEvent(index=len(events), arrival_time=clock,
                                      kind="modify", object_id=object_id,
                                      mbr=_random_mbr(rng, config.object_extent),
                                      size_bytes=sizes.sample()))
    return events
