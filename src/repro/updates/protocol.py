"""Client-side cache-consistency protocols for dynamic datasets.

Three protocols, selected per fleet with ``--consistency``:

``versioned`` — version-stamped nodes with lazy (pull-based) validation.
    Before each query the client piggybacks the ids and version stamps of
    every cached item on the uplink; the server answers with a per-item
    verdict — *valid* (unchanged), *refresh* (content changed in place:
    fresh bytes ship and are billed on the downlink) or *drop* (the page
    or object is gone, or moved so its cached position in the hierarchy is
    wrong: the item and its cached descendants are invalidated).  After the
    handshake the cache is coherent with the current tree, so query results
    are exact; the price is per-query validation traffic.

``ttl`` — the classic time-to-live baseline.  Items expire ``ttl_seconds``
    of simulated time after they were last shipped; expired subtrees are
    invalidated before the query runs.  No validation traffic, but results
    may be stale for up to one TTL window.

``none`` — the staleness baseline: never validate, never expire.  With
    ``update_rate == 0`` this is *decision-identical* to a static (PR 3)
    fleet — byte-identical cache digests — because no protocol code path
    touches the cache at all.

All wire traffic is modelled in exact bytes through the shared
:class:`~repro.rtree.sizes.SizeModel` and lands in the per-query
:class:`~repro.core.cost_model.QueryCost` (``sync_uplink_bytes`` /
``sync_downlink_bytes``), so staleness-vs-traffic trade-offs show up in the
ordinary headline metrics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.cache import CacheItemState, ProactiveCache
from repro.core.items import CachedIndexNode, CachedObject, CacheEntry
from repro.core.server import ServerQueryProcessor, ServerResponse
from repro.obs import instrument as obs
from repro.rtree.sizes import SizeModel
from repro.updates.applier import DatasetUpdater
from repro.updates.stream import CONSISTENCY_MODES
from repro.updates.validation import (
    DROP,
    REFRESH,
    LocalValidationService,
    ValidationService,
    ValidationStamp,
    ValidationVerdict,
)

#: Wire bytes of one version stamp (a 32-bit counter).
VERSION_BYTES = 4


@dataclass
class CacheSyncReport:
    """What one pre-query consistency handshake cost and did."""

    uplink_bytes: int = 0
    downlink_bytes: int = 0
    refreshed_items: int = 0
    dropped_items: int = 0

    @property
    def contacted_server(self) -> bool:
        """True when the handshake involved a round trip."""
        return self.uplink_bytes > 0


def full_node_snapshot(server: ServerQueryProcessor,
                       node_id: int) -> CachedIndexNode:
    """The full (all-real-entries) cached form of a node's current content.

    This is what the server ships when a validation verdict says *refresh*:
    the node's complete entry set, coded through its (freshly rebuilt)
    partition tree so later compact-form merges keep working.
    """
    node = server.tree.store.peek(node_id)
    pt = server.partition_tree_for(node_id)
    elements: Dict[str, CacheEntry] = {}
    for entry in node.entries:
        code = pt.entry_code(entry)
        if entry.is_leaf_entry:
            elements[code] = CacheEntry(mbr=entry.mbr, code=code,
                                        object_id=entry.object_id)
        else:
            elements[code] = CacheEntry(mbr=entry.mbr, code=code,
                                        child_id=entry.child_id)
    return CachedIndexNode(node_id=node_id, level=node.level,
                           elements=elements)


class ConsistencyProtocol(abc.ABC):
    """Per-session consistency state and the pre-query synchronisation hook."""

    name = "base"

    @abc.abstractmethod
    def sync(self, cache: ProactiveCache, now: float,
             context: Optional[dict] = None) -> CacheSyncReport:
        """Reconcile the cache with the server before a query executes."""

    def note_response(self, cache: ProactiveCache, response: ServerResponse,
                      now: float) -> None:
        """Record protocol metadata for items a query response just cached."""

    # -- persistence (dynamic halt/resume) -------------------------------- #
    def state_dict(self) -> dict:
        """Snapshot the per-session protocol state for a warm restart.

        Protocols with no state beyond their configuration (rebuilt by the
        session factory) return just the envelope.
        """
        return {"format": 1, "kind": f"{self.name}-protocol"}

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`state_dict`."""
        self._check_snapshot(state)

    def _check_snapshot(self, state: dict) -> None:
        expected = f"{self.name}-protocol"
        if state.get("format") != 1 or state.get("kind") != expected:
            raise ValueError(f"not a {expected} snapshot: "
                             f"{state.get('kind')!r}")


class TTLProtocol(ConsistencyProtocol):
    """Expire cached items a fixed simulated-time budget after shipping."""

    name = "ttl"

    def __init__(self, ttl_seconds: float) -> None:
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.ttl_seconds = ttl_seconds
        self._shipped_at: Dict[str, float] = {}

    def sync(self, cache: ProactiveCache, now: float,
             context: Optional[dict] = None) -> CacheSyncReport:
        """Invalidate every cached subtree older than the TTL (no traffic).

        Dropping an expired ancestor drops its cached descendants with it
        (the cache's structural constraint), even when those are younger.
        """
        report = CacheSyncReport()
        self._shipped_at = {key: at for key, at in self._shipped_at.items()
                            if key in cache.items}
        expired = [key for key in cache.items
                   if now - self._shipped_at.get(key, now) > self.ttl_seconds]
        for key in expired:
            if key in cache.items:
                report.dropped_items += len(cache.invalidate_subtree(key))
        if obs.ENABLED:
            obs.active().event("consistency.sync", protocol=self.name,
                               dropped=report.dropped_items)
        return report

    def note_response(self, cache: ProactiveCache, response: ServerResponse,
                      now: float) -> None:
        """Stamp (or re-stamp) the shipping time of every item now cached."""
        from repro.core.items import item_key_for_node, item_key_for_object
        for snapshot in response.index_snapshots:
            if cache.has_node(snapshot.node_id):
                self._shipped_at[item_key_for_node(snapshot.node_id)] = now
        for delivery in response.deliveries:
            if cache.has_object(delivery.record.object_id):
                self._shipped_at[
                    item_key_for_object(delivery.record.object_id)] = now

    # -- persistence (dynamic halt/resume) -------------------------------- #
    # repro: allow[STM01] ttl_seconds is constructor configuration the
    # session factory re-injects on resume.
    def state_dict(self) -> dict:
        """Snapshot the shipping-time table (simulated-clock stamps)."""
        return {"format": 1, "kind": "ttl-protocol",
                "shipped_at": dict(self._shipped_at)}

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`state_dict`."""
        self._check_snapshot(state)
        self._shipped_at = dict(state["shipped_at"])


class VersionedProtocol(ConsistencyProtocol):
    """Version-stamped nodes with lazy validation against a server service.

    The protocol is pure client-side logic: it builds one
    :class:`~repro.updates.validation.ValidationStamp` per cached item,
    hands the batch to a
    :class:`~repro.updates.validation.ValidationService` and applies the
    verdicts in stamp order.  With the default
    :class:`~repro.updates.validation.LocalValidationService` this is the
    classic in-process deployment; with the networked service the same
    stamps travel over the wire and the same verdicts come back, which is
    what keeps the loopback fleets byte-identical.
    """

    name = "versioned"

    def __init__(self, updater: Optional[DatasetUpdater] = None,
                 size_model: Optional[SizeModel] = None,
                 service: Optional[ValidationService] = None) -> None:
        if service is None:
            if updater is None:
                raise ValueError("VersionedProtocol needs an updater or a "
                                 "validation service")
            service = LocalValidationService(updater)
        if size_model is None:
            if updater is None:
                raise ValueError("a service-backed VersionedProtocol needs "
                                 "an explicit size_model")
            size_model = updater.tree.size_model
        self.updater = updater
        self.service = service
        self.size_model = size_model
        self._node_versions: Dict[int, int] = {}
        self._object_versions: Dict[int, int] = {}

    # -- helpers --------------------------------------------------------- #
    def _stamp_for(self, state: CacheItemState) -> ValidationStamp:
        """The identity/version stamp one cached item piggybacks uplink."""
        parent_id: Optional[int] = None
        if state.parent_key is not None:
            parent_id = int(state.parent_key.partition(":")[2])
        if state.is_index_item:
            item_id = state.payload.node_id
            cached = self._node_versions.get(item_id, 1)
        else:
            item_id = state.payload.object_id
            cached = self._object_versions.get(item_id, 1)
        return ValidationStamp(is_node=state.is_index_item, item_id=item_id,
                               cached_version=cached, parent_id=parent_id)

    def _drop(self, cache: ProactiveCache, key: str,
              report: CacheSyncReport) -> None:
        for removed in cache.invalidate_subtree(key):
            report.dropped_items += 1
            state_kind, _, raw_id = removed.partition(":")
            if state_kind == "node":
                self._node_versions.pop(int(raw_id), None)
            else:
                self._object_versions.pop(int(raw_id), None)

    # -- the handshake ---------------------------------------------------- #
    def sync(self, cache: ProactiveCache, now: float,
             context: Optional[dict] = None) -> CacheSyncReport:
        """Validate every cached item against the server's version stamps.

        The client cannot know whether the dataset changed without asking,
        so every query with a non-empty cache pays the handshake — that
        per-query validation traffic *is* the protocol's cost and is
        exactly what the staleness-vs-traffic comparisons measure.  Only
        an empty cache (nothing to validate) skips the round trip.
        """
        report = CacheSyncReport()
        if not cache.items:
            return report
        # Stamps of items the replacement policy has since evicted are
        # dead weight; prune them so the tables track the live cache.
        self._node_versions = {
            node_id: version for node_id, version in self._node_versions.items()
            if f"node:{node_id}" in cache.items}
        self._object_versions = {
            object_id: version
            for object_id, version in self._object_versions.items()
            if f"obj:{object_id}" in cache.items}
        keys = list(cache.items)
        stamps = [self._stamp_for(cache.items[key]) for key in keys]
        stamp_bytes = self.size_model.pointer_bytes + VERSION_BYTES
        report.uplink_bytes = (self.size_model.query_header_bytes
                               + stamp_bytes * len(keys))
        # Verdict vector: one byte per validated item, plus the header.
        report.downlink_bytes = self.size_model.query_header_bytes + len(keys)
        verdicts = self.service.validate(stamps)
        if len(verdicts) != len(stamps):
            raise ValueError(f"validation service answered {len(verdicts)} "
                             f"verdicts for {len(stamps)} stamps")
        for key, stamp, verdict in zip(keys, stamps, verdicts):
            state = cache.items.get(key)
            if state is None:  # removed with an earlier key's drop cascade
                continue
            if stamp.is_node:
                self._apply_node_verdict(cache, key, state, stamp, verdict,
                                         report, context)
            else:
                self._apply_object_verdict(cache, key, stamp, verdict,
                                           report, context)
        self.service.finish_sync(report.uplink_bytes, report.downlink_bytes)
        if obs.ENABLED:
            obs.active().event("consistency.sync", protocol=self.name,
                               validated=len(keys),
                               refreshed=report.refreshed_items,
                               dropped=report.dropped_items,
                               uplink_bytes=report.uplink_bytes,
                               downlink_bytes=report.downlink_bytes)
        return report

    def _apply_node_verdict(self, cache: ProactiveCache, key: str,
                            state: CacheItemState, stamp: ValidationStamp,
                            verdict: ValidationVerdict,
                            report: CacheSyncReport,
                            context: Optional[dict]) -> None:
        if verdict.action == DROP:
            self._drop(cache, key, report)
            return
        if verdict.action != REFRESH:
            return
        snapshot = verdict.node
        if snapshot is None:
            raise ValueError("node REFRESH verdict without a snapshot")
        size = snapshot.size_bytes(self.size_model)
        report.downlink_bytes += size
        cache.refresh_item(key, snapshot, size, context)
        report.refreshed_items += 1
        self._node_versions[stamp.item_id] = verdict.version
        if verdict.is_leaf:
            # Cached objects filed under this leaf must still be owned by
            # it; a split may have moved them to a sibling page.
            owned = {element.object_id
                     for element in snapshot.elements.values()
                     if element.object_id is not None}
            for child_key in list(state.cached_children):
                child = cache.items.get(child_key)
                if (child is not None and not child.is_index_item
                        and child.payload.object_id not in owned):
                    self._drop(cache, child_key, report)

    def _apply_object_verdict(self, cache: ProactiveCache, key: str,
                              stamp: ValidationStamp,
                              verdict: ValidationVerdict,
                              report: CacheSyncReport,
                              context: Optional[dict]) -> None:
        if verdict.action == DROP:
            self._drop(cache, key, report)
            return
        if verdict.action != REFRESH:
            return
        record = verdict.record
        if record is None:
            raise ValueError("object REFRESH verdict without a record")
        payload = CachedObject(object_id=stamp.item_id, mbr=record.mbr,
                               size_bytes=record.size_bytes)
        report.downlink_bytes += record.size_bytes
        cache.refresh_item(key, payload, record.size_bytes, context)
        report.refreshed_items += 1
        self._object_versions[stamp.item_id] = verdict.version

    # -- persistence (dynamic halt/resume) -------------------------------- #
    # repro: allow[STM01] updater and size_model are live wiring the
    # session factory re-injects on resume.
    def state_dict(self) -> dict:
        """Snapshot the per-item version tables (id keys become strings)."""
        return {
            "format": 1, "kind": "versioned-protocol",
            "node_versions": {str(node_id): version for node_id, version
                              in self._node_versions.items()},
            "object_versions": {str(object_id): version for object_id, version
                                in self._object_versions.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`state_dict`."""
        self._check_snapshot(state)
        self._node_versions = {int(node_id): version for node_id, version
                               in state["node_versions"].items()}
        self._object_versions = {int(object_id): version for object_id, version
                                 in state["object_versions"].items()}

    # -- learning versions from responses --------------------------------- #
    def note_response(self, cache: ProactiveCache, response: ServerResponse,
                      now: float) -> None:
        """Stamp the versions the server just shipped for cached items.

        The server stamped the shipped content with its current versions,
        so the lookup is metadata the response already carried — it is not
        billed as extra traffic, locally or over the wire.
        """
        node_ids = [snapshot.node_id for snapshot in response.index_snapshots
                    if cache.has_node(snapshot.node_id)]
        object_ids = [delivery.record.object_id
                      for delivery in response.deliveries
                      if cache.has_object(delivery.record.object_id)]
        if not node_ids and not object_ids:
            return
        node_versions, object_versions = self.service.current_versions(
            node_ids, object_ids)
        self._node_versions.update(node_versions)
        self._object_versions.update(object_versions)


def make_protocol(mode: str, updater: Optional[DatasetUpdater] = None,
                  size_model: Optional[SizeModel] = None,
                  ttl_seconds: float = 120.0,
                  service: Optional[ValidationService] = None,
                  ) -> Optional[ConsistencyProtocol]:
    """Instantiate a consistency protocol by CLI name.

    Returns ``None`` for ``"none"``: the staleness baseline attaches no
    protocol object at all, so the static code path stays literally
    untouched — which is what makes the zero-update digest-identity
    guarantee trivial to uphold.  ``versioned`` requires an ``updater``
    (it validates against the updater's registry and live tree) or an
    explicit validation ``service`` (the networked deployments pass the
    wire-backed one, plus the fleet's shared ``size_model``).
    """
    key = (mode or "none").lower()
    if key not in CONSISTENCY_MODES:
        raise ValueError(f"unknown consistency mode {mode!r}; expected one "
                         f"of {', '.join(CONSISTENCY_MODES)}")
    if key == "none":
        return None
    if key == "ttl":
        return TTLProtocol(ttl_seconds=ttl_seconds)
    if updater is None and service is None:
        raise ValueError("versioned consistency needs a DatasetUpdater or "
                         "a ValidationService")
    return VersionedProtocol(updater, size_model=size_model, service=service)
