"""Proactive caching — the paper's primary contribution.

The package is organised around the three-stage processing flow of Figure 3:

1. :class:`~repro.core.client.ClientQueryProcessor` executes the query over
   the :class:`~repro.core.cache.ProactiveCache` (Algorithm 1) and, if it
   cannot finish locally, builds a :class:`~repro.core.remainder.RemainderQuery`.
2. :class:`~repro.core.server.ServerQueryProcessor` resumes the execution
   from the shipped frontier and returns the remaining result objects plus a
   supporting index in full / compact / ``d+``-level form
   (:mod:`repro.core.supporting_index`).
3. The client returns ``R = Rs ∪ Rr`` and inserts the response into the
   cache, which evicts with one of the replacement policies in
   :mod:`repro.core.replacement` (GRD3 by default).

:mod:`repro.core.adaptive` implements the fmr-driven adaptation of the
compact-form depth ``d`` and :mod:`repro.core.cost_model` the response-time
and hit-rate accounting of Section 4.1.
"""

from repro.core.items import CacheEntry, CachedIndexNode, CachedObject, FrontierTarget, TargetKind
from repro.core.cache import ProactiveCache
from repro.core.client import ClientQueryProcessor, ClientExecution
from repro.core.remainder import RemainderQuery
from repro.core.server import ServerQueryProcessor, ServerResponse, IndexNodeSnapshot, ObjectDelivery
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy
from repro.core.adaptive import AdaptiveDepthController
from repro.core.cost_model import QueryCost, ResponseTimeModel

__all__ = [
    "CacheEntry",
    "CachedIndexNode",
    "CachedObject",
    "FrontierTarget",
    "TargetKind",
    "ProactiveCache",
    "ClientQueryProcessor",
    "ClientExecution",
    "RemainderQuery",
    "ServerQueryProcessor",
    "ServerResponse",
    "IndexNodeSnapshot",
    "ObjectDelivery",
    "IndexForm",
    "SupportingIndexPolicy",
    "AdaptiveDepthController",
    "QueryCost",
    "ResponseTimeModel",
]
