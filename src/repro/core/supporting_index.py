"""Supporting-index policies: full form, compact form and the adaptive d+ form.

The server must decide *how much* index detail to ship alongside the result
objects.  Section 4 of the paper compares three choices:

* **FPRO** — ship the full form of every accessed node (an exact page copy);
* **CPRO** — ship the normal compact form, i.e. only the partition-tree cut
  the remainder query actually touched;
* **APRO** — ship the ``d+``-level compact form where ``d`` adapts to the
  client's recently reported false-miss rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._compat import DATACLASS_SLOTS


class IndexForm(enum.Enum):
    """Which representation of an accessed node the server ships."""

    FULL = "full"
    COMPACT = "compact"
    ADAPTIVE = "adaptive"


@dataclass(**DATACLASS_SLOTS)
class SupportingIndexPolicy:
    """The server-side policy for building the supporting index ``Ir``.

    ``depth`` is only meaningful for :attr:`IndexForm.ADAPTIVE`; it is the
    current ``d`` of the ``d+``-level compact form and is updated by the
    :class:`~repro.core.adaptive.AdaptiveDepthController`.
    """

    form: IndexForm = IndexForm.ADAPTIVE
    depth: int = 1
    max_depth: int = 16

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError("depth must be non-negative")

    def effective_depth(self, partition_tree_height: int) -> int:
        """The expansion depth to use for a node with the given partition-tree height."""
        if self.form is IndexForm.FULL:
            return partition_tree_height
        if self.form is IndexForm.COMPACT:
            return 0
        return min(self.depth, partition_tree_height)

    @property
    def uses_partition_trees(self) -> bool:
        """Whether the server traversal should walk the binary partition trees."""
        return self.form is not IndexForm.FULL

    @staticmethod
    def full() -> "SupportingIndexPolicy":
        """The FPRO policy."""
        return SupportingIndexPolicy(form=IndexForm.FULL)

    @staticmethod
    def compact() -> "SupportingIndexPolicy":
        """The CPRO policy."""
        return SupportingIndexPolicy(form=IndexForm.COMPACT)

    @staticmethod
    def adaptive(initial_depth: int = 1) -> "SupportingIndexPolicy":
        """The APRO policy with the given initial ``d``."""
        return SupportingIndexPolicy(form=IndexForm.ADAPTIVE, depth=initial_depth)
