"""Adaptation of the compact-form depth ``d`` from the false-miss rate.

The client periodically reports its recent false-miss rate (fmr) to the
server.  If the reported value exceeds the previously recorded one by more
than the sensitivity ``s`` (relatively), the recent queries evidently need
finer entry information around the cached objects, so ``d`` is increased by
one; if it dropped by more than ``s`` the cached index is over-provisioned
and ``d`` is decreased by one (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro._compat import DATACLASS_SLOTS
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy


@dataclass(**DATACLASS_SLOTS)
class AdaptiveDepthController:
    """Client-side fmr bookkeeping plus the server-side ``d`` update rule.

    Parameters
    ----------
    policy:
        The supporting-index policy whose ``depth`` this controller adjusts.
        Only :attr:`IndexForm.ADAPTIVE` policies are ever modified.
    sensitivity:
        The paper's ``s`` (default 20 %).
    report_period:
        Number of queries between two fmr reports to the server.
    max_depth / min_depth:
        Clamp for ``d``.
    """

    policy: SupportingIndexPolicy
    sensitivity: float = 0.2
    report_period: int = 50
    min_depth: int = 0
    max_depth: int = 16
    last_reported_fmr: Optional[float] = None
    _window_false: float = 0.0
    _window_cached: float = 0.0
    _queries_in_window: int = 0
    history: List[float] = field(default_factory=list)

    def record_query(self, cached_result_bytes: float, saved_result_bytes: float) -> None:
        """Record one query's contribution to the running fmr window.

        ``cached_result_bytes`` is ``|R ∩ C|`` and ``saved_result_bytes`` is
        ``|Rs ∩ C| = |Rs|`` (saved objects are by construction cached).
        """
        self._window_cached += cached_result_bytes
        self._window_false += max(0.0, cached_result_bytes - saved_result_bytes)
        self._queries_in_window += 1
        if self._queries_in_window >= self.report_period:
            self.report()

    def window_fmr(self) -> float:
        """The fmr accumulated in the current window."""
        if self._window_cached <= 0:
            return 0.0
        return self._window_false / self._window_cached

    def report(self) -> float:
        """Close the window, report the fmr to the server and adapt ``d``."""
        fmr = self.window_fmr()
        self.history.append(fmr)
        self._apply(fmr)
        self._window_false = 0.0
        self._window_cached = 0.0
        self._queries_in_window = 0
        return fmr

    def _apply(self, fmr: float) -> None:
        if self.policy.form is not IndexForm.ADAPTIVE:
            self.last_reported_fmr = fmr
            return
        last = self.last_reported_fmr
        if last is None:
            self.last_reported_fmr = fmr
            return
        threshold = abs(last) * self.sensitivity
        if fmr > last + max(threshold, 1e-9):
            self.policy.depth = min(self.max_depth, self.policy.depth + 1)
        elif fmr < last - max(threshold, 1e-9):
            self.policy.depth = max(self.min_depth, self.policy.depth - 1)
        self.last_reported_fmr = fmr

    @property
    def depth(self) -> int:
        """The current compact-form expansion depth ``d``."""
        return self.policy.depth

    # ------------------------------------------------------------------ #
    # snapshot / restore (warm-restart persistence)
    # ------------------------------------------------------------------ #
    # repro: allow[STM01] policy/sensitivity/report_period/min_depth/max_depth
    # are constructor configuration, re-injected by from_state_dict's caller.
    def state_dict(self) -> dict:
        """The controller's mutable state as JSON-serialisable primitives."""
        return {
            "last_reported_fmr": self.last_reported_fmr,
            "window_false": self._window_false,
            "window_cached": self._window_cached,
            "queries_in_window": self._queries_in_window,
            "history": list(self.history),
            "depth": self.policy.depth,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (including the policy's depth)."""
        self.last_reported_fmr = state["last_reported_fmr"]
        self._window_false = state["window_false"]
        self._window_cached = state["window_cached"]
        self._queries_in_window = state["queries_in_window"]
        self.history = list(state["history"])
        self.policy.depth = state["depth"]
