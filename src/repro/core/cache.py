"""The proactive cache: items, metadata and constrained eviction.

The cache holds two kinds of items — index-node snapshots and data objects —
organised in the same hierarchy as the R-tree itself: a node snapshot's
parent item is the snapshot of its R-tree parent, and a cached object's
parent is the leaf-node snapshot that owns it.  Section 5's constraint
("if item *i* is removed, all its descendants must be removed") is enforced
structurally: only *leaf items* (items with no cached children) can be chosen
as victims, and cascading bookkeeping keeps the leaf set correct.

Per-item metadata matches Section 5.2: size, insertion time (query sequence
number), hit-query count, parent id and number of cached children.

All aggregate views the replacement policies sit in hot loops on — the leaf
set, ``used_bytes`` and the index/object byte split — are maintained
incrementally on every insert/evict instead of being recomputed by scanning
``items``, and ``evict_subtree`` walks an explicit stack so arbitrarily deep
snapshot chains cannot exhaust the interpreter's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Union

from repro._compat import DATACLASS_SLOTS
from repro.core.items import (
    CachedIndexNode,
    CachedObject,
    CacheEntry,
    item_key_for_node,
    item_key_for_object,
)
from repro.obs import instrument as obs
from repro.rtree.sizes import SizeModel


Payload = Union[CachedIndexNode, CachedObject]


@dataclass(**DATACLASS_SLOTS)
class CacheItemState:
    """A cached item plus the metadata needed by the replacement policies."""

    key: str
    payload: Payload
    size_bytes: int
    insert_time: int
    parent_key: Optional[str]
    # The query that caused the insertion counts as the first hit, so a fresh
    # item starts with prob = 1 and decays if it is never used again.
    hit_queries: int = 1
    last_access: int = 0
    cached_children: Set[str] = field(default_factory=set)

    @property
    def is_leaf_item(self) -> bool:
        """True when no cached item depends on this one (evictable)."""
        return not self.cached_children

    @property
    def is_index_item(self) -> bool:
        """True for index-node snapshots, False for data objects."""
        return isinstance(self.payload, CachedIndexNode)

    def access_probability(self, current_time: int) -> float:
        """``prob(i)`` of Section 5.2: hits per query the item has lived through."""
        lifetime = max(1, current_time - self.insert_time + 1)
        return self.hit_queries / lifetime


class ProactiveCache:
    """Byte-budgeted client cache of index snapshots and objects.

    Parameters
    ----------
    capacity_bytes:
        Total cache budget ``M``.
    size_model:
        Byte accounting shared with the rest of the system.
    replacement_policy:
        A policy from :mod:`repro.core.replacement`; may be ``None`` for an
        unbounded cache (useful in unit tests).
    """

    def __init__(self, capacity_bytes: int, size_model: Optional[SizeModel] = None,
                 replacement_policy: Optional["ReplacementPolicy"] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.size_model = size_model or SizeModel()
        self.replacement_policy = replacement_policy
        self.items: Dict[str, CacheItemState] = {}
        self.used_bytes = 0
        self.clock = 0
        self.evictions = 0
        self.rejected_inserts = 0
        # Consistency-protocol counters (repro.updates): items dropped
        # because the server-side original changed / expired, and payloads
        # refreshed in place.  Deliberately NOT part of state_dict(), so a
        # zero-update run's digest is byte-identical to a static run's.
        self.invalidations = 0
        self.refreshes = 0
        # Incremental aggregates: the set of evictable (childless) items as an
        # insertion-ordered dict-backed set, plus the index/object byte split.
        self._leaf_keys: Dict[str, None] = {}
        self._index_bytes = 0
        self._object_bytes = 0

    # ------------------------------------------------------------------ #
    # clock / bookkeeping
    # ------------------------------------------------------------------ #
    def tick(self) -> int:
        """Advance the query clock (call once per issued query)."""
        self.clock += 1
        return self.clock

    def touch(self, key: str) -> None:
        """Record that the item contributed to answering the current query."""
        state = self.items.get(key)
        if state is None:
            return
        state.hit_queries += 1
        state.last_access = self.clock

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def get_node(self, node_id: int) -> Optional[CachedIndexNode]:
        """The cached snapshot of node ``node_id`` if present."""
        state = self.items.get(item_key_for_node(node_id))
        if state is None:
            return None
        return state.payload  # type: ignore[return-value]

    def get_object(self, object_id: int) -> Optional[CachedObject]:
        """The cached object ``object_id`` if present."""
        state = self.items.get(item_key_for_object(object_id))
        if state is None:
            return None
        return state.payload  # type: ignore[return-value]

    def has_node(self, node_id: int) -> bool:
        """True when a snapshot of the node is cached."""
        return item_key_for_node(node_id) in self.items

    def has_object(self, object_id: int) -> bool:
        """True when the object is cached."""
        return item_key_for_object(object_id) in self.items

    def cached_object_ids(self) -> Set[int]:
        """Ids of all cached objects."""
        return {state.payload.object_id for state in self.items.values()
                if not state.is_index_item}

    def cached_node_ids(self) -> Set[int]:
        """Ids of all cached node snapshots."""
        return {state.payload.node_id for state in self.items.values()
                if state.is_index_item}

    def leaf_keys(self) -> List[str]:
        """Keys of all currently evictable items (maintained incrementally)."""
        return list(self._leaf_keys)

    def leaf_items(self) -> List[CacheItemState]:
        """All currently evictable items."""
        items = self.items
        return [items[key] for key in self._leaf_keys]

    def index_bytes(self) -> int:
        """Bytes occupied by index snapshots."""
        return self._index_bytes

    def object_bytes(self) -> int:
        """Bytes occupied by data objects."""
        return self._object_bytes

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, key: str) -> bool:
        return key in self.items

    # ------------------------------------------------------------------ #
    # internal bookkeeping helpers
    # ------------------------------------------------------------------ #
    def _register(self, state: CacheItemState) -> None:
        """Add ``state`` to items, aggregates and the parent/leaf structure."""
        self.items[state.key] = state
        self.used_bytes += state.size_bytes
        if state.is_index_item:
            self._index_bytes += state.size_bytes
        else:
            self._object_bytes += state.size_bytes
        self._leaf_keys[state.key] = None
        if state.parent_key is not None:
            parent = self.items[state.parent_key]
            parent.cached_children.add(state.key)
            self._leaf_keys.pop(state.parent_key, None)

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert_node_snapshot(self, snapshot: CachedIndexNode,
                             parent_node_id: Optional[int],
                             context: Optional[dict] = None) -> bool:
        """Insert (or merge) an index-node snapshot.

        Returns False when the snapshot had to be rejected, e.g. because its
        parent is not cached (which would make it unreachable) or because it
        cannot fit even after eviction.
        """
        key = item_key_for_node(snapshot.node_id)
        parent_key = item_key_for_node(parent_node_id) if parent_node_id is not None else None
        if parent_key is not None and parent_key not in self.items:
            self.rejected_inserts += 1
            return False

        existing = self.items.get(key)
        if existing is not None:
            cached_node: CachedIndexNode = existing.payload  # type: ignore[assignment]
            old_size = existing.size_bytes
            # A re-shipped snapshot means the node served the current query:
            # refresh the replacement metadata or frequently merged nodes
            # decay under GRD scoring as if they were never touched.  Skip
            # the hit bump when the walk already touched the node this query
            # — prob(i) counts queries served, not touches.
            if existing.last_access < self.clock:
                existing.hit_queries += 1
            existing.last_access = self.clock
            cached_node.merge(snapshot.elements.values())
            new_size = cached_node.size_bytes(self.size_model)
            delta = new_size - old_size
            if delta > 0 and not self._make_room(delta, context, protect={key}):
                # Could not grow: keep the merged payload but accept overrun
                # of at most one node (a few hundred bytes).
                pass
            existing.size_bytes = new_size
            self.used_bytes += delta
            self._index_bytes += delta
            return True

        size = snapshot.size_bytes(self.size_model)
        if not self._make_room(size, context, protect={parent_key} if parent_key else set()):
            self.rejected_inserts += 1
            return False
        if parent_key is not None and parent_key not in self.items:
            # The parent was evicted while making room; the snapshot would be
            # unreachable, so drop it.
            self.rejected_inserts += 1
            return False
        state = CacheItemState(key=key, payload=snapshot.copy(), size_bytes=size,
                               insert_time=self.clock, parent_key=parent_key,
                               last_access=self.clock)
        self._register(state)
        return True

    def insert_object(self, cached_object: CachedObject, parent_node_id: Optional[int],
                      context: Optional[dict] = None) -> bool:
        """Insert a data object under its owning leaf node."""
        key = item_key_for_object(cached_object.object_id)
        if key in self.items:
            self.items[key].last_access = self.clock
            return True
        parent_key = item_key_for_node(parent_node_id) if parent_node_id is not None else None
        if parent_key is not None and parent_key not in self.items:
            self.rejected_inserts += 1
            return False
        size = cached_object.size_bytes
        protect = {parent_key} if parent_key else set()
        if not self._make_room(size, context, protect=protect):
            self.rejected_inserts += 1
            return False
        if parent_key is not None and parent_key not in self.items:
            self.rejected_inserts += 1
            return False
        state = CacheItemState(key=key, payload=cached_object, size_bytes=size,
                               insert_time=self.clock, parent_key=parent_key,
                               last_access=self.clock)
        self._register(state)
        return True

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #
    def evict(self, key: str) -> None:
        """Remove an item (must be a leaf item) and update the bookkeeping."""
        state = self.items[key]
        if state.cached_children:
            raise ValueError(f"cannot evict {key}: it still has cached children")
        del self.items[key]
        self._leaf_keys.pop(key, None)
        self.used_bytes -= state.size_bytes
        if state.is_index_item:
            self._index_bytes -= state.size_bytes
        else:
            self._object_bytes -= state.size_bytes
        self.evictions += 1
        if obs.ENABLED:
            obs.active().count("repro_cache_evictions_total", 1.0)
        if state.parent_key is not None:
            parent = self.items.get(state.parent_key)
            if parent is not None:
                parent.cached_children.discard(key)
                if not parent.cached_children:
                    self._leaf_keys[state.parent_key] = None

    def evict_subtree(self, key: str) -> List[str]:
        """Remove an item together with all its cached descendants.

        Returns the keys removed, in leaf-to-root order (every descendant
        before its ancestor).  Iterative so that snapshot chains deeper than
        the interpreter's recursion limit are handled.
        """
        removed: List[str] = []
        if key not in self.items:
            return removed
        # Depth-first preorder; reversing it yields a valid leaf-to-root
        # eviction order (children always appear after their parent).
        order: List[str] = []
        stack = [key]
        while stack:
            current = stack.pop()
            state = self.items.get(current)
            if state is None:
                continue
            order.append(current)
            stack.extend(state.cached_children)
        for current in reversed(order):
            self.evict(current)
            removed.append(current)
        return removed

    def invalidate_subtree(self, key: str) -> List[str]:
        """Drop an item and its cached descendants because it went stale.

        Same structural walk as :meth:`evict_subtree` (the incremental leaf
        set, byte split and eviction heaps all stay coherent), but tracked
        separately in :attr:`invalidations` so consistency-protocol drops
        can be told apart from capacity evictions in reports.
        """
        removed = self.evict_subtree(key)
        self.invalidations += len(removed)
        if obs.ENABLED and removed:
            obs.active().count("repro_cache_invalidations_total",
                               float(len(removed)))
        return removed

    def refresh_item(self, key: str, payload: Payload, size_bytes: int,
                     context: Optional[dict] = None) -> None:
        """Replace a cached item's payload with freshly shipped content.

        Used by the versioned consistency protocol when the server says a
        cached page or object changed in place.  Replacement metadata (hit
        count, insert time, hierarchy links) survives — a refresh is not a
        query hit.  When the fresh payload is bigger, the policy tries to
        make room first; like the snapshot-merge path, an overrun is
        accepted rather than dropping a just-validated item.
        """
        state = self.items[key]
        if type(payload) is not type(state.payload):
            raise ValueError(f"cannot refresh {key} with a "
                             f"{type(payload).__name__} payload")
        delta = size_bytes - state.size_bytes
        if delta > 0:
            self._make_room(delta, context, protect={key})
        state.payload = payload
        state.size_bytes = size_bytes
        self.used_bytes += delta
        if state.is_index_item:
            self._index_bytes += delta
        else:
            self._object_bytes += delta
        self.refreshes += 1
        if obs.ENABLED:
            obs.active().count("repro_cache_refreshes_total", 1.0)

    def restore_item(self, state: CacheItemState) -> None:
        """Re-admit a previously evicted item (GRD3's step-(6) correction).

        The item is restored childless; its parent (if any) must already be
        cached.  All incremental aggregates are maintained, unlike a raw
        ``items[key] = state`` write.
        """
        if state.parent_key is not None and state.parent_key not in self.items:
            raise ValueError(
                f"cannot restore {state.key}: parent {state.parent_key} not cached")
        state.cached_children = set()
        self._register(state)

    def _make_room(self, bytes_needed: int, context: Optional[dict],
                   protect: Set[str]) -> bool:
        """Free space so that ``bytes_needed`` more bytes fit."""
        if bytes_needed > self.capacity_bytes:
            return False
        if self.used_bytes + bytes_needed <= self.capacity_bytes:
            return True
        if self.replacement_policy is None:
            return False
        freed = self.replacement_policy.make_room(self, bytes_needed, context or {}, protect)
        return freed and self.used_bytes + bytes_needed <= self.capacity_bytes

    # ------------------------------------------------------------------ #
    # snapshot / restore (warm-restart persistence)
    # ------------------------------------------------------------------ #
    # repro: allow[STM01] size_model is constructor config; used_bytes,
    # _leaf_keys, _index_bytes and _object_bytes are derived aggregates
    # rebuilt by _register on load; invalidations/refreshes are consistency
    # counters deliberately excluded so static-workload digests match.
    def state_dict(self) -> dict:
        """The cache's complete state as JSON-serialisable primitives.

        Captures everything a warm restart needs to continue *exactly* where
        the session stopped: the byte budget, the query clock, the eviction
        counters, every item with its replacement metadata (insert time, hit
        count, last access) and — crucially — the two orderings the policies
        are sensitive to: the ``items`` insertion order and the leaf-set
        order (GRD3's step-(6) worklist pops leaves in that order).  Floats
        round-trip exactly through JSON, so ``save → load → save`` of a
        snapshot is byte-stable.
        """
        return {
            "format": 1,
            "capacity_bytes": self.capacity_bytes,
            "clock": self.clock,
            "evictions": self.evictions,
            "rejected_inserts": self.rejected_inserts,
            "replacement_policy": (self.replacement_policy.name
                                   if self.replacement_policy is not None else None),
            "items": [self._item_dict(state) for state in self.items.values()],
            "leaf_order": list(self._leaf_keys),
        }

    @staticmethod
    def _item_dict(state: CacheItemState) -> dict:
        payload = state.payload
        if isinstance(payload, CachedIndexNode):
            encoded = {
                "kind": "node",
                "node_id": payload.node_id,
                "level": payload.level,
                "elements": [
                    {"code": element.code,
                     "mbr": [element.mbr.min_x, element.mbr.min_y,
                             element.mbr.max_x, element.mbr.max_y],
                     "child_id": element.child_id,
                     "object_id": element.object_id}
                    for element in payload.elements.values()],
            }
        else:
            encoded = {
                "kind": "object",
                "object_id": payload.object_id,
                "mbr": [payload.mbr.min_x, payload.mbr.min_y,
                        payload.mbr.max_x, payload.mbr.max_y],
                "size_bytes": payload.size_bytes,
            }
        return {
            "key": state.key,
            "payload": encoded,
            "size_bytes": state.size_bytes,
            "insert_time": state.insert_time,
            "parent_key": state.parent_key,
            "hit_queries": state.hit_queries,
            "last_access": state.last_access,
        }

    @classmethod
    def from_state_dict(cls, state: dict, size_model: Optional[SizeModel] = None,
                        replacement_policy: Optional["ReplacementPolicy"] = None,
                        ) -> "ProactiveCache":
        """Rebuild a cache from :meth:`state_dict` output.

        ``replacement_policy`` overrides the snapshot's recorded policy name;
        when omitted the recorded name is instantiated (or ``None`` kept).
        """
        from repro.geometry import Rect
        if state.get("format") != 1:
            raise ValueError(f"unsupported cache snapshot format "
                             f"{state.get('format')!r}")
        if replacement_policy is None and state.get("replacement_policy"):
            from repro.core.replacement import make_policy
            replacement_policy = make_policy(state["replacement_policy"])
        cache = cls(capacity_bytes=state["capacity_bytes"], size_model=size_model,
                    replacement_policy=replacement_policy)
        cache.clock = state["clock"]
        for item in state["items"]:
            encoded = item["payload"]
            if encoded["kind"] == "node":
                payload: Payload = CachedIndexNode(
                    node_id=encoded["node_id"], level=encoded["level"],
                    elements={e["code"]: CacheEntry(mbr=Rect(*e["mbr"]),
                                                    code=e["code"],
                                                    child_id=e["child_id"],
                                                    object_id=e["object_id"])
                              for e in encoded["elements"]})
            else:
                payload = CachedObject(object_id=encoded["object_id"],
                                       mbr=Rect(*encoded["mbr"]),
                                       size_bytes=encoded["size_bytes"])
            cache._register(CacheItemState(
                key=item["key"], payload=payload, size_bytes=item["size_bytes"],
                insert_time=item["insert_time"], parent_key=item["parent_key"],
                hit_queries=item["hit_queries"], last_access=item["last_access"]))
        # _register rebuilt a structurally correct leaf set; impose the
        # snapshot's exact iteration order on it (policy tie-breaks and the
        # GRD3 step-(6) worklist depend on it).
        saved_order = state["leaf_order"]
        if set(saved_order) != set(cache._leaf_keys):
            raise ValueError("cache snapshot leaf_order does not match the "
                             "reconstructed leaf set")
        cache._leaf_keys = {key: None for key in saved_order}
        cache.evictions = state["evictions"]
        cache.rejected_inserts = state["rejected_inserts"]
        return cache

    def content_digest(self) -> str:
        """A stable hex digest of the full cache state.

        Two caches with identical contents *and* identical replacement
        metadata / orderings produce the same digest — the equality the
        warm-restart tests assert between a killed-and-resumed session and
        an uninterrupted one.
        """
        import hashlib
        import json
        canonical = json.dumps(self.state_dict(), sort_keys=False,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants (used by the tests)."""
        computed = sum(state.size_bytes for state in self.items.values())
        assert computed == self.used_bytes, "used_bytes out of sync"
        index_total = sum(s.size_bytes for s in self.items.values() if s.is_index_item)
        object_total = sum(s.size_bytes for s in self.items.values() if not s.is_index_item)
        assert index_total == self._index_bytes, "index_bytes out of sync"
        assert object_total == self._object_bytes, "object_bytes out of sync"
        leaves = {key for key, state in self.items.items() if state.is_leaf_item}
        assert leaves == set(self._leaf_keys), "leaf set out of sync"
        for key, state in self.items.items():
            if state.parent_key is not None:
                assert state.parent_key in self.items, f"{key} is unreachable"
                assert key in self.items[state.parent_key].cached_children
            for child_key in state.cached_children:
                assert child_key in self.items
                assert self.items[child_key].parent_key == key


# Imported late to avoid a circular import in type checking contexts.
from repro.core.replacement.base import ReplacementPolicy  # noqa: E402  (re-export for typing)
