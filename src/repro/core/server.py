"""Server-side query processing for proactive caching.

The server owns the full R-tree (and the offline-built binary partition tree
of every node).  Given a remainder query it *resumes* execution from the
shipped frontier; given a fresh query (no cached state at the client) it
starts from the root.  While processing it records which partition-tree
regions of each accessed node were touched, and from that record it builds
the supporting index ``Ir`` in the form requested by the
:class:`~repro.core.supporting_index.SupportingIndexPolicy` (full / compact /
``d+``-level).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.core.items import CacheEntry, FrontierTarget, TargetKind
from repro.core.remainder import FrontierItem, RemainderQuery
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy
from repro.geometry import Point, Rect
from repro.obs import instrument as obs
from repro.obs.instrument import perf_clock
from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.partition_tree import PartitionTree, SuperEntry, build_partition_trees
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import RTree
from repro.workload.queries import JoinQuery, KNNQuery, Query, RangeQuery


@dataclass(**DATACLASS_SLOTS)
class IndexNodeSnapshot:
    """One accessed node, in the form the server decided to ship."""

    node_id: int
    level: int
    parent_id: Optional[int]
    elements: List[CacheEntry]

    def size_bytes(self, size_model: SizeModel) -> int:
        """Wire footprint of the snapshot."""
        return size_model.pointer_bytes + sum(
            element.size_bytes(size_model) for element in self.elements)


@dataclass(**DATACLASS_SLOTS)
class ObjectDelivery:
    """One result object shipped to the client, with its owning leaf node.

    A ``confirm_only`` delivery answers a confirmation-only frontier target:
    the client already holds the object payload, so only its id travels on
    the wire and :attr:`size_bytes` (the payload wire footprint) is zero.
    """

    record: ObjectRecord
    parent_node_id: Optional[int]
    confirm_only: bool = False

    @property
    def size_bytes(self) -> int:
        return 0 if self.confirm_only else self.record.size_bytes


@dataclass(**DATACLASS_SLOTS)
class ServerResponse:
    """The server's answer to a (remainder) query: ``Rr`` and ``Ir``."""

    deliveries: List[ObjectDelivery] = field(default_factory=list)
    index_snapshots: List[IndexNodeSnapshot] = field(default_factory=list)
    accessed_node_count: int = 0
    examined_elements: int = 0
    cpu_seconds: float = 0.0

    def result_bytes(self) -> int:
        """Bytes of the downloaded result objects (``|Rr|``, payloads only)."""
        return sum(delivery.size_bytes for delivery in self.deliveries)

    def confirmed_cached_bytes(self) -> int:
        """Bytes of confirmation-only results the client already holds."""
        return sum(delivery.record.size_bytes for delivery in self.deliveries
                   if delivery.confirm_only)

    def confirmation_count(self) -> int:
        """Number of confirmation-only deliveries."""
        return sum(1 for delivery in self.deliveries if delivery.confirm_only)

    def confirmation_bytes(self, size_model: SizeModel) -> int:
        """Wire footprint of the confirmation id list."""
        return size_model.id_list_bytes(self.confirmation_count())

    def index_bytes(self, size_model: SizeModel) -> int:
        """Bytes of the supporting index (``|Ir|``)."""
        return sum(snapshot.size_bytes(size_model) for snapshot in self.index_snapshots)

    def downlink_bytes(self, size_model: SizeModel) -> int:
        """Total downlink bytes of the response."""
        return (self.result_bytes() + self.index_bytes(size_model)
                + self.confirmation_bytes(size_model))

    def result_object_ids(self) -> Set[int]:
        """Ids of the delivered result objects (downloads and confirmations)."""
        return {delivery.record.object_id for delivery in self.deliveries}


@dataclass(**DATACLASS_SLOTS)
class _AccessRecord:
    """Which parts of one node the traversal touched."""

    bases: Set[str] = field(default_factory=set)
    expanded: Set[str] = field(default_factory=set)
    full_access: bool = False


class ServerQueryProcessor:
    """Executes (remainder) queries over the full R-tree."""

    def __init__(self, tree: RTree, size_model: Optional[SizeModel] = None,
                 partition_trees: Optional[Dict[int, PartitionTree]] = None) -> None:
        self.tree = tree
        self.size_model = size_model or tree.size_model
        if partition_trees is None:
            partition_trees = build_partition_trees(tree.all_nodes())
        self.partition_trees = partition_trees
        #: Version registry of the dynamic-dataset updater, when one drives
        #: this server.  Queries pin the committed version at start (MVCC):
        #: pinning raises mid-batch, so a reader can never observe a
        #: half-applied update batch.  Duck-typed to keep the core tier
        #: below :mod:`repro.updates`.
        self.registry: Optional[object] = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def root_id(self) -> int:
        """Page id of the R-tree root."""
        return self.tree.root_id

    @property
    def root_mbr(self) -> Rect:
        """MBR of the root node (unit square for an empty tree)."""
        root = self.tree.root
        return root.mbr() if root.entries else Rect.unit()

    def execute(self, query: Query, remainder: Optional[RemainderQuery] = None,
                policy: Optional[SupportingIndexPolicy] = None) -> ServerResponse:
        """Process ``query`` (resuming from ``remainder`` when given)."""
        policy = policy or SupportingIndexPolicy.adaptive()
        if self.registry is not None:
            self.registry.pin()  # type: ignore[attr-defined]
        start = perf_clock()
        recorder: Dict[int, _AccessRecord] = {}
        frontier = remainder.frontier if remainder is not None else self._default_frontier(query)
        # Objects the client declared it already holds: their membership is
        # confirmed but their payload is never re-shipped.
        client_held: Set[int] = {target.object_id for item in frontier for target in item
                                 if target.kind is TargetKind.OBJECT and target.confirm_only}

        if isinstance(query, RangeQuery):
            results, examined = self._process_range(query, frontier, recorder, policy)
        elif isinstance(query, KNNQuery):
            k_needed = remainder.k_remaining if remainder and remainder.k_remaining else query.k
            results, examined = self._process_knn(query, frontier, recorder, policy, k_needed)
        elif isinstance(query, JoinQuery):
            results, examined = self._process_join(query, frontier, recorder, policy)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported query type {type(query)!r}")

        response = ServerResponse(
            deliveries=[ObjectDelivery(self.tree.objects[oid], parent,
                                       confirm_only=oid in client_held)
                        for oid, parent in sorted(results.items())],
            index_snapshots=self._build_snapshots(recorder, policy),
            accessed_node_count=len(recorder),
            examined_elements=examined,
        )
        response.cpu_seconds = perf_clock() - start
        if obs.ENABLED:
            obs.active().event("server.execute",
                               pages=response.accessed_node_count,
                               examined=examined,
                               deliveries=len(response.deliveries))
        return response

    # ------------------------------------------------------------------ #
    # frontier handling
    # ------------------------------------------------------------------ #
    def _default_frontier(self, query: Query) -> List[FrontierItem]:
        root_target = FrontierTarget.for_node(self.root_id, self.root_mbr)
        if isinstance(query, JoinQuery):
            return [(root_target, root_target)]
        return [(root_target,)]

    def partition_tree_for(self, node_id: int) -> PartitionTree:
        """The node's (memoised) partition tree, building it on first use.

        Public contract point for collaborators outside the query path —
        the consistency protocols build refresh snapshots through it after
        the dataset updater dropped a mutated node's stale tree.
        """
        return self._partition_tree(node_id)

    def _partition_tree(self, node_id: int) -> PartitionTree:
        pt = self.partition_trees.get(node_id)
        if pt is None:
            pt = PartitionTree(self.tree.store.peek(node_id))
            self.partition_trees[node_id] = pt
        return pt

    def _record(self, recorder: Dict[int, _AccessRecord], node_id: int) -> _AccessRecord:
        return recorder.setdefault(node_id, _AccessRecord())

    def _start_node(self, node_id: int, base: str, recorder: Dict[int, _AccessRecord],
                    policy: SupportingIndexPolicy) -> List[Tuple[int, object]]:
        """Begin processing (the ``base`` subtree of) a node.

        Returns ``(owner_node_id, element)`` pairs where ``element`` is an
        :class:`Entry` or :class:`SuperEntry`.
        """
        node = self.tree.node(node_id)
        if not policy.uses_partition_trees and base == "":
            record = self._record(recorder, node_id)
            record.bases.add(base)
            record.full_access = True
            return [(node_id, entry) for entry in node.entries]
        pt = self._partition_tree(node_id)
        if base and base not in pt.subsets:
            # A stale super-entry code from an outdated client snapshot:
            # the node's content (and hence its partition tree) changed
            # after the snapshot was shipped.  Fall back to processing the
            # whole node — a conservative superset of the stale region.
            base = ""
        record = self._record(recorder, node_id)
        record.bases.add(base)
        if pt.is_leaf_code(base):
            return [(node_id, pt.entry_at(base))]
        record.expanded.add(base)
        return [(node_id, element) for element in pt.children(base)]

    def _expand_super(self, node_id: int, code: str, recorder: Dict[int, _AccessRecord]) \
            -> List[Tuple[int, object]]:
        record = self._record(recorder, node_id)
        record.expanded.add(code)
        pt = self._partition_tree(node_id)
        return [(node_id, element) for element in pt.children(code)]

    # ------------------------------------------------------------------ #
    # range
    # ------------------------------------------------------------------ #
    def _process_range(self, query: RangeQuery, frontier: List[FrontierItem],
                       recorder: Dict[int, _AccessRecord],
                       policy: SupportingIndexPolicy) -> Tuple[Dict[int, Optional[int]], int]:
        window = query.window
        results: Dict[int, Optional[int]] = {}
        examined = 0
        stack: List[Tuple[str, object]] = []
        for item in frontier:
            target = item[0]
            if target.kind is TargetKind.OBJECT:
                record = self.tree.objects.get(target.object_id)
                if record is not None and record.mbr.intersects(window):
                    results[target.object_id] = target.parent_node_id
            elif target.kind is TargetKind.NODE:
                if target.node_id in self.tree.store:
                    stack.append(("start", (target.node_id, "")))
            else:
                # Super targets of since-freed pages (stale client state)
                # reference nothing the current tree can answer from.
                if target.node_id in self.tree.store:
                    stack.append(("start", (target.node_id, target.code)))

        while stack:
            tag, payload = stack.pop()
            examined += 1
            if tag == "start":
                node_id, base = payload
                for owner, element in self._start_node(node_id, base, recorder, policy):
                    stack.append(("elem", (owner, element)))
                continue
            owner, element = payload
            if isinstance(element, SuperEntry):
                if element.mbr.intersects(window):
                    for child_owner, child in self._expand_super(owner, element.code, recorder):
                        stack.append(("elem", (child_owner, child)))
                continue
            if not element.mbr.intersects(window):
                continue
            if element.is_leaf_entry:
                results[element.object_id] = owner
            else:
                stack.append(("start", (element.child_id, "")))
        return results, examined

    # ------------------------------------------------------------------ #
    # kNN
    # ------------------------------------------------------------------ #
    def _process_knn(self, query: KNNQuery, frontier: List[FrontierItem],
                     recorder: Dict[int, _AccessRecord], policy: SupportingIndexPolicy,
                     k_needed: int) -> Tuple[Dict[int, Optional[int]], int]:
        point = query.point
        results: Dict[int, Optional[int]] = {}
        examined = 0
        counter = itertools.count()
        heap: List[Tuple[float, int, str, object]] = []

        def push(tag: str, payload: object, priority: float) -> None:
            heapq.heappush(heap, (priority, next(counter), tag, payload))

        for item in frontier:
            target = item[0]
            if target.kind is TargetKind.OBJECT:
                # Skip targets for objects deleted since the client cached
                # them — there is nothing to confirm or deliver.
                if target.object_id in self.tree.objects:
                    push("object", (target.object_id, target.parent_node_id),
                         target.mbr.min_dist_to_point(point))
            elif target.kind is TargetKind.NODE:
                if target.node_id in self.tree.store:
                    push("start", (target.node_id, ""), target.mbr.min_dist_to_point(point))
            else:
                if target.node_id in self.tree.store:
                    push("start", (target.node_id, target.code),
                         target.mbr.min_dist_to_point(point))

        while heap and len(results) < k_needed:
            priority, _, tag, payload = heapq.heappop(heap)
            examined += 1
            if tag == "start":
                node_id, base = payload
                for owner, element in self._start_node(node_id, base, recorder, policy):
                    push("elem", (owner, element), element.mbr.min_dist_to_point(point))
                continue
            if tag == "object":
                object_id, parent = payload
                if object_id not in results:
                    results[object_id] = parent
                continue
            owner, element = payload
            if isinstance(element, SuperEntry):
                for child_owner, child in self._expand_super(owner, element.code, recorder):
                    push("elem", (child_owner, child), child.mbr.min_dist_to_point(point))
            elif element.is_leaf_entry:
                if element.object_id not in results:
                    results[element.object_id] = owner
            else:
                push("start", (element.child_id, ""), element.mbr.min_dist_to_point(point))
        return results, examined

    # ------------------------------------------------------------------ #
    # distance self-join
    # ------------------------------------------------------------------ #
    def _process_join(self, query: JoinQuery, frontier: List[FrontierItem],
                      recorder: Dict[int, _AccessRecord],
                      policy: SupportingIndexPolicy) -> Tuple[Dict[int, Optional[int]], int]:
        # The shard router keeps a shard-aware twin of this traversal
        # (repro.sharding.router.ShardRouter._scatter_join); a semantic
        # change here must be mirrored there.
        window = query.window
        threshold = query.threshold
        results: Dict[int, Optional[int]] = {}
        examined = 0

        def target_to_side(target: FrontierTarget) -> Tuple:
            if target.kind is TargetKind.OBJECT:
                return ("object", target.object_id, target.mbr, target.parent_node_id)
            if target.kind is TargetKind.NODE:
                return ("node", target.node_id, "", target.mbr)
            return ("node", target.node_id, target.code, target.mbr)

        def side_mbr(side: Tuple) -> Rect:
            return side[3] if side[0] == "node" else side[2]

        def side_key(side: Tuple) -> Tuple:
            if side[0] == "node":
                return ("n", side[1], side[2])
            return ("o", side[1])

        # This predicate runs once per candidate pair — the hottest loop of
        # the whole server — so the window test and the MINDIST comparison
        # are inlined on hoisted coordinates and squared distances.
        w_min_x, w_min_y = window.min_x, window.min_y
        w_max_x, w_max_y = window.max_x, window.max_y
        threshold_sq = threshold * threshold

        def qualifies(a: Tuple, b: Tuple) -> bool:
            mbr_a = a[3] if a[0] == "node" else a[2]
            mbr_b = b[3] if b[0] == "node" else b[2]
            if (mbr_a.min_x > w_max_x or mbr_a.max_x < w_min_x
                    or mbr_a.min_y > w_max_y or mbr_a.max_y < w_min_y):
                return False
            if (mbr_b.min_x > w_max_x or mbr_b.max_x < w_min_x
                    or mbr_b.min_y > w_max_y or mbr_b.max_y < w_min_y):
                return False
            dx = mbr_a.min_x - mbr_b.max_x
            if dx < 0.0:
                dx = mbr_b.min_x - mbr_a.max_x
                if dx < 0.0:
                    dx = 0.0
            dy = mbr_a.min_y - mbr_b.max_y
            if dy < 0.0:
                dy = mbr_b.min_y - mbr_a.max_y
                if dy < 0.0:
                    dy = 0.0
            return dx * dx + dy * dy <= threshold_sq

        # A node side is expanded once per pair it appears in; the expansion
        # is deterministic and the recorder bookkeeping inside _start_node is
        # idempotent, so repeated expansions of the same (node, base) within
        # this query are served from a memo.
        expand_cache: Dict[Tuple[int, str], List[Tuple]] = {}

        def expand(side: Tuple) -> List[Tuple]:
            cache_key = (side[1], side[2])
            cached = expand_cache.get(cache_key)
            if cached is not None:
                return cached
            node_id, base = cache_key
            sides: List[Tuple] = []
            for owner, element in self._start_node(node_id, base, recorder, policy):
                if isinstance(element, SuperEntry):
                    sides.append(("node", owner, element.code, element.mbr))
                elif element.is_leaf_entry:
                    sides.append(("object", element.object_id, element.mbr, owner))
                else:
                    sides.append(("node", element.child_id, "", element.mbr))
            expand_cache[cache_key] = sides
            return sides

        # Stack entries are (side_a, side_b, prequalified).  Children are
        # only pushed after passing the pair predicate, so re-evaluating it
        # on pop would always succeed — the flag skips that redundant check
        # while `examined` still counts every popped pair, exactly as before.
        def side_alive(side: Tuple) -> bool:
            # Pairs naming since-deleted objects or freed pages (stale
            # client state) are unanswerable; drop them.
            if side[0] == "object":
                return side[1] in self.tree.objects
            return side[1] in self.tree.store

        stack: List[Tuple[Tuple, Tuple, bool]] = []
        for item in frontier:
            sides = [target_to_side(target) for target in item]
            if not all(side_alive(side) for side in sides):
                continue
            if len(sides) == 2:
                stack.append((sides[0], sides[1], False))
            else:
                stack.append((sides[0], sides[0], False))
        seen: Set[Tuple] = set()

        while stack:
            side_a, side_b, prequalified = stack.pop()
            examined += 1
            if not prequalified and not qualifies(side_a, side_b):
                continue
            key_a, key_b = side_key(side_a), side_key(side_b)
            pair_key = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
            if pair_key in seen:
                continue
            seen.add(pair_key)

            a_is_object = side_a[0] == "object"
            b_is_object = side_b[0] == "object"
            if a_is_object and b_is_object:
                if side_a[1] == side_b[1]:
                    continue
                for side in (side_a, side_b):
                    if side[1] not in results:
                        results[side[1]] = side[3]
                continue
            if not a_is_object:
                children, other = expand(side_a), side_b
            else:
                children, other = expand(side_b), side_a
            # Inline child-vs-other predicate: `other` survived the pair
            # check above, so only the child's window test and the mutual
            # MINDIST remain.
            o_mbr = other[3] if other[0] == "node" else other[2]
            o_min_x, o_min_y = o_mbr.min_x, o_mbr.min_y
            o_max_x, o_max_y = o_mbr.max_x, o_mbr.max_y
            push = stack.append
            for child in children:
                c_mbr = child[3] if child[0] == "node" else child[2]
                if (c_mbr.min_x > w_max_x or c_mbr.max_x < w_min_x
                        or c_mbr.min_y > w_max_y or c_mbr.max_y < w_min_y):
                    continue
                dx = c_mbr.min_x - o_max_x
                if dx < 0.0:
                    dx = o_min_x - c_mbr.max_x
                    if dx < 0.0:
                        dx = 0.0
                dy = c_mbr.min_y - o_max_y
                if dy < 0.0:
                    dy = o_min_y - c_mbr.max_y
                    if dy < 0.0:
                        dy = 0.0
                if dx * dx + dy * dy <= threshold_sq:
                    push((child, other, True))
        return results, examined

    # ------------------------------------------------------------------ #
    # supporting-index construction
    # ------------------------------------------------------------------ #
    def _build_snapshots(self, recorder: Dict[int, _AccessRecord],
                         policy: SupportingIndexPolicy) -> List[IndexNodeSnapshot]:
        snapshots: List[IndexNodeSnapshot] = []
        for node_id, record in recorder.items():
            node = self.tree.store.peek(node_id)
            pt = self._partition_tree(node_id)
            elements: Dict[str, CacheEntry] = {}
            if record.full_access or policy.form is IndexForm.FULL:
                bases = record.bases or {""}
                for base in bases:
                    for code, entry in self._full_elements(pt, base):
                        elements[code] = self._to_cache_entry(code, entry)
            else:
                depth = policy.effective_depth(pt.height)
                for base in record.bases or {""}:
                    for code, element in pt.subtree_form(base, record.expanded, depth):
                        elements.setdefault(code, self._to_cache_entry(code, element))
            snapshots.append(IndexNodeSnapshot(node_id=node_id, level=node.level,
                                               parent_id=node.parent_id,
                                               elements=list(elements.values())))
        # Parents first so that the client can attach children when inserting.
        snapshots.sort(key=lambda snap: -snap.level)
        return snapshots

    def _full_elements(self, pt: PartitionTree, base: str) -> List[Tuple[str, Entry]]:
        return [(pt.entry_code(entry), entry) for entry in pt.entries_under(base)]

    @staticmethod
    def _to_cache_entry(code: str, element) -> CacheEntry:
        if isinstance(element, SuperEntry):
            return CacheEntry(mbr=element.mbr, code=code)
        if element.is_leaf_entry:
            return CacheEntry(mbr=element.mbr, code=code, object_id=element.object_id)
        return CacheEntry(mbr=element.mbr, code=code, child_id=element.child_id)
