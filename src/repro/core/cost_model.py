"""The response-time and hit-rate cost model of Section 4.1.

All quantities are in bytes and seconds.  The central definition is the
per-byte average response time

    resp(Q) = |Rr| * (T_Qr + 1/2 |Rr| * Td) / |R|

generalised here with a third class of result bytes — cached results that
are only *confirmed* by the server round trip (page caching's saved
downloads).  Such bytes are not retransmitted, but the client can only be
sure they belong to the answer once the server's response has fully arrived,
so they become available at ``T_Qr + |Rr| * Td``:

    resp(Q) = [ |Rr| * (T_Qr + 1/2 |Rr| * Td) + |R_conf| * (T_Qr + |Rr| * Td) ] / |R|

Locally saved bytes (``Rs``) contribute zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._compat import DATACLASS_SLOTS
from typing import List, Optional


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ResponseTimeModel:
    """Wireless-channel timing: per-byte delay and fixed round-trip overhead."""

    bandwidth_bps: float = 384_000.0
    fixed_rtt_seconds: float = 0.0

    @property
    def seconds_per_byte(self) -> float:
        """``Td``: transmission delay of one byte."""
        return 8.0 / self.bandwidth_bps

    def uplink_delay(self, uplink_bytes: float) -> float:
        """``T_Qr``: delay to submit a request of the given size."""
        if uplink_bytes <= 0:
            return 0.0
        return self.fixed_rtt_seconds + uplink_bytes * self.seconds_per_byte

    def response_time(self, uplink_bytes: float, downloaded_result_bytes: float,
                      confirmed_cached_bytes: float, total_result_bytes: float) -> float:
        """Per-byte average response time of one query (generalised Eq. 1)."""
        if total_result_bytes <= 0:
            # No result bytes: the "response time" is the round trip itself if
            # a request had to be sent, zero otherwise.
            return self.uplink_delay(uplink_bytes) if uplink_bytes > 0 else 0.0
        t_qr = self.uplink_delay(uplink_bytes) if uplink_bytes > 0 else 0.0
        td = self.seconds_per_byte
        downloaded_term = downloaded_result_bytes * (t_qr + 0.5 * downloaded_result_bytes * td)
        confirmed_term = confirmed_cached_bytes * (t_qr + downloaded_result_bytes * td)
        return (downloaded_term + confirmed_term) / total_result_bytes


@dataclass(**DATACLASS_SLOTS)
class QueryCost:
    """Per-query cost record produced by the simulation."""

    query_index: int
    query_type: str
    uplink_bytes: float = 0.0
    downlink_bytes: float = 0.0
    result_bytes: float = 0.0
    saved_bytes: float = 0.0
    cached_result_bytes: float = 0.0
    confirmed_cached_bytes: float = 0.0
    downloaded_result_bytes: float = 0.0
    index_downlink_bytes: float = 0.0
    response_time: float = 0.0
    client_cpu_seconds: float = 0.0
    server_cpu_seconds: float = 0.0
    contacted_server: bool = False
    # Index pages the server visited answering this query (the paper's
    # page-access count; 0 for queries answered entirely from the cache).
    # Backend-invariant: the paged file store reports the same counts as
    # the in-memory store by construction.
    server_page_reads: int = 0
    # Cache-consistency traffic (repro.updates): bytes of the pre-query
    # validation handshake, counted inside uplink/downlink totals as well,
    # plus the number of items refreshed in place / invalidated.  All zero
    # on static runs.
    sync_uplink_bytes: int = 0
    sync_downlink_bytes: int = 0
    refreshed_items: int = 0
    invalidated_items: int = 0

    @property
    def false_miss_bytes(self) -> float:
        """Bytes of cached result objects that were not locally confirmed."""
        return max(0.0, self.cached_result_bytes - self.saved_bytes)


@dataclass(**DATACLASS_SLOTS)
class CostAccumulator:
    """Aggregates :class:`QueryCost` records into the paper's metrics."""

    costs: List[QueryCost] = field(default_factory=list)

    def add(self, cost: QueryCost) -> None:
        """Record one query."""
        self.costs.append(cost)

    def __len__(self) -> int:
        return len(self.costs)

    def _mean(self, values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def mean_uplink_bytes(self) -> float:
        """Average uplink bytes per query."""
        return self._mean([c.uplink_bytes for c in self.costs])

    def mean_downlink_bytes(self) -> float:
        """Average downlink bytes per query."""
        return self._mean([c.downlink_bytes for c in self.costs])

    def mean_response_time(self) -> float:
        """Average per-byte response time across queries."""
        return self._mean([c.response_time for c in self.costs])

    def mean_client_cpu_seconds(self) -> float:
        """Average client CPU time per query."""
        return self._mean([c.client_cpu_seconds for c in self.costs])

    def mean_server_cpu_seconds(self) -> float:
        """Average server CPU time per query (only queries that contacted it)."""
        contacted = [c.server_cpu_seconds for c in self.costs if c.contacted_server]
        return self._mean(contacted)

    def cache_hit_rate(self) -> float:
        """``hit_c``: fraction of result bytes answered locally."""
        total = sum(c.result_bytes for c in self.costs)
        saved = sum(c.saved_bytes for c in self.costs)
        return saved / total if total else 0.0

    def byte_hit_rate(self) -> float:
        """``hit_b``: fraction of result bytes that were cached at query time."""
        total = sum(c.result_bytes for c in self.costs)
        cached = sum(c.cached_result_bytes for c in self.costs)
        return cached / total if total else 0.0

    def false_miss_rate(self) -> float:
        """``fmr``: probability a cached result byte was not locally confirmed."""
        cached = sum(c.cached_result_bytes for c in self.costs)
        false = sum(c.false_miss_bytes for c in self.costs)
        return false / cached if cached else 0.0

    def server_contact_rate(self) -> float:
        """Fraction of queries that needed the server."""
        if not self.costs:
            return 0.0
        return sum(1 for c in self.costs if c.contacted_server) / len(self.costs)
