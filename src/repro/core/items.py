"""Client-side cache item types and remainder-query frontier targets."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.geometry import Rect
from repro.rtree.sizes import SizeModel


@dataclass(frozen=True, **DATACLASS_SLOTS)
class CacheEntry:
    """One element of a cached index-node snapshot.

    A cache entry is either a *real* R-tree entry (``child_id`` or
    ``object_id`` set) or a *super entry* (both unset) that summarises a
    subset of the node's entries which the client cannot expand locally.
    ``code`` is the element's designator in the node's binary partition
    tree; it is what lets two compact forms of the same node be merged into
    their common refinement.
    """

    mbr: Rect
    code: str
    child_id: Optional[int] = None
    object_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.child_id is not None and self.object_id is not None:
            raise ValueError("a cache entry cannot reference both a node and an object")

    @property
    def is_super(self) -> bool:
        """True for an unexpandable super entry."""
        return self.child_id is None and self.object_id is None

    @property
    def is_leaf_entry(self) -> bool:
        """True for a real entry referencing a data object."""
        return self.object_id is not None

    @property
    def is_node_entry(self) -> bool:
        """True for a real entry referencing a child node."""
        return self.child_id is not None

    def size_bytes(self, size_model: SizeModel) -> int:
        """Wire/cache footprint of this element."""
        if self.is_super:
            return size_model.super_entry_bytes()
        return size_model.entry_bytes


@dataclass(**DATACLASS_SLOTS)
class CachedIndexNode:
    """A client-side snapshot of one R-tree node.

    The snapshot is a *cut* of the node's binary partition tree: a mixture of
    real entries and super entries keyed by partition-tree code.  The full
    form is simply the cut whose elements are all real entries.
    """

    node_id: int
    level: int
    elements: Dict[str, CacheEntry] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """True when this is a leaf-level node (its real entries are objects)."""
        return self.level == 0

    def entries(self) -> List[CacheEntry]:
        """All cached elements of the node."""
        return list(self.elements.values())

    def real_entries(self) -> List[CacheEntry]:
        """Only the real (expandable / object) entries."""
        return [e for e in self.elements.values() if not e.is_super]

    def super_entries(self) -> List[CacheEntry]:
        """Only the super entries."""
        return [e for e in self.elements.values() if e.is_super]

    def size_bytes(self, size_model: SizeModel) -> int:
        """Cache footprint of the snapshot."""
        return size_model.pointer_bytes + sum(
            e.size_bytes(size_model) for e in self.elements.values())

    def merge(self, new_elements: Iterable[CacheEntry]) -> None:
        """Merge another cut of the same node into this snapshot.

        The result is the common refinement of the two cuts: from the union
        of elements, an element survives only if no other element's code is a
        strict extension of its own (i.e. nothing finer is known about that
        region of the node).
        """
        combined: Dict[str, CacheEntry] = dict(self.elements)
        for element in new_elements:
            existing = combined.get(element.code)
            if existing is None or existing.is_super and not element.is_super:
                combined[element.code] = element
        codes = sorted(combined)
        # In lexicographic order every strict extension of a code sorts into
        # a contiguous block immediately after it, so "something finer is
        # known" reduces to one startswith test against the next code.
        refined: Dict[str, CacheEntry] = {}
        last_index = len(codes) - 1
        for index, code in enumerate(codes):
            if index < last_index and codes[index + 1].startswith(code):
                continue
            refined[code] = combined[code]
        self.elements = refined

    def copy(self) -> "CachedIndexNode":
        """A snapshot copy (elements are immutable)."""
        return CachedIndexNode(self.node_id, self.level, dict(self.elements))


@dataclass(frozen=True, **DATACLASS_SLOTS)
class CachedObject:
    """A data object held in the client cache."""

    object_id: int
    mbr: Rect
    size_bytes: int


class TargetKind(enum.Enum):
    """What a remainder-query frontier element points at."""

    NODE = "node"
    OBJECT = "object"
    SUPER = "super"


@dataclass(frozen=True, **DATACLASS_SLOTS)
class FrontierTarget:
    """One element of the execution state handed over to the server.

    ``priority`` is the element's key in the client's priority queue (MINDIST
    for kNN, 0 for range / join); the server resumes with the same ordering.
    ``parent_node_id`` lets the server (and then the client, on the way back)
    attach fetched objects to the leaf node that owns them.  An OBJECT target
    with ``confirm_only`` set tells the server that the client already holds
    the object's payload and only needs its membership in the result set
    confirmed — the server must not re-ship the object bytes.
    """

    kind: TargetKind
    mbr: Rect
    priority: float = 0.0
    node_id: Optional[int] = None
    object_id: Optional[int] = None
    code: str = ""
    parent_node_id: Optional[int] = None
    confirm_only: bool = False

    @staticmethod
    def for_node(node_id: int, mbr: Rect, priority: float = 0.0) -> "FrontierTarget":
        """Frontier element referencing a whole (missing) node."""
        return FrontierTarget(kind=TargetKind.NODE, mbr=mbr, priority=priority, node_id=node_id)

    @staticmethod
    def for_object(object_id: int, mbr: Rect, parent_node_id: Optional[int],
                   priority: float = 0.0, confirm_only: bool = False) -> "FrontierTarget":
        """Frontier element referencing a (missing or unconfirmed) object."""
        return FrontierTarget(kind=TargetKind.OBJECT, mbr=mbr, priority=priority,
                              object_id=object_id, parent_node_id=parent_node_id,
                              confirm_only=confirm_only)

    @staticmethod
    def for_super(node_id: int, code: str, mbr: Rect, priority: float = 0.0) -> "FrontierTarget":
        """Frontier element referencing a super entry the client cannot expand."""
        return FrontierTarget(kind=TargetKind.SUPER, mbr=mbr, priority=priority,
                              node_id=node_id, code=code)

    def size_bytes(self, size_model: SizeModel) -> int:
        """Uplink footprint of this frontier element."""
        return size_model.frontier_entry_bytes()


# A frontier item is either a single target (range / kNN) or a pair (joins).
FrontierItem = Tuple[FrontierTarget, ...]


def item_key_for_node(node_id: int) -> str:
    """Cache item key of an index-node snapshot."""
    return f"node:{node_id}"


def item_key_for_object(object_id: int) -> str:
    """Cache item key of a data object."""
    return f"obj:{object_id}"
