"""Recency-based replacement (LRU and MRU) for the constrained cache."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.replacement.base import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheItemState, ProactiveCache


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used leaf item first."""

    name = "LRU"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return float(state.last_access)


class MRUPolicy(ReplacementPolicy):
    """Evict the most recently used leaf item first (the paper's worst performer)."""

    name = "MRU"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return float(-state.last_access)
