"""Replacement-policy interface for the constrained proactive cache."""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set

from repro._compat import DATACLASS_SLOTS
from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheItemState, ProactiveCache


@dataclass(**DATACLASS_SLOTS)
class EvictionContext:
    """Ambient information some policies need when scoring victims.

    ``client_position`` is required by FAR (evict the item farthest from the
    user); the other policies ignore it.
    """

    client_position: Optional[Point] = None


class ReplacementPolicy(abc.ABC):
    """A policy decides which *leaf items* to evict to make room.

    Subclasses implement :meth:`score`; a lower score means "evict sooner".
    ``make_room`` evicts the lowest-scoring leaf item until the requested
    number of bytes fits (or nothing evictable remains).

    Victim selection runs on a per-call min-heap over the leaf items instead
    of rescanning the whole leaf set every round: the clock is fixed for the
    duration of a ``make_room`` call and no hits land mid-eviction, so every
    leaf's score is stable and only *new* leaves (parents whose last cached
    child was just evicted) ever enter the candidate set.  Ties break on the
    item key, which keeps the victim sequence byte-for-byte identical to the
    naive min-scan this replaces.
    """

    name = "base"

    @abc.abstractmethod
    def score(self, state: "CacheItemState", cache: "ProactiveCache",
              context: dict) -> float:
        """Eviction priority of a leaf item; lower scores are evicted first."""

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        """Evict until ``bytes_needed`` additional bytes fit in the cache."""
        target = cache.capacity_bytes - bytes_needed
        if cache.used_bytes <= target:
            return True
        items = cache.items
        heap = [(self.score(state, cache, context), state.key)
                for state in cache.leaf_items() if state.key not in protect]
        heapq.heapify(heap)
        while cache.used_bytes > target:
            if not heap:
                return False
            _, key = heapq.heappop(heap)
            parent_key = items[key].parent_key
            cache.evict(key)
            if parent_key is not None and parent_key not in protect:
                parent = items.get(parent_key)
                if parent is not None and not parent.cached_children:
                    heapq.heappush(
                        heap, (self.score(parent, cache, context), parent_key))
        return True
