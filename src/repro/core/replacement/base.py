"""Replacement-policy interface for the constrained proactive cache."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set

from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheItemState, ProactiveCache


@dataclass
class EvictionContext:
    """Ambient information some policies need when scoring victims.

    ``client_position`` is required by FAR (evict the item farthest from the
    user); the other policies ignore it.
    """

    client_position: Optional[Point] = None


class ReplacementPolicy(abc.ABC):
    """A policy decides which *leaf items* to evict to make room.

    Subclasses implement :meth:`score`; a lower score means "evict sooner".
    ``make_room`` repeatedly evicts the lowest-scoring leaf item until the
    requested number of bytes fits (or nothing evictable remains).  Evicting
    a leaf item can turn its parent into a leaf item, so the candidate set is
    recomputed every round.
    """

    name = "base"

    @abc.abstractmethod
    def score(self, state: "CacheItemState", cache: "ProactiveCache",
              context: dict) -> float:
        """Eviction priority of a leaf item; lower scores are evicted first."""

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        """Evict until ``bytes_needed`` additional bytes fit in the cache."""
        target = cache.capacity_bytes - bytes_needed
        while cache.used_bytes > target:
            candidates = [state for state in cache.leaf_items()
                          if state.key not in protect]
            if not candidates:
                return False
            victim = min(candidates, key=lambda s: (self.score(s, cache, context), s.key))
            cache.evict(victim.key)
        return True
