"""The GRD family of replacement algorithms (paper Section 5).

The cache replacement problem under the "evict an item ⇒ evict its cached
descendants" constraint is a constrained 0/1 knapsack.  The paper derives:

* **GRD1** — plain greedy on ``benefit/size`` ignoring the constraint
  (the classical 2-approximation for the unconstrained problem);
* **GRD2** — greedy on *expected bitwise response-time saving*
  ``EBRS(i)`` (Equation 3), which respects the constraint;
* **GRD3** — the efficient equivalent of GRD2 (Definition 5.1): only leaf
  items are candidates and they are ranked by ``prob(i)`` alone, so no
  ``EBRS``/``SIZE`` bookkeeping is needed.  Theorem 5.5 shows GRD3 is a
  2-approximation of the constrained optimum.

GRD3 is the production policy; GRD1/GRD2 are retained for the equivalence
and approximation tests and for the ablation benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from repro.core.replacement.base import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheItemState, ProactiveCache


class GRD3Policy(ReplacementPolicy):
    """Definition 5.1: evict leaf items with the lowest access probability."""

    name = "GRD3"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return state.access_probability(cache.clock)

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        # Step (1): an item larger than the space that will remain can never
        # stay; drop such items (with their descendants) outright.
        limit = cache.capacity_bytes - bytes_needed
        oversized = [state.key for state in list(cache.items.values())
                     if state.size_bytes > limit
                     and not _subtree_contains(cache, state, protect)]
        for key in oversized:
            if key in cache.items:
                cache.evict_subtree(key)

        removed: List["CacheItemState"] = []
        while cache.used_bytes > limit:
            candidates = [state for state in cache.leaf_items() if state.key not in protect]
            if not candidates:
                return False
            victim = min(candidates,
                         key=lambda s: (s.access_probability(cache.clock), s.key))
            removed.append(victim)
            cache.evict(victim.key)

        # Step (6): if the most recently removed item alone is worth more than
        # everything that remains, keep it instead.  This correction only
        # matters when a single high-value item dominates the cache; it is
        # what preserves the 2-approximation bound.  It is applied only when
        # nothing is protected (the common batch-eviction case) and when the
        # swap is strictly beneficial.
        if removed and not protect:
            last = removed[-1]
            remaining_benefit = sum(
                state.access_probability(cache.clock) * state.size_bytes
                for state in cache.items.values())
            last_benefit = last.access_probability(cache.clock) * last.size_bytes
            can_reinsert = (last.parent_key is None or last.parent_key in cache.items)
            if last_benefit > remaining_benefit and last.size_bytes <= limit and can_reinsert:
                while True:
                    evictable = [state for state in cache.leaf_items()
                                 if state.key != last.parent_key]
                    if not evictable:
                        break
                    for state in evictable:
                        cache.evict(state.key)
                if last.parent_key is None or last.parent_key in cache.items:
                    last.cached_children = set()
                    cache.items[last.key] = last
                    cache.used_bytes += last.size_bytes
                    if last.parent_key is not None:
                        cache.items[last.parent_key].cached_children.add(last.key)
        return True


class GRD2Policy(ReplacementPolicy):
    """EBRS-based greedy (kept for the GRD2 ≡ GRD3 equivalence experiments)."""

    name = "GRD2"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return self.ebrs(state, cache)

    def ebrs(self, state: "CacheItemState", cache: "ProactiveCache") -> float:
        """Expected bitwise response-time saving of the item (Equation 3)."""
        benefit, size = self._benefit_and_size(state, cache)
        return benefit / size if size else 0.0

    def _benefit_and_size(self, state: "CacheItemState", cache: "ProactiveCache"):
        prob = state.access_probability(cache.clock)
        benefit = prob * state.size_bytes
        size = state.size_bytes
        for child_key in state.cached_children:
            child = cache.items.get(child_key)
            if child is None:
                continue
            child_benefit, child_size = self._benefit_and_size(child, cache)
            benefit += child_benefit
            size += child_size
        return benefit, size

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        limit = cache.capacity_bytes - bytes_needed
        if bytes_needed > cache.capacity_bytes:
            return False
        while cache.used_bytes > limit:
            candidates = [state for state in cache.items.values()
                          if state.key not in protect and not self._protects_descendant(state, cache, protect)]
            if not candidates:
                return False
            # Ties between an item and its own ancestors (Lemma 5.4 allows
            # equality) are broken in favour of the leaf, which keeps GRD2's
            # victim sequence identical to GRD3's.
            victim = min(candidates,
                         key=lambda s: (self.ebrs(s, cache), not s.is_leaf_item, s.key))
            cache.evict_subtree(victim.key)
        return True

    def _protects_descendant(self, state: "CacheItemState", cache: "ProactiveCache",
                             protect: Set[str]) -> bool:
        return _subtree_contains(cache, state, protect)


def _subtree_contains(cache: "ProactiveCache", state: "CacheItemState",
                      protect: Set[str]) -> bool:
    """True when ``state`` or any cached descendant is protected from eviction."""
    if state.key in protect:
        return True
    for child_key in state.cached_children:
        child = cache.items.get(child_key)
        if child is not None and _subtree_contains(cache, child, protect):
            return True
    return False


class GRD1Policy(ReplacementPolicy):
    """Unconstrained benefit/size greedy (baseline for the approximation study).

    It ranks every item by ``prob * size / size = prob`` and evicts the worst,
    but — unlike GRD2/GRD3 — it does not account for descendants, so when it
    picks a non-leaf item the descendants are removed as a side effect of the
    structural constraint (they would be unreachable otherwise).
    """

    name = "GRD1"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return state.access_probability(cache.clock)

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        limit = cache.capacity_bytes - bytes_needed
        if bytes_needed > cache.capacity_bytes:
            return False
        while cache.used_bytes > limit:
            candidates = [state for state in cache.items.values()
                          if not _subtree_contains(cache, state, protect)]
            if not candidates:
                return False
            victim = min(candidates,
                         key=lambda s: (s.access_probability(cache.clock), s.key))
            if victim.key in cache.items:
                cache.evict_subtree(victim.key)
        return True
