"""The GRD family of replacement algorithms (paper Section 5).

The cache replacement problem under the "evict an item ⇒ evict its cached
descendants" constraint is a constrained 0/1 knapsack.  The paper derives:

* **GRD1** — plain greedy on ``benefit/size`` ignoring the constraint
  (the classical 2-approximation for the unconstrained problem);
* **GRD2** — greedy on *expected bitwise response-time saving*
  ``EBRS(i)`` (Equation 3), which respects the constraint;
* **GRD3** — the efficient equivalent of GRD2 (Definition 5.1): only leaf
  items are candidates and they are ranked by ``prob(i)`` alone, so no
  ``EBRS``/``SIZE`` bookkeeping is needed.  Theorem 5.5 shows GRD3 is a
  2-approximation of the constrained optimum.

GRD3 is the production policy; GRD1/GRD2 are retained for the equivalence
and approximation tests and for the ablation benchmark.

All three run their victim loops on per-call min-heaps instead of rescanning
every candidate per eviction.  Scores are stable within a ``make_room`` call
(the clock is frozen and no hits land mid-eviction), so the heaps only need
two kinds of maintenance: GRD3 pushes a parent when evictions promote it to
a leaf, and GRD2 re-pushes the victim's ancestors whose subtree EBRS changed
(stale heap entries are invalidated lazily).  Ties break on the item key in
every heap, which keeps the victim sequences byte-for-byte identical to the
naive scans they replace — the equivalence tests assert exactly that.  All
subtree walks (EBRS sums, protection closures, subtree evictions) are
iterative so tall snapshot chains cannot exhaust the recursion limit.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.replacement.base import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheItemState, ProactiveCache


def _protected_closure(cache: "ProactiveCache", protect: Set[str]) -> FrozenSet[str]:
    """Keys whose removal would (transitively) remove a protected item.

    An item's subtree contains a protected key exactly when the item is that
    key or one of its ancestors, so the closure is the union of the
    ancestor-or-self chains of every protected key — an O(depth) walk per
    key instead of an O(subtree) scan per candidate.
    """
    closure: Set[str] = set()
    items = cache.items
    for key in protect:
        current = key
        while current is not None and current not in closure:
            closure.add(current)
            state = items.get(current)
            if state is None:
                break
            current = state.parent_key
    return frozenset(closure)


def _subtree_sums(cache: "ProactiveCache", clock: int,
                  root_key: Optional[str] = None) -> Dict[str, Tuple[float, int]]:
    """``{key: (benefit, size)}`` subtree aggregates, computed iteratively.

    ``benefit`` is ``Σ prob(i) · size(i)`` and ``size`` is ``Σ size(i)`` over
    the item and all cached descendants (the EBRS numerator/denominator of
    Equation 3).  With ``root_key`` the walk is limited to that subtree;
    otherwise every cached item is covered.
    """
    items = cache.items
    sums: Dict[str, Tuple[float, int]] = {}
    roots = [root_key] if root_key is not None else list(items)
    for root in roots:
        if root in sums or root not in items:
            continue
        stack = [root]
        while stack:
            key = stack[-1]
            if key in sums:
                stack.pop()
                continue
            state = items[key]
            pending = [child for child in state.cached_children
                       if child not in sums and child in items]
            if pending:
                stack.extend(pending)
                continue
            benefit = state.access_probability(clock) * state.size_bytes
            size = state.size_bytes
            for child_key in state.cached_children:
                child_sums = sums.get(child_key)
                if child_sums is None:
                    continue
                benefit += child_sums[0]
                size += child_sums[1]
            sums[key] = (benefit, size)
            stack.pop()
    return sums


class GRD3Policy(ReplacementPolicy):
    """Definition 5.1: evict leaf items with the lowest access probability."""

    name = "GRD3"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return state.access_probability(cache.clock)

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        # Step (1): an item larger than the space that will remain can never
        # stay; drop such items (with their descendants) outright.
        limit = cache.capacity_bytes - bytes_needed
        closure = _protected_closure(cache, protect) if protect else frozenset()
        oversized = [state.key for state in list(cache.items.values())
                     if state.size_bytes > limit and state.key not in closure]
        for key in oversized:
            if key in cache.items:
                cache.evict_subtree(key)

        items = cache.items
        clock = cache.clock
        heap = [(state.access_probability(clock), state.key)
                for state in cache.leaf_items() if state.key not in protect]
        heapq.heapify(heap)
        removed: List["CacheItemState"] = []
        while cache.used_bytes > limit:
            if not heap:
                return False
            _, key = heapq.heappop(heap)
            state = items[key]
            removed.append(state)
            parent_key = state.parent_key
            cache.evict(key)
            if parent_key is not None and parent_key not in protect:
                parent = items.get(parent_key)
                if parent is not None and not parent.cached_children:
                    heapq.heappush(
                        heap, (parent.access_probability(clock), parent_key))

        # Step (6): if the most recently removed item alone is worth more than
        # everything that remains, keep it instead.  This correction only
        # matters when a single high-value item dominates the cache; it is
        # what preserves the 2-approximation bound.  It is applied only when
        # nothing is protected (the common batch-eviction case) and when the
        # swap is strictly beneficial.
        if removed and not protect:
            self._reinsert_dominant(cache, removed[-1], limit)
        return True

    def _reinsert_dominant(self, cache: "ProactiveCache",
                           last: "CacheItemState", limit: int) -> None:
        """The step-(6) swap: clear the cache down to ``last``'s parent chain.

        Runs on the incremental leaf set as a cascading worklist — no
        ``leaf_items()`` rebuild per eviction round — and re-admits ``last``
        through :meth:`ProactiveCache.restore_item` so the leaf set and byte
        aggregates stay consistent and the item remains reachable from its
        (never-evicted) parent.
        """
        clock = cache.clock
        remaining_benefit = sum(
            state.access_probability(clock) * state.size_bytes
            for state in cache.items.values())
        last_benefit = last.access_probability(clock) * last.size_bytes
        parent_key = last.parent_key
        can_reinsert = parent_key is None or parent_key in cache.items
        if not (last_benefit > remaining_benefit
                and last.size_bytes <= limit and can_reinsert):
            return
        items = cache.items
        worklist = [key for key in cache.leaf_keys() if key != parent_key]
        while worklist:
            key = worklist.pop()
            state = items.get(key)
            if state is None or state.cached_children:
                continue
            grandparent_key = state.parent_key
            cache.evict(key)
            if grandparent_key is not None and grandparent_key != parent_key:
                grandparent = items.get(grandparent_key)
                if grandparent is not None and not grandparent.cached_children:
                    worklist.append(grandparent_key)
        if parent_key is None or parent_key in cache.items:
            cache.restore_item(last)


class GRD2Policy(ReplacementPolicy):
    """EBRS-based greedy (kept for the GRD2 ≡ GRD3 equivalence experiments)."""

    name = "GRD2"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return self.ebrs(state, cache)

    def ebrs(self, state: "CacheItemState", cache: "ProactiveCache") -> float:
        """Expected bitwise response-time saving of the item (Equation 3)."""
        benefit, size = self._benefit_and_size(state, cache)
        return benefit / size if size else 0.0

    def _benefit_and_size(self, state: "CacheItemState", cache: "ProactiveCache"):
        sums = _subtree_sums(cache, cache.clock, root_key=state.key)
        return sums.get(state.key, (0.0, 0))

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        limit = cache.capacity_bytes - bytes_needed
        if bytes_needed > cache.capacity_bytes:
            return False
        if cache.used_bytes <= limit:
            return True
        closure = _protected_closure(cache, protect) if protect else frozenset()
        items = cache.items
        clock = cache.clock
        sums = _subtree_sums(cache, clock)

        def entry_for(state: "CacheItemState") -> Tuple[float, bool, str]:
            benefit, size = sums[state.key]
            # Ties between an item and its own ancestors (Lemma 5.4 allows
            # equality) are broken in favour of the leaf, which keeps GRD2's
            # victim sequence identical to GRD3's.
            return (benefit / size if size else 0.0,
                    not state.is_leaf_item, state.key)

        valid: Dict[str, Tuple[float, bool, str]] = {}
        heap: List[Tuple[float, bool, str]] = []
        for key, state in items.items():
            if key in closure:
                continue
            entry = entry_for(state)
            valid[key] = entry
            heap.append(entry)
        heapq.heapify(heap)

        while cache.used_bytes > limit:
            if not heap:
                return False
            entry = heapq.heappop(heap)
            key = entry[2]
            state = items.get(key)
            if state is None or valid.get(key) != entry:
                # Stale: the item went down with an earlier victim's subtree,
                # or an ancestor rescore superseded this heap entry.
                continue
            ancestors: List[str] = []
            current = state.parent_key
            while current is not None:
                ancestors.append(current)
                current = items[current].parent_key
            cache.evict_subtree(key)
            # Evicting the subtree changed the EBRS of every ancestor (and
            # may have promoted the direct parent to a leaf): rescore them
            # bottom-up from the memoised child sums.
            for ancestor_key in ancestors:
                ancestor = items.get(ancestor_key)
                if ancestor is None:  # pragma: no cover - ancestors survive
                    break
                benefit = ancestor.access_probability(clock) * ancestor.size_bytes
                size = ancestor.size_bytes
                for child_key in ancestor.cached_children:
                    child_benefit, child_size = sums[child_key]
                    benefit += child_benefit
                    size += child_size
                sums[ancestor_key] = (benefit, size)
                if ancestor_key not in closure:
                    fresh = (benefit / size if size else 0.0,
                             not ancestor.is_leaf_item, ancestor_key)
                    valid[ancestor_key] = fresh
                    heapq.heappush(heap, fresh)
        return True


class GRD1Policy(ReplacementPolicy):
    """Unconstrained benefit/size greedy (baseline for the approximation study).

    It ranks every item by ``prob * size / size = prob`` and evicts the worst,
    but — unlike GRD2/GRD3 — it does not account for descendants, so when it
    picks a non-leaf item the descendants are removed as a side effect of the
    structural constraint (they would be unreachable otherwise).
    """

    name = "GRD1"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        return state.access_probability(cache.clock)

    def make_room(self, cache: "ProactiveCache", bytes_needed: int,
                  context: dict, protect: Set[str]) -> bool:
        limit = cache.capacity_bytes - bytes_needed
        if bytes_needed > cache.capacity_bytes:
            return False
        closure = _protected_closure(cache, protect) if protect else frozenset()
        items = cache.items
        clock = cache.clock
        heap = [(state.access_probability(clock), key)
                for key, state in items.items() if key not in closure]
        heapq.heapify(heap)
        while cache.used_bytes > limit:
            if not heap:
                return False
            _, key = heapq.heappop(heap)
            if key not in items:
                # Already gone: it sat inside an earlier victim's subtree.
                continue
            cache.evict_subtree(key)
        return True
