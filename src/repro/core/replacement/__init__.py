"""Cache replacement policies for the constrained proactive cache.

* :class:`GRD3Policy` — the paper's efficient 2-approximation (Definition 5.1).
* :class:`GRD2Policy` — the EBRS-based greedy it is proved equivalent to.
* :class:`GRD1Policy` — plain benefit/size greedy ignoring the constraint
  (used for the approximation-bound experiments only).
* :class:`LRUPolicy`, :class:`MRUPolicy`, :class:`FARPolicy` — the comparison
  policies of Figure 10, adapted to only evict leaf items so that the
  descendants constraint is respected.
"""

from repro.core.replacement.base import EvictionContext, ReplacementPolicy
from repro.core.replacement.lru import LRUPolicy, MRUPolicy
from repro.core.replacement.far import FARPolicy
from repro.core.replacement.grd import GRD1Policy, GRD2Policy, GRD3Policy

__all__ = [
    "EvictionContext",
    "ReplacementPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "FARPolicy",
    "GRD1Policy",
    "GRD2Policy",
    "GRD3Policy",
]


def make_policy(name: str) -> ReplacementPolicy:
    """Create a policy by its name as used in the paper ("LRU", "FAR", "GRD3", ...)."""
    registry = {
        "LRU": LRUPolicy,
        "MRU": MRUPolicy,
        "FAR": FARPolicy,
        "GRD1": GRD1Policy,
        "GRD2": GRD2Policy,
        "GRD3": GRD3Policy,
    }
    try:
        return registry[name.upper()]()
    except KeyError as exc:
        raise ValueError(f"unknown replacement policy {name!r}; "
                         f"choose from {sorted(registry)}") from exc
