"""FAR replacement (Ren & Dunham): evict what is farthest from the user."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.replacement.base import ReplacementPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheItemState, ProactiveCache


class FARPolicy(ReplacementPolicy):
    """Evict the leaf item whose MBR centre is farthest from the client.

    FAR was designed for semantic caching of query regions; adapted to the
    proactive cache it scores every evictable item (object or index snapshot)
    by the distance between its MBR centre and the client's current position,
    evicting the farthest first.
    """

    name = "FAR"

    def score(self, state: "CacheItemState", cache: "ProactiveCache", context: dict) -> float:
        position = context.get("client_position")
        if position is None:
            return float(state.last_access)
        payload = state.payload
        if hasattr(payload, "mbr"):
            center = payload.mbr.center()
        else:
            entries = payload.entries()
            if not entries:
                return 0.0
            from repro.geometry import Rect
            center = Rect.bounding(e.mbr for e in entries).center()
        # Farthest first => lower score for larger distance.
        return -position.distance_to(center)
