"""Client-side query processing over the proactive cache (Algorithm 1).

The processor walks the *cached* portion of the R-tree exactly like the
server would walk the real tree.  Whenever it pops an entry whose node or
object is not cached (or a super entry it cannot expand), the entry becomes a
*missing entry* and is set aside; when no progress can be made with what is
cached, the missing entries form the frontier of the remainder query.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.core.cache import ProactiveCache
from repro.core.items import (
    CachedObject,
    CacheEntry,
    FrontierTarget,
    TargetKind,
    item_key_for_node,
    item_key_for_object,
)
from repro.core.remainder import FrontierItem, RemainderQuery
from repro.geometry import Point, Rect
from repro.obs import instrument as obs
from repro.obs.instrument import perf_clock
from repro.workload.queries import JoinQuery, KNNQuery, Query, QueryType, RangeQuery


@dataclass(**DATACLASS_SLOTS)
class ClientExecution:
    """Outcome of the first (local) processing stage of a query."""

    query: Query
    saved_objects: Dict[int, CachedObject] = field(default_factory=dict)
    frontier: List[FrontierItem] = field(default_factory=list)
    k_remaining: Optional[int] = None
    blocked_cached_objects: int = 0
    examined_elements: int = 0
    cpu_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        """True when the query was fully answered from the cache."""
        if self.frontier:
            return False
        return self.k_remaining in (None, 0)

    def remainder(self, reported_fmr: Optional[float] = None) -> Optional[RemainderQuery]:
        """Build the remainder query, or ``None`` when the cache sufficed."""
        if self.complete:
            return None
        return RemainderQuery(query=self.query, frontier=list(self.frontier),
                              k_remaining=self.k_remaining, reported_fmr=reported_fmr)


class ClientQueryProcessor:
    """Executes spatial queries against the proactive cache.

    Parameters
    ----------
    cache:
        The client's proactive cache.
    root_id / root_mbr:
        Static catalogue information about the server's R-tree root (the
        client learns this once when it connects; it is a handful of bytes).
    """

    def __init__(self, cache: ProactiveCache, root_id: int, root_mbr: Rect) -> None:
        self.cache = cache
        self.root_id = root_id
        self.root_mbr = root_mbr

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, query: Query) -> ClientExecution:
        """Run Algorithm 1 for ``query`` and return the local execution state."""
        start = perf_clock()
        if isinstance(query, RangeQuery):
            execution = self._execute_range(query)
        elif isinstance(query, KNNQuery):
            execution = self._execute_knn(query)
        elif isinstance(query, JoinQuery):
            execution = self._execute_join(query)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported query type: {type(query)!r}")
        execution.cpu_seconds = perf_clock() - start
        return execution

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _touch_node(self, node_id: int) -> None:
        self.cache.touch(item_key_for_node(node_id))

    def _touch_object(self, object_id: int) -> None:
        self.cache.touch(item_key_for_object(object_id))

    # ------------------------------------------------------------------ #
    # range queries
    # ------------------------------------------------------------------ #
    def _execute_range(self, query: RangeQuery) -> ClientExecution:
        execution = ClientExecution(query=query)
        window = query.window
        if not self.root_mbr.intersects(window):
            return execution

        stack: List[Tuple[str, object]] = [("node", (self.root_id, self.root_mbr))]
        while stack:
            kind, payload = stack.pop()
            execution.examined_elements += 1
            if kind == "node":
                node_id, mbr = payload
                snapshot = self.cache.get_node(node_id)
                if snapshot is None:
                    execution.frontier.append(
                        (FrontierTarget.for_node(node_id, mbr),))
                    continue
                self._touch_node(node_id)
                for element in snapshot.entries():
                    if element.mbr.intersects(window):
                        stack.append(("entry", (element, node_id)))
            else:
                element, owner = payload
                if element.is_super:
                    execution.frontier.append(
                        (FrontierTarget.for_super(owner, element.code, element.mbr),))
                elif element.is_node_entry:
                    stack.append(("node", (element.child_id, element.mbr)))
                else:
                    cached = self.cache.get_object(element.object_id)
                    if cached is None:
                        execution.frontier.append(
                            (FrontierTarget.for_object(element.object_id, element.mbr,
                                                       parent_node_id=owner),))
                    else:
                        self._touch_object(element.object_id)
                        execution.saved_objects[element.object_id] = cached
        return execution

    # ------------------------------------------------------------------ #
    # kNN queries
    # ------------------------------------------------------------------ #
    def _execute_knn(self, query: KNNQuery) -> ClientExecution:
        execution = ClientExecution(query=query)
        point = query.point
        k = query.k

        counter = itertools.count()
        heap: List[Tuple[float, int, str, object]] = []

        def push(kind: str, payload: object, priority: float) -> None:
            heapq.heappush(heap, (priority, next(counter), kind, payload))

        push("node", (self.root_id, self.root_mbr),
             self.root_mbr.min_dist_to_point(point))

        confirmed: Dict[int, CachedObject] = {}
        pending: List[Tuple[float, FrontierTarget]] = []
        missing_nonleaf = 0
        missing_leaf = 0

        while heap and len(confirmed) + missing_leaf < k:
            priority, _, kind, payload = heapq.heappop(heap)
            execution.examined_elements += 1
            if kind == "node":
                node_id, mbr = payload
                snapshot = self.cache.get_node(node_id)
                if snapshot is None:
                    pending.append((priority, FrontierTarget.for_node(node_id, mbr, priority)))
                    missing_nonleaf += 1
                    continue
                self._touch_node(node_id)
                for element in snapshot.entries():
                    element_priority = element.mbr.min_dist_to_point(point)
                    if element.is_super:
                        push("super", (element, node_id), element_priority)
                    elif element.is_node_entry:
                        push("node", (element.child_id, element.mbr), element_priority)
                    else:
                        push("object", (element, node_id), element_priority)
            elif kind == "super":
                element, owner = payload
                pending.append((priority,
                                FrontierTarget.for_super(owner, element.code,
                                                         element.mbr, priority)))
                missing_nonleaf += 1
            else:  # object
                element, owner = payload
                cached = self.cache.get_object(element.object_id)
                if cached is not None and missing_nonleaf == 0:
                    self._touch_object(element.object_id)
                    confirmed[element.object_id] = cached
                    continue
                # A cached object popped behind a missing node cannot be
                # locally confirmed, but its payload needs no re-download:
                # ship it as a confirmation-only frontier target.
                pending.append((priority,
                                FrontierTarget.for_object(element.object_id, element.mbr,
                                                          parent_node_id=owner,
                                                          priority=priority,
                                                          confirm_only=cached is not None)))
                if cached is None:
                    missing_leaf += 1
                else:
                    execution.blocked_cached_objects += 1

        execution.saved_objects = confirmed
        if len(confirmed) >= k:
            return execution
        if not pending and not heap:
            # Nothing was ever set aside (no super entry, missing node or
            # unconfirmed object), so the cached view covered the whole tree:
            # fewer than k objects exist and the local answer is provably
            # complete.  Had anything been set aside it would sit in
            # ``pending`` and execution would fall through to the
            # frontier-building path below, which does contact the server.
            execution.k_remaining = None
            return execution

        # Build and prune the frontier: keep candidates up to the (k - m)-th
        # leaf (object) element in distance order; coarser elements beyond it
        # cannot contain closer objects (paper Example 3.1).
        candidates: List[Tuple[float, FrontierTarget]] = list(pending)
        while heap:
            priority, _, kind, payload = heapq.heappop(heap)
            if kind == "node":
                node_id, mbr = payload
                candidates.append((priority, FrontierTarget.for_node(node_id, mbr, priority)))
            elif kind == "super":
                element, owner = payload
                candidates.append((priority,
                                   FrontierTarget.for_super(owner, element.code,
                                                            element.mbr, priority)))
            else:
                element, owner = payload
                candidates.append((priority,
                                   FrontierTarget.for_object(
                                       element.object_id, element.mbr,
                                       parent_node_id=owner, priority=priority,
                                       confirm_only=self.cache.has_object(element.object_id))))
        candidates.sort(key=lambda item: item[0])
        needed = k - len(confirmed)
        cutoff = None
        object_count = 0
        for priority, target in candidates:
            if target.kind is TargetKind.OBJECT:
                object_count += 1
                if object_count == needed:
                    cutoff = priority
                    break
        kept = [target for priority, target in candidates
                if cutoff is None or priority <= cutoff + 1e-12]
        execution.frontier = [(target,) for target in kept]
        execution.k_remaining = needed
        return execution

    # ------------------------------------------------------------------ #
    # distance self-join queries
    # ------------------------------------------------------------------ #
    def _execute_join(self, query: JoinQuery) -> ClientExecution:
        execution = ClientExecution(query=query)
        window = query.window
        threshold = query.threshold
        if not self.root_mbr.intersects(window):
            return execution

        root_side = ("node", self.root_id, self.root_mbr)
        stack: List[Tuple[Tuple, Tuple, bool]] = [(root_side, root_side, False)]
        seen_pairs: Set[Tuple] = set()
        result_pairs: Set[Tuple[int, int]] = set()

        def side_key(side: Tuple) -> Tuple:
            kind = side[0]
            if kind == "node":
                return ("n", side[1])
            if kind == "super":
                return ("s", side[1], side[2])
            return ("o", side[1])

        def side_mbr(side: Tuple) -> Rect:
            return side[-1] if side[0] != "object" else side[2]

        # Same inlining as the server's join predicate: one call per
        # candidate pair, hoisted window coords, squared MINDIST.
        w_min_x, w_min_y = window.min_x, window.min_y
        w_max_x, w_max_y = window.max_x, window.max_y
        threshold_sq = threshold * threshold

        def qualifies(a: Tuple, b: Tuple) -> bool:
            mbr_a = a[2] if a[0] == "object" else a[-1]
            mbr_b = b[2] if b[0] == "object" else b[-1]
            if (mbr_a.min_x > w_max_x or mbr_a.max_x < w_min_x
                    or mbr_a.min_y > w_max_y or mbr_a.max_y < w_min_y):
                return False
            if (mbr_b.min_x > w_max_x or mbr_b.max_x < w_min_x
                    or mbr_b.min_y > w_max_y or mbr_b.max_y < w_min_y):
                return False
            dx = mbr_a.min_x - mbr_b.max_x
            if dx < 0.0:
                dx = mbr_b.min_x - mbr_a.max_x
                if dx < 0.0:
                    dx = 0.0
            dy = mbr_a.min_y - mbr_b.max_y
            if dy < 0.0:
                dy = mbr_b.min_y - mbr_a.max_y
                if dy < 0.0:
                    dy = 0.0
            return dx * dx + dy * dy <= threshold_sq

        # Memoised per query: a cached node's side list never changes while
        # the join runs (joins only touch, never insert or evict), but the
        # hit-accounting touch must still land once per expansion, exactly
        # as the unmemoised walk performed it.
        expand_cache: Dict[int, Optional[List[Tuple]]] = {}

        def expand(side: Tuple) -> Optional[List[Tuple]]:
            """Expand a node side into child sides; None when not possible locally."""
            kind = side[0]
            if kind != "node":
                return None
            node_id = side[1]
            if node_id in expand_cache:
                cached = expand_cache[node_id]
                if cached is not None:
                    self._touch_node(node_id)
                return cached
            snapshot = self.cache.get_node(node_id)
            if snapshot is None:
                expand_cache[node_id] = None
                return None
            self._touch_node(node_id)
            sides: List[Tuple] = []
            for element in snapshot.entries():
                if element.is_super:
                    sides.append(("super", node_id, element.code, element.mbr))
                elif element.is_node_entry:
                    sides.append(("node", element.child_id, element.mbr))
                else:
                    sides.append(("object", element.object_id, element.mbr, node_id))
            expand_cache[node_id] = sides
            return sides

        def to_target(side: Tuple) -> FrontierTarget:
            kind = side[0]
            if kind == "node":
                return FrontierTarget.for_node(side[1], side[2])
            if kind == "super":
                return FrontierTarget.for_super(side[1], side[2], side[3])
            return FrontierTarget.for_object(side[1], side[2], parent_node_id=side[3],
                                             confirm_only=self.cache.has_object(side[1]))

        def resolvable(side: Tuple) -> bool:
            kind = side[0]
            if kind == "super":
                return False
            if kind == "node":
                return self.cache.has_node(side[1])
            return self.cache.has_object(side[1])

        while stack:
            side_a, side_b, prequalified = stack.pop()
            execution.examined_elements += 1
            if not prequalified and not qualifies(side_a, side_b):
                continue
            key_a, key_b = side_key(side_a), side_key(side_b)
            pair_key = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
            if pair_key in seen_pairs:
                continue
            seen_pairs.add(pair_key)

            # A pair is a missing pair as soon as either entry is missing
            # (Algorithm 1, footnote 3): it goes into the frontier untouched.
            if not (resolvable(side_a) and resolvable(side_b)):
                if side_a[0] == "object" and side_b[0] == "object" and side_a[1] == side_b[1]:
                    continue
                execution.frontier.append((to_target(side_a), to_target(side_b)))
                continue

            a_is_object = side_a[0] == "object"
            b_is_object = side_b[0] == "object"
            if a_is_object and b_is_object:
                id_a, id_b = side_a[1], side_b[1]
                if id_a == id_b:
                    continue
                cached_a = self.cache.get_object(id_a)
                cached_b = self.cache.get_object(id_b)
                self._touch_object(id_a)
                self._touch_object(id_b)
                result_pairs.add(tuple(sorted((id_a, id_b))))
                execution.saved_objects[id_a] = cached_a
                execution.saved_objects[id_b] = cached_b
                continue

            # Both sides resolvable and at least one is a node: expand one side
            # and pair its children with the other side.
            if not a_is_object:
                expanded, other = expand(side_a), side_b
            else:
                expanded, other = expand(side_b), side_a
            if expanded is None:  # pragma: no cover - defensive (resolvable node)
                execution.frontier.append((to_target(side_a), to_target(side_b)))
                continue
            # Inline child-vs-other predicate (same shape as the server's):
            # `other` already passed the window test as part of this pair.
            o_mbr = other[2] if other[0] == "object" else other[-1]
            o_min_x, o_min_y = o_mbr.min_x, o_mbr.min_y
            o_max_x, o_max_y = o_mbr.max_x, o_mbr.max_y
            push = stack.append
            for child in expanded:
                c_mbr = child[2] if child[0] == "object" else child[-1]
                if (c_mbr.min_x > w_max_x or c_mbr.max_x < w_min_x
                        or c_mbr.min_y > w_max_y or c_mbr.max_y < w_min_y):
                    continue
                dx = c_mbr.min_x - o_max_x
                if dx < 0.0:
                    dx = o_min_x - c_mbr.max_x
                    if dx < 0.0:
                        dx = 0.0
                dy = c_mbr.min_y - o_max_y
                if dy < 0.0:
                    dy = o_min_y - c_mbr.max_y
                    if dy < 0.0:
                        dy = 0.0
                if dx * dx + dy * dy <= threshold_sq:
                    push((child, other, True))
        return execution
