"""The remainder query ``Qr = {Q, H}`` shipped from client to server."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.core.items import FrontierTarget
from repro.rtree.sizes import SizeModel
from repro.workload.queries import Query


FrontierItem = Tuple[FrontierTarget, ...]


@dataclass(**DATACLASS_SLOTS)
class RemainderQuery:
    """The execution state handed over to the server (paper Section 3.3).

    ``frontier`` holds the missing entries of the client's priority queue: a
    tuple of one target per item for range / kNN queries and a pair of
    targets for join queries.  ``k_remaining`` carries the ``k − m`` of a
    partially answered kNN query.
    """

    query: Query
    frontier: List[FrontierItem] = field(default_factory=list)
    k_remaining: Optional[int] = None
    reported_fmr: Optional[float] = None

    @property
    def is_empty(self) -> bool:
        """True when nothing needs to be asked of the server."""
        return not self.frontier and self.k_remaining in (None, 0)

    def target_count(self) -> int:
        """Number of frontier targets (pairs count twice)."""
        return sum(len(item) for item in self.frontier)

    def size_bytes(self, size_model: SizeModel) -> int:
        """Uplink footprint: the query descriptor plus the shipped frontier."""
        total = self.query.descriptor_bytes(size_model)
        total += self.target_count() * size_model.frontier_entry_bytes()
        if self.k_remaining is not None:
            total += size_model.coordinate_bytes
        if self.reported_fmr is not None:
            total += size_model.coordinate_bytes
        return total
