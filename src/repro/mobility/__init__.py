"""Client mobility models and the query arrival process.

Two mobility models from the paper are provided: the random waypoint model
(RAN) and the directed movement model (DIR), plus the Poisson (exponential
think-time) query arrival process that drives when queries are issued.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.mobility.directed import DirectedMovementModel
from repro.mobility.arrival import PoissonThinkTime

__all__ = [
    "MobilityModel",
    "RandomWaypointModel",
    "DirectedMovementModel",
    "PoissonThinkTime",
    "make_mobility_model",
]


def make_mobility_model(name: str, speed: float, seed: int = 0) -> MobilityModel:
    """Create a mobility model by the paper's name ("RAN" or "DIR")."""
    key = name.upper()
    if key in ("RAN", "RANDOM", "RANDOM_WAYPOINT"):
        return RandomWaypointModel(speed=speed, seed=seed)
    if key in ("DIR", "DIRECTED"):
        return DirectedMovementModel(speed=speed, seed=seed)
    raise ValueError(f"unknown mobility model {name!r}; expected 'RAN' or 'DIR'")
