"""The Poisson query arrival process (exponential think time)."""

from __future__ import annotations

import random
from typing import Iterator


class PoissonThinkTime:
    """Exponentially distributed think time between consecutive queries.

    The paper models query issuing as a Poisson process: after a query
    completes, the client waits an exponentially distributed "thinking time"
    (mean 50 s by default) before issuing the next one.
    """

    def __init__(self, mean_seconds: float = 50.0, seed: int = 0) -> None:
        if mean_seconds <= 0:
            raise ValueError("mean_seconds must be positive")
        self.mean_seconds = mean_seconds
        self.rng = random.Random(seed)

    def sample(self) -> float:
        """One think-time draw in seconds."""
        return self.rng.expovariate(1.0 / self.mean_seconds)

    def stream(self) -> Iterator[float]:
        """An endless stream of think times."""
        while True:
            yield self.sample()
