"""The directed movement mobility model (DIR)."""

from __future__ import annotations

import math
import random

from repro.geometry import Point
from repro.mobility.base import MobilityModel


class DirectedMovementModel(MobilityModel):
    """Directed movement: successive destinations roughly preserve the heading.

    This models on-purpose movement (e.g. driving along a route): the next
    destination is chosen a random distance ahead within ``max_turn`` radians
    of the current heading, reflecting off the unit-square boundary when
    necessary.  Query locality is therefore lower than under random waypoint,
    which is exactly why caching benefits shrink under DIR in the paper.
    """

    def __init__(self, speed: float, seed: int = 0, start: Point = Point(0.5, 0.5),
                 max_turn: float = math.pi / 4, leg_length: float = 0.15,
                 max_pause_seconds: float = 30.0) -> None:
        super().__init__(speed=speed, start=start)
        self.rng = random.Random(seed)
        self.max_turn = max_turn
        self.leg_length = leg_length
        self.max_pause_seconds = max_pause_seconds
        self._heading = self.rng.uniform(0, 2 * math.pi)
        self._pause_remaining = 0.0
        self._destination = self._pick_destination()
        self._current_speed = self.speed * self.rng.uniform(0.5, 1.5)

    def _pick_destination(self) -> Point:
        self._heading += self.rng.uniform(-self.max_turn, self.max_turn)
        length = self.rng.uniform(0.3, 1.0) * self.leg_length
        x = self.position.x + length * math.cos(self._heading)
        y = self.position.y + length * math.sin(self._heading)
        # Reflect the heading off the boundary instead of clamping into a corner.
        if x < 0.0 or x > 1.0:
            self._heading = math.pi - self._heading
            x = min(max(x, 0.0), 1.0)
        if y < 0.0 or y > 1.0:
            self._heading = -self._heading
            y = min(max(y, 0.0), 1.0)
        return Point(x, y)

    def advance(self, elapsed_seconds: float) -> Point:
        remaining = max(0.0, elapsed_seconds)
        while remaining > 0:
            if self._pause_remaining > 0:
                pause = min(self._pause_remaining, remaining)
                self._pause_remaining -= pause
                remaining -= pause
                continue
            distance_to_dest = self.position.distance_to(self._destination)
            travel_time = (distance_to_dest / self._current_speed
                           if self._current_speed > 0 else float("inf"))
            if travel_time <= remaining:
                self.position = self._destination
                remaining -= travel_time
                self._pause_remaining = self.rng.uniform(0.0, self.max_pause_seconds)
                self._destination = self._pick_destination()
                self._current_speed = self.speed * self.rng.uniform(0.5, 1.5)
            else:
                fraction = (remaining * self._current_speed) / distance_to_dest
                self.position = Point(
                    self.position.x + (self._destination.x - self.position.x) * fraction,
                    self.position.y + (self._destination.y - self.position.y) * fraction,
                )
                remaining = 0.0
        return self.position
