"""Mobility-model interface."""

from __future__ import annotations

import abc

from repro.geometry import Point


class MobilityModel(abc.ABC):
    """A client trajectory inside the unit square.

    The simulation advances the model in variable time steps (the think time
    between queries); :meth:`advance` returns the client's new position.
    """

    def __init__(self, speed: float, start: Point = Point(0.5, 0.5)) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.speed = speed
        self.position = start

    @abc.abstractmethod
    def advance(self, elapsed_seconds: float) -> Point:
        """Move the client for ``elapsed_seconds`` and return the new position."""

    def reset(self, start: Point = Point(0.5, 0.5)) -> None:
        """Restart the trajectory from ``start``."""
        self.position = start
