"""The random waypoint mobility model (RAN)."""

from __future__ import annotations

import math
import random

from repro.geometry import Point
from repro.mobility.base import MobilityModel


class RandomWaypointModel(MobilityModel):
    """Random waypoint (Broch et al.): move to a random destination, pause, repeat.

    The client picks a uniformly random destination in the unit square and a
    speed drawn uniformly from ``[0.5, 1.5] * speed``; upon arrival it pauses
    for a uniformly random period up to ``max_pause_seconds`` and then picks a
    new destination.
    """

    def __init__(self, speed: float, seed: int = 0, start: Point = Point(0.5, 0.5),
                 max_pause_seconds: float = 60.0) -> None:
        super().__init__(speed=speed, start=start)
        self.rng = random.Random(seed)
        self.max_pause_seconds = max_pause_seconds
        self._pause_remaining = 0.0
        self._destination = self._pick_destination()
        self._current_speed = self._pick_speed()

    def _pick_destination(self) -> Point:
        return Point(self.rng.random(), self.rng.random())

    def _pick_speed(self) -> float:
        return self.speed * self.rng.uniform(0.5, 1.5)

    def advance(self, elapsed_seconds: float) -> Point:
        remaining = max(0.0, elapsed_seconds)
        while remaining > 0:
            if self._pause_remaining > 0:
                pause = min(self._pause_remaining, remaining)
                self._pause_remaining -= pause
                remaining -= pause
                continue
            distance_to_dest = self.position.distance_to(self._destination)
            travel_time = (distance_to_dest / self._current_speed
                           if self._current_speed > 0 else float("inf"))
            if travel_time <= remaining:
                self.position = self._destination
                remaining -= travel_time
                self._pause_remaining = self.rng.uniform(0.0, self.max_pause_seconds)
                self._destination = self._pick_destination()
                self._current_speed = self._pick_speed()
            else:
                fraction = (remaining * self._current_speed) / distance_to_dest
                self.position = Point(
                    self.position.x + (self._destination.x - self.position.x) * fraction,
                    self.position.y + (self._destination.y - self.position.y) * fraction,
                )
                remaining = 0.0
        return self.position
