"""Routing dataset updates to their owning shard.

:class:`ShardedUpdater` is the sharded counterpart of
:class:`~repro.updates.applier.DatasetUpdater` and duck-types the slice of
its surface the consistency protocols consume (``registry`` / ``tree`` /
``server`` / ``apply`` / ``summary``), so a dynamic sharded fleet plugs
into :func:`repro.updates.protocol.make_protocol` unchanged.

Routing rules (deterministic by construction):

* **insert** — the new object goes to the shard whose *static partition
  region* contains its centre (the same rule for the life of the
  deployment, persisted in the shard manifest);
* **delete / modify** — routed to the object's *current owner* through the
  router's owner table.  A modify keeps the object in its shard even when
  it drifts across a region boundary: the shard's live root MBR (which all
  query pruning uses) grows to cover it, so results stay exact and
  ownership stays stable.

Every shard has its own :class:`DatasetUpdater` (per-shard dirty-page
tracking and partition-tree invalidation) but all of them stamp one shared
:class:`~repro.updates.registry.VersionRegistry` — page ids are globally
disjoint and object ids globally unique, so one registry serves the whole
deployment, and the router's virtual root participates in versioning like
any real page (its content changes when a shard root splits, shrinks or
changes MBR).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.updates.applier import DatasetUpdater
from repro.updates.registry import VersionRegistry
from repro.updates.stream import UpdateEvent
from repro.sharding.router import ShardRouter


class ShardedUpdater:
    """Applies one shared update history across the shard set."""

    def __init__(self, router: ShardRouter, ground_truth=None,
                 registry: Optional[VersionRegistry] = None) -> None:
        self.router = router
        self.registry = registry or VersionRegistry()
        self.ground_truth = ground_truth
        router.registry = self.registry
        # The consistency protocols address "the server" through these two.
        self.tree = router.tree
        self.server = router
        self._shard_updaters: List[DatasetUpdater] = [
            DatasetUpdater(shard.tree, shard.server, ground_truth=None,
                           registry=self.registry)
            for shard in router.shards]
        self.skipped = 0

    # ------------------------------------------------------------------ #
    # applying events
    # ------------------------------------------------------------------ #
    def apply(self, event: UpdateEvent) -> bool:
        """Route one update event to its shard; returns False on a no-op."""
        router = self.router
        if event.kind == "insert":
            if router.owner_of(event.object_id) is not None:
                self.skipped += 1
                return False
            touched = router.plan.region_index_for(event.mbr.center())
            applied = self._shard_updaters[touched].apply(event)
            if applied:
                router.adopt_object(event.object_id, touched)
        else:
            touched = router.owner_of(event.object_id)
            if touched is None:
                self.skipped += 1
                return False
            applied = self._shard_updaters[touched].apply(event)
            if applied and event.kind == "delete":
                router.release_object(event.object_id)
        if applied:
            # Fence the partition-result cache's facts for the mutated
            # shard (the registry has already stamped the new version).
            router.note_shard_mutated(touched)
            router.refresh_virtual_root()
            if self.ground_truth is not None:
                self.ground_truth.clear()
        return applied

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, int]:
        """Deterministic counters pooled across the shard updaters."""
        pooled = {"applied": 0, "skipped": self.skipped, "inserts": 0,
                  "deletes": 0, "modifies": 0, "wal_commits": 0}
        for updater in self._shard_updaters:
            shard_summary = updater.summary()
            pooled["applied"] += shard_summary["applied"]
            pooled["skipped"] += shard_summary["skipped"]
            pooled["inserts"] += shard_summary["inserts"]
            pooled["deletes"] += shard_summary["deletes"]
            pooled["modifies"] += shard_summary["modifies"]
            pooled["wal_commits"] += shard_summary["wal_commits"]
        pooled["dataset_version"] = self.registry.dataset_version
        pooled["live_objects"] = len(self.tree.objects)
        return pooled
