"""Per-shard persistence: one ``.rpro`` page store per shard plus a manifest.

A sharded deployment checkpoints as a *directory*:

* ``shard-<i>.rpro`` — shard *i*'s R-tree through the ordinary
  :func:`repro.storage.paged.save_tree` (page ids carry their shard offset,
  so a reloaded shard keeps exactly the global id range it allocated);
* ``shards.json`` — the manifest: partitioner method, shard regions,
  per-shard object counts and the generating dataset configuration, so a
  reopened deployment reconstructs the same routing rules and rejects
  mismatched dataset flags exactly like the single-file store does.

Loading builds one :class:`~repro.sharding.shard.ShardServer` per file over
a :class:`~repro.storage.paged.PagedFileBackend`; ``writable=True`` opens
every backend through its copy-on-write overlay so a dynamic fleet can
mutate each shard while the files stay untouched.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.geometry import Rect
from repro.sharding.partitioner import PARTITIONER_METHODS, ShardPlan
from repro.sharding.shard import ShardServer
from repro.storage.backend import StorageError
from repro.storage.paged import (
    DEFAULT_BUFFER_PAGES,
    load_tree,
    pack,
    save_tree,
    wal_summary,
)

#: The manifest file name inside a shard-store directory.
MANIFEST_NAME = "shards.json"


def shard_file_name(index: int) -> str:
    """The file name of shard ``index`` inside a shard-store directory."""
    return f"shard-{index:03d}.rpro"


def save_shards(shards: List[ShardServer], plan: ShardPlan, directory: str,
                meta: Optional[Dict] = None) -> Dict:
    """Checkpoint every shard into ``directory``; returns the manifest."""
    os.makedirs(directory, exist_ok=True)
    files = []
    for shard in shards:
        name = shard_file_name(shard.shard_index)
        save_tree(shard.tree, os.path.join(directory, name), meta=meta)
        files.append(name)
    manifest = {
        "format": 1,
        "kind": "sharded-rtree-store",
        "shards": len(shards),
        "partitioner": plan.method,
        # Lists, not tuples, so the in-memory manifest equals its JSON
        # round-trip exactly.
        "regions": [list(region.as_tuple()) for region in plan.regions],
        "objects_per_shard": [shard.object_count for shard in shards],
        "files": files,
        "meta": dict(meta or {}),
    }
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return manifest


def read_manifest(directory: str) -> Dict:
    """Read and validate the manifest of a shard-store directory."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise StorageError(f"{directory} is not a shard store "
                           f"(missing {MANIFEST_NAME})")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except ValueError as error:
            raise StorageError(f"{manifest_path}: corrupt manifest: {error}")
    if manifest.get("kind") != "sharded-rtree-store" \
            or manifest.get("format") != 1:
        raise StorageError(
            f"{manifest_path}: unsupported kind "
            f"{manifest.get('kind')!r} / format {manifest.get('format')!r}")
    if manifest.get("partitioner") not in PARTITIONER_METHODS:
        raise StorageError(f"{manifest_path}: unknown partitioner "
                           f"{manifest.get('partitioner')!r}")
    if len(manifest.get("files", [])) != manifest.get("shards"):
        raise StorageError(f"{manifest_path}: shard count and file list "
                           f"disagree")
    regions = manifest.get("regions")
    if (not isinstance(regions, list)
            or len(regions) != manifest.get("shards")
            or any(not isinstance(values, (list, tuple)) or len(values) != 4
                   or not all(isinstance(value, (int, float))
                              for value in values)
                   for values in regions)):
        raise StorageError(f"{manifest_path}: regions must be one "
                           f"[min_x, min_y, max_x, max_y] entry per shard")
    return manifest


def plan_from_manifest(manifest: Dict) -> ShardPlan:
    """The (record-free) partition plan recorded in a manifest.

    Only the regions and method are recoverable — the per-shard record
    slices live in the ``.rpro`` files — so the returned plan carries empty
    record tuples; it exists to serve :meth:`ShardPlan.region_index_for`
    (insert routing) with the persisted regions.
    """
    try:
        regions = tuple(Rect(*values) for values in manifest["regions"])
    except ValueError as error:
        raise StorageError(f"corrupt shard manifest region: {error}")
    return ShardPlan(method=manifest["partitioner"],
                     shard_records=tuple(() for _ in regions),
                     regions=regions)


def load_shards(directory: str, writable: bool = False,
                buffer_pages: int = DEFAULT_BUFFER_PAGES,
                durable: bool = False,
                ) -> Tuple[List[ShardServer], ShardPlan, Dict]:
    """Reopen a shard-store directory.

    Returns ``(shards, plan, manifest)``.  ``writable=True`` opens every
    shard's backend copy-on-write so the dynamic-dataset machinery can
    mutate the trees without touching the files.  ``durable=True`` opens
    every shard in the durable write mode instead (see
    :func:`repro.storage.paged.load_tree`): each shard recovers its own
    ``shard-<i>.rpro.wal`` and attaches a writer, so every update batch a
    :class:`~repro.sharding.updater.ShardedUpdater` routes to a shard
    commits to that shard's log.
    """
    manifest = read_manifest(directory)
    plan = plan_from_manifest(manifest)
    shards: List[ShardServer] = []
    try:
        for index, name in enumerate(manifest["files"]):
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                raise StorageError(f"{directory}: missing shard file {name}")
            tree = load_tree(path, buffer_pages=buffer_pages,
                             copy_on_write=writable, writable=durable)
            shards.append(ShardServer(index, tree, plan.regions[index]))
    except Exception:
        for shard in shards:
            shard.close()
        raise
    return shards, plan, manifest


def shard_wal_summaries(directory: str) -> Dict[str, Dict]:
    """Per-shard WAL facts of a shard-store directory, keyed by file name.

    One :func:`repro.storage.paged.wal_summary` per manifest entry, in
    manifest order — the durability inspection surface of ``repro persist
    info`` for sharded deployments.  Never modifies any file.
    """
    manifest = read_manifest(directory)
    return {name: wal_summary(os.path.join(directory, name))
            for name in manifest["files"]}


def pack_shards(directory: str) -> Dict[str, Dict]:
    """Fold every shard's WAL into a fresh per-shard checkpoint.

    Runs :func:`repro.storage.paged.pack` over each manifest entry and
    returns the per-shard summaries keyed by file name.  Shards without a
    log still rewrite canonically (a no-op fold), so the directory always
    leaves in the log-free state.
    """
    manifest = read_manifest(directory)
    return {name: pack(os.path.join(directory, name))
            for name in manifest["files"]}
