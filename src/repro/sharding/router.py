"""The scatter-gather query router: one logical server over many shards.

:class:`ShardRouter` presents exactly the ``ServerQueryProcessor`` surface
the client tiers consume — ``root_id`` / ``root_mbr`` /
``execute(query, remainder, policy)`` / ``partition_tree_for`` — so
:class:`~repro.sim.sessions.ProactiveSession`, the proactive cache and the
consistency protocols run unchanged against a sharded deployment.

Routing model
-------------
* **One shard** — every call delegates wholesale to the shard's own server.
  Shard 0 allocates the single-server id sequence (see
  :mod:`repro.sharding.shard`), so a one-shard router is byte-identical to
  the unsharded system: same responses, same page counts, same snapshots.
* **Many shards** — the router interposes a *virtual root*: a synthetic
  directory page (id ``shards * NODE_ID_STRIDE + 1``) whose entries point at
  the live shard roots.  Clients cache it like any other node snapshot, so
  after the first contact they walk straight into per-shard subtrees and
  the client-side pruning of Algorithm 1 prunes whole shards for free.

Per query type:

* **range** — frontier items are routed to their owning shard (node ids by
  id range, object ids through the owner table); a virtual-root item
  scatters to every shard whose live root MBR intersects the window, and
  non-overlapping shards are pruned without being contacted.
* **kNN** — shards are visited best-first by the MINDIST of their nearest
  routed frontier target; once ``k`` candidates are in hand, any shard
  whose MINDIST exceeds the global k-th-best distance is pruned without a
  visit.  Per-shard top-``k`` frontiers merge into the global top-``k``.
* **join** — pairs may span shards, so the router runs the server's
  pairwise traversal itself, expanding node sides through the owning
  shard's partition-tree machinery (per-shard access recorders feed the
  ordinary snapshot builder), which handles intra- and cross-shard pairs
  uniformly.

Every response rolls the per-shard page accounting up into one
``accessed_node_count`` (and :class:`RouterStats` keeps the per-shard
split), so ``QueryCost.server_page_reads`` stays meaningful unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Dict, List, Optional, Tuple

from repro.core.items import CacheEntry, FrontierTarget, TargetKind
from repro.core.remainder import FrontierItem, RemainderQuery
from repro.core.server import (
    IndexNodeSnapshot,
    ObjectDelivery,
    ServerResponse,
)
from repro.core.supporting_index import SupportingIndexPolicy
from repro.geometry import Rect
from repro.obs import instrument as obs
from repro.obs.instrument import perf_clock
from repro.rtree.node import Node
from repro.rtree.partition_tree import PartitionTree, SuperEntry
from repro.rtree.entry import Entry
from repro.rtree.sizes import SizeModel
from repro.sharding.partitioner import ShardPlan
from repro.sharding.shard import NODE_ID_STRIDE, ShardServer, shard_index_for_node
from repro.workload.queries import JoinQuery, KNNQuery, Query, RangeQuery


class ShardStats:
    """Deterministic per-shard routing counters of one router instance."""

    def __init__(self, shard_count: int) -> None:
        self.shard_count = shard_count
        self.queries = 0
        self.queries_routed = [0] * shard_count
        self.pages_read = [0] * shard_count
        self.shards_pruned = [0] * shard_count
        self.shards_skipped = [0] * shard_count

    def record_visit(self, shard_index: int, pages: int) -> None:
        """One query reached ``shard_index`` and read ``pages`` pages there."""
        self.queries_routed[shard_index] += 1
        self.pages_read[shard_index] += pages
        if obs.ENABLED:
            obs.active().event("shard.visit", shard=shard_index, pages=pages)
            obs.active().count("repro_router_shards_visited_total", 1.0,
                               shard=shard_index)

    def record_prune(self, shard_index: int) -> None:
        """One *router-level* prune of ``shard_index``.

        Counts virtual-root scatters that skipped the shard (root-MBR /
        k-th-best-bound pruning).  Clients that cached the virtual root
        prune shards on their own side instead — those queries simply
        never route anything to the shard, so a mostly-irrelevant shard
        shows a low ``queries_routed``, not a high ``shards_pruned``.
        """
        self.shards_pruned[shard_index] += 1
        if obs.ENABLED:
            obs.active().count("repro_router_shards_pruned_total", 1.0,
                               shard=shard_index)

    def record_skip(self, shard_index: int) -> None:
        """One *result-cache* skip of ``shard_index``.

        Counts shards the partition-result cache proved irrelevant (empty
        for the query's canonical variants / beyond the memoised kNN
        bound), so the scatter never contacted them even though root-MBR
        pruning alone would have.  Always 0 without ``--router-cache``.
        """
        self.shards_skipped[shard_index] += 1
        if obs.ENABLED:
            obs.active().count("repro_router_shards_skipped_total", 1.0,
                               shard=shard_index)

    def summary(self) -> Dict:
        """Roll-up for fleet reports and perf fingerprints."""
        return {
            "queries": self.queries,
            "queries_routed": list(self.queries_routed),
            "shards_pruned": list(self.shards_pruned),
            "shards_skipped": list(self.shards_skipped),
            "pages_read": list(self.pages_read),
            "total_routed": sum(self.queries_routed),
            "total_pruned": sum(self.shards_pruned),
            "total_skipped": sum(self.shards_skipped),
            "total_pages_read": sum(self.pages_read),
        }


#: Backward-compatible alias (pre-PR-9 name of :class:`ShardStats`).
RouterStats = ShardStats


class ShardedObjectView(Mapping):
    """A live, read-only mapping view over every shard's object table."""

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    def __getitem__(self, object_id: int):
        owner = self._router.owner_of(object_id)
        if owner is None:
            raise KeyError(object_id)
        return self._router.shards[owner].tree.objects[object_id]

    def __iter__(self):
        for shard in self._router.shards:
            yield from shard.tree.objects

    def __len__(self) -> int:
        return sum(shard.object_count for shard in self._router.shards)


class ShardedStoreView:
    """Read-only page-store facade routing ids to their owning shard.

    Serves the virtual root as a synthetic page so the consistency
    protocols can validate and refresh it exactly like a real node.
    """

    #: The view never accepts mutations; shards mutate through their own
    #: stores (see :class:`~repro.sharding.updater.ShardedUpdater`).
    writable = False

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    def _shard_for(self, node_id: int) -> Optional[ShardServer]:
        index = shard_index_for_node(node_id)
        if 0 <= index < len(self._router.shards):
            return self._router.shards[index]
        return None

    def __contains__(self, node_id: int) -> bool:
        router = self._router
        if not router.is_single and node_id == router.virtual_root_id:
            return router.virtual_node is not None
        shard = self._shard_for(node_id)
        return shard is not None and node_id in shard.tree.store

    def peek(self, node_id: int) -> Node:
        router = self._router
        if not router.is_single and node_id == router.virtual_root_id:
            node = router.virtual_node
            if node is None:
                raise KeyError(node_id)
            return node
        shard = self._shard_for(node_id)
        if shard is None:
            raise KeyError(node_id)
        return shard.tree.store.peek(node_id)

    def get(self, node_id: int) -> Node:
        router = self._router
        if not router.is_single and node_id == router.virtual_root_id:
            return self.peek(node_id)
        shard = self._shard_for(node_id)
        if shard is None:
            raise KeyError(node_id)
        return shard.tree.store.get(node_id)


class ShardedTreeView:
    """Duck-types the read-side ``RTree`` surface the client tiers use.

    Sessions take a *tree* for its ``size_model`` and ``objects`` table,
    the consistency protocols peek pages through ``store``, and the
    ground-truth kernels (:func:`~repro.rtree.range_search.range_search`,
    :func:`~repro.rtree.knn.knn_search`) traverse from ``root`` through
    ``node`` — this view routes all of it across the shard set (for N > 1
    the traversal enters through the virtual root and crosses shard
    boundaries transparently).  It is read-only by design: mutation flows
    through the per-shard updaters.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router
        self.size_model = router.size_model
        self.store = ShardedStoreView(router)
        self.objects = ShardedObjectView(router)

    @property
    def root_id(self) -> int:
        """The deployment-wide traversal entry point (see the router)."""
        return self._router.root_id

    @property
    def root(self) -> Node:
        """The root page (the virtual root for N > 1; empty when no data)."""
        root_id = self._router.root_id
        if root_id in self.store:
            return self.store.peek(root_id)
        # Every shard is empty: serve an entryless page so traversals
        # terminate immediately, like an empty single-server tree.
        return Node(node_id=root_id, level=1)

    def node(self, node_id: int) -> Node:
        """Fetch a page by id (counts a logical read on the owning shard)."""
        return self.store.get(node_id)

    def object(self, object_id: int):
        """Fetch an object record by id (any shard)."""
        return self.objects[object_id]


class ShardRouter:
    """Plans and executes scatter-gather queries over a set of shards."""

    def __init__(self, shards: List[ShardServer], plan: ShardPlan,
                 size_model: Optional[SizeModel] = None) -> None:
        if not shards:
            raise ValueError("a router needs at least one shard")
        self.shards = list(shards)
        self.plan = plan
        self.size_model = size_model or shards[0].tree.size_model
        self.stats = ShardStats(len(shards))
        #: Optional partition-result cache (see ``result_cache.py``);
        #: attached with :meth:`attach_result_cache`.
        self.result_cache = None
        #: object id -> owning shard index, maintained across updates.
        self._owner: Dict[int, int] = {
            object_id: index
            for index, shard in enumerate(self.shards)
            for object_id in shard.tree.objects}
        #: Version registry the virtual root reports content changes to
        #: (attached by the sharded updater of dynamic runs).
        self.registry = None
        self.virtual_root_id = len(self.shards) * NODE_ID_STRIDE + 1
        self._virtual_node: Optional[Node] = None
        self._virtual_pt: Optional[PartitionTree] = None
        self._virtual_fingerprint: Optional[Tuple] = None
        if not self.is_single:
            self.refresh_virtual_root()
        self.tree = ShardedTreeView(self)

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @property
    def is_single(self) -> bool:
        """True for the degenerate one-shard deployment (pure delegation)."""
        return len(self.shards) == 1

    @property
    def virtual_node(self) -> Optional[Node]:
        """The synthetic directory page over the live shard roots."""
        return self._virtual_node

    def owner_of(self, object_id: int) -> Optional[int]:
        """The shard currently owning ``object_id`` (``None`` when dead)."""
        return self._owner.get(object_id)

    def adopt_object(self, object_id: int, shard_index: int) -> None:
        """Record that ``shard_index`` now owns ``object_id``."""
        self._owner[object_id] = shard_index

    def release_object(self, object_id: int) -> None:
        """Drop a deleted object from the owner table."""
        self._owner.pop(object_id, None)

    def live_shards(self) -> List[Tuple[int, ShardServer]]:
        """The non-empty shards, in shard order."""
        return [(index, shard) for index, shard in enumerate(self.shards)
                if not shard.is_empty]

    def attach_result_cache(self, cache) -> None:
        """Consult ``cache`` (a :class:`PartitionResultCache`) per scatter."""
        self.result_cache = cache
        cache.bind(self)

    def note_shard_mutated(self, shard_index: int) -> None:
        """An applied update touched ``shard_index`` (fences cached facts)."""
        if self.result_cache is not None:
            self.result_cache.note_shard_mutated(shard_index)

    def refresh_virtual_root(self) -> bool:
        """Rebuild the virtual root from the live shard roots.

        Returns True when the directory content changed; the change is
        reported to the attached version registry so cached copies of the
        virtual root are refreshed by the versioned consistency protocol
        exactly like any mutated page.
        """
        if self.is_single:
            return False
        live = self.live_shards()
        entries = [Entry(mbr=shard.root_mbr, child_id=shard.root_id)
                   for _, shard in live]
        level = 1 + max((shard.tree.store.peek(shard.root_id).level
                         for _, shard in live), default=0)
        fingerprint = (level, tuple((entry.child_id, entry.mbr.as_tuple())
                                    for entry in entries))
        if fingerprint == self._virtual_fingerprint:
            return False
        changed_after_build = self._virtual_fingerprint is not None
        node = Node(node_id=self.virtual_root_id, level=level)
        node.entries = entries
        self._virtual_node = node if entries else None
        self._virtual_pt = PartitionTree(node) if entries else None
        self._virtual_fingerprint = fingerprint
        if changed_after_build and self.registry is not None:
            self.registry.bump_node(self.virtual_root_id)
        return True

    # ------------------------------------------------------------------ #
    # ServerQueryProcessor surface
    # ------------------------------------------------------------------ #
    @property
    def root_id(self) -> int:
        """The id clients start their traversals from."""
        if self.is_single:
            return self.shards[0].server.root_id
        return self.virtual_root_id

    @property
    def root_mbr(self) -> Rect:
        """Live MBR of the whole deployment's data."""
        if self.is_single:
            return self.shards[0].server.root_mbr
        live = [shard.root_mbr for _, shard in self.live_shards()]
        return Rect.bounding(live) if live else Rect.unit()

    def partition_tree_for(self, node_id: int) -> PartitionTree:
        """The partition tree of any page, including the virtual root."""
        if not self.is_single and node_id == self.virtual_root_id:
            if self._virtual_pt is None:
                raise KeyError(node_id)
            return self._virtual_pt
        index = shard_index_for_node(node_id)
        if not 0 <= index < len(self.shards):
            raise KeyError(node_id)
        return self.shards[index].server.partition_tree_for(node_id)

    def execute(self, query: Query, remainder: Optional[RemainderQuery] = None,
                policy: Optional[SupportingIndexPolicy] = None) -> ServerResponse:
        """Process ``query`` across the shard set and merge one response."""
        policy = policy or SupportingIndexPolicy.adaptive()
        if self.registry is not None:
            # MVCC read pinning: stamp the committed version this scatter-
            # gather query executes against; raises mid-update-batch, so a
            # query can never observe a half-applied batch across shards.
            self.registry.pin()
        self.stats.queries += 1
        if self.is_single:
            response = self.shards[0].server.execute(query, remainder, policy)
            self.stats.record_visit(0, response.accessed_node_count)
            return response
        if self.result_cache is not None:
            self.result_cache.begin_query()
        start = perf_clock()
        frontier = (remainder.frontier if remainder is not None
                    else self._default_frontier(query))
        if isinstance(query, RangeQuery):
            response = self._scatter_range(query, frontier, policy)
        elif isinstance(query, KNNQuery):
            response = self._scatter_knn(query, remainder, frontier, policy)
        elif isinstance(query, JoinQuery):
            # Range / kNN confirm-only handling happens inside the shard
            # servers (the routed frontier items carry the flags); only the
            # router-level join traversal needs the set up front.
            client_held = {target.object_id for item in frontier
                           for target in item
                           if target.kind is TargetKind.OBJECT
                           and target.confirm_only}
            response = self._scatter_join(query, frontier, policy, client_held)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported query type {type(query)!r}")
        response.index_snapshots.sort(key=lambda snapshot: -snapshot.level)
        response.deliveries.sort(key=lambda delivery: delivery.record.object_id)
        response.cpu_seconds = perf_clock() - start
        if obs.ENABLED:
            obs.active().event("router.execute",
                               pages=response.accessed_node_count,
                               deliveries=len(response.deliveries))
        return response

    # ------------------------------------------------------------------ #
    # routing helpers
    # ------------------------------------------------------------------ #
    def _default_frontier(self, query: Query) -> List[FrontierItem]:
        root_target = FrontierTarget.for_node(self.virtual_root_id, self.root_mbr)
        if isinstance(query, JoinQuery):
            return [(root_target, root_target)]
        return [(root_target,)]

    def _is_virtual_target(self, target: FrontierTarget) -> bool:
        return (target.kind is not TargetKind.OBJECT
                and target.node_id == self.virtual_root_id)

    def _route_target(self, target: FrontierTarget) -> Optional[int]:
        """The shard a frontier target belongs to; ``None`` drops it.

        Dropped targets mirror the single server's stale-state handling:
        object targets of since-deleted objects and node targets of empty
        shards (whose pages have nothing left to answer from) are
        unanswerable and are skipped.
        """
        if target.kind is TargetKind.OBJECT:
            return self._owner.get(target.object_id)
        index = shard_index_for_node(target.node_id)
        if not 0 <= index < len(self.shards):
            return None
        if self.shards[index].is_empty:
            return None
        return index

    def _virtual_snapshot(self) -> Optional[IndexNodeSnapshot]:
        """The full-form shippable snapshot of the virtual root."""
        node, pt = self._virtual_node, self._virtual_pt
        if node is None or pt is None:
            return None
        elements = [CacheEntry(mbr=entry.mbr, code=code, child_id=entry.child_id)
                    for code, entry in pt.full_form()]
        return IndexNodeSnapshot(node_id=node.node_id, level=node.level,
                                 parent_id=None, elements=elements)

    def _attach_virtual(self, response: ServerResponse) -> None:
        """Account for (and ship) one access to the virtual directory page."""
        snapshot = self._virtual_snapshot()
        if snapshot is not None:
            response.index_snapshots.append(snapshot)
            response.accessed_node_count += 1
            response.examined_elements += 1

    def _merge_shard_response(self, merged: ServerResponse, shard_index: int,
                              response: ServerResponse) -> None:
        self.stats.record_visit(shard_index, response.accessed_node_count)
        merged.deliveries.extend(response.deliveries)
        merged.index_snapshots.extend(response.index_snapshots)
        merged.accessed_node_count += response.accessed_node_count
        merged.examined_elements += response.examined_elements

    # ------------------------------------------------------------------ #
    # range
    # ------------------------------------------------------------------ #
    def _scatter_range(self, query: RangeQuery, frontier: List[FrontierItem],
                       policy: SupportingIndexPolicy) -> ServerResponse:
        window = query.window
        cache = self.result_cache
        # One root-MBR read per live shard per query: Node.mbr recomputes
        # its bounding box on every access, so the cache plan and the
        # virtual expansion below share this snapshot.
        shard_mbrs = {index: shard.root_mbr
                      for index, shard in self.live_shards()}
        allowed: Optional[set] = None
        if cache is not None:
            # Conjunctive hit-set intersection over the window's canonical
            # variants: a shard absent from any variant's hit-set holds no
            # object intersecting the window and is skipped wholesale (the
            # window is contained in every variant rectangle, so results
            # are untouched — see result_cache.py "Safety").
            allowed = cache.plan_range(
                window, [(index, shard) for index, shard in self.live_shards()
                         if shard_mbrs[index].intersects(window)])
        skip_noted: set = set()

        def note_skip(index: int) -> None:
            if index not in skip_noted:
                skip_noted.add(index)
                self.stats.record_skip(index)

        shard_items: Dict[int, List[FrontierItem]] = {}
        virtual_hit = False
        for item in frontier:
            target = item[0]
            if self._is_virtual_target(target):
                virtual_hit = True
                for index, shard in self.live_shards():
                    if not shard_mbrs[index].intersects(window):
                        self.stats.record_prune(index)
                    elif allowed is not None and index not in allowed:
                        note_skip(index)
                    else:
                        shard_items.setdefault(index, []).append(
                            (FrontierTarget.for_node(shard.root_id,
                                                     shard_mbrs[index]),))
                continue
            index = self._route_target(target)
            if index is None:
                continue
            if allowed is not None and index not in allowed:
                note_skip(index)
                continue
            shard_items.setdefault(index, []).append(item)
        merged = ServerResponse()
        if virtual_hit:
            self._attach_virtual(merged)
        for index in sorted(shard_items):
            shard = self.shards[index]
            response = shard.server.execute(
                query, RemainderQuery(query=query, frontier=shard_items[index]),
                policy)
            if cache is not None and response.deliveries:
                cache.record_range_delivery(window, index)
            self._merge_shard_response(merged, index, response)
        return merged

    # ------------------------------------------------------------------ #
    # kNN
    # ------------------------------------------------------------------ #
    def _scatter_knn(self, query: KNNQuery,
                     remainder: Optional[RemainderQuery],
                     frontier: List[FrontierItem],
                     policy: SupportingIndexPolicy) -> ServerResponse:
        k_needed = (remainder.k_remaining
                    if remainder is not None and remainder.k_remaining
                    else query.k)
        point = query.point
        shard_items: Dict[int, List[FrontierItem]] = {}
        shard_min: Dict[int, float] = {}

        def add_item(index: int, item: FrontierItem, distance: float) -> None:
            shard_items.setdefault(index, []).append(item)
            previous = shard_min.get(index)
            if previous is None or distance < previous:
                shard_min[index] = distance

        virtual_hit = False
        pure_scatter = True
        for item in frontier:
            target = item[0]
            if self._is_virtual_target(target):
                virtual_hit = True
                for index, shard in self.live_shards():
                    distance = shard.root_mbr.min_dist_to_point(point)
                    add_item(index,
                             (FrontierTarget.for_node(shard.root_id,
                                                      shard.root_mbr,
                                                      priority=distance),),
                             distance)
                continue
            pure_scatter = False
            index = self._route_target(target)
            if index is None:
                continue
            add_item(index, item, target.mbr.min_dist_to_point(point))

        # A-priori skipping from the memoised kNN bound: safe only for a
        # full virtual-root scatter asking for the complete k (a partial
        # client frontier may hold some of the counted objects itself, so
        # those runs keep the ordinary candidate-bound pruning below).
        cache = self.result_cache
        if (cache is not None and virtual_hit and pure_scatter
                and k_needed == query.k):
            bound = cache.knn_bound(point, k_needed)
            if bound is not None:
                for index in sorted(shard_items):
                    if shard_min[index] > bound:
                        del shard_items[index]
                        self.stats.record_skip(index)

        merged = ServerResponse()
        if virtual_hit:
            self._attach_virtual(merged)
        # Visit shards best-first by the MINDIST of their nearest routed
        # target; once k candidates are in hand, shards whose MINDIST
        # exceeds the global k-th-best distance cannot contribute and are
        # pruned without a visit (no pages read, no bytes shipped).
        # Ties at the k-th distance are broken by object id, which is
        # deterministic but can differ from the single server's
        # traversal-order tie-break: both answers are correct k-nearest
        # sets, and exact ties never arise on the continuous synthetic
        # datasets (see docs/sharding.md "Equivalence guarantees").
        candidates: List[Tuple[float, int, ObjectDelivery]] = []
        for index in sorted(shard_items, key=lambda i: (shard_min[i], i)):
            if len(candidates) >= k_needed \
                    and shard_min[index] > candidates[k_needed - 1][0]:
                self.stats.record_prune(index)
                continue
            shard = self.shards[index]
            response = shard.server.execute(
                query, RemainderQuery(query=query, frontier=shard_items[index],
                                      k_remaining=k_needed),
                policy)
            self._merge_shard_response(merged, index, response)
            for delivery in response.deliveries:
                candidates.append(
                    (delivery.record.mbr.min_dist_to_point(point),
                     delivery.record.object_id, delivery))
            candidates.sort(key=lambda item: (item[0], item[1]))
            del candidates[k_needed:]
        merged.deliveries = [candidate[2] for candidate in candidates]
        return merged

    # ------------------------------------------------------------------ #
    # distance self-join
    # ------------------------------------------------------------------ #
    def _scatter_join(self, query: JoinQuery, frontier: List[FrontierItem],
                      policy: SupportingIndexPolicy,
                      client_held: set) -> ServerResponse:
        """The server's pairwise join traversal, shard-aware.

        Qualifying pairs may span shards, so no single shard can resume an
        arbitrary pair: the router walks the pair space itself, expanding
        node sides through the owning shard's ``_start_node`` (which keeps
        that shard's access recorder, so the ordinary supporting-index
        builder ships exactly the node regions this query touched).

        This is a shard-aware twin of
        :meth:`repro.core.server.ServerQueryProcessor._process_join` (same
        side tuples plus an owning-shard slot, same inlined predicate,
        same seen-pair dedup); a semantic fix to either copy — predicate,
        dedup, stale-pair handling — must be mirrored in the other.
        """
        window = query.window
        threshold_sq = query.threshold * query.threshold
        w_min_x, w_min_y = window.min_x, window.min_y
        w_max_x, w_max_y = window.max_x, window.max_y
        recorders: Dict[int, Dict] = {}
        virtual_hit = False
        results: Dict[int, Optional[int]] = {}
        examined = 0
        cache = self.result_cache
        allowed: Optional[set] = None
        if cache is not None:
            # Both members of a qualifying pair must intersect the window,
            # so the join expands only the window's hit-set; a plan of None
            # proves the result empty (fewer than two objects in the
            # snapped window anywhere in the deployment).
            plan = cache.plan_join(
                window, [(index, shard) for index, shard in self.live_shards()
                         if shard.root_mbr.intersects(window)])
            allowed = plan if plan is not None else set()
        skip_noted: set = set()

        def note_skip(index: int) -> None:
            if index not in skip_noted:
                skip_noted.add(index)
                self.stats.record_skip(index)

        # Sides mirror the single server's layout with the owning shard
        # appended: ("node", node_id, code, mbr, shard) and
        # ("object", object_id, mbr, parent_node_id, shard).
        def target_to_side(target: FrontierTarget) -> Optional[Tuple]:
            if target.kind is TargetKind.OBJECT:
                owner = self._owner.get(target.object_id)
                if owner is None:
                    return None
                if allowed is not None and owner not in allowed:
                    note_skip(owner)
                    return None
                return ("object", target.object_id, target.mbr,
                        target.parent_node_id, owner)
            if self._is_virtual_target(target):
                return ("node", self.virtual_root_id, "", self.root_mbr, None)
            index = self._route_target(target)
            if index is None or target.node_id not in self.shards[index].tree.store:
                return None
            if allowed is not None and index not in allowed:
                note_skip(index)
                return None
            return ("node", target.node_id, target.code or "", target.mbr, index)

        def side_key(side: Tuple) -> Tuple:
            if side[0] == "node":
                return ("n", side[1], side[2])
            return ("o", side[1])

        def qualifies(a: Tuple, b: Tuple) -> bool:
            mbr_a = a[3] if a[0] == "node" else a[2]
            mbr_b = b[3] if b[0] == "node" else b[2]
            if (mbr_a.min_x > w_max_x or mbr_a.max_x < w_min_x
                    or mbr_a.min_y > w_max_y or mbr_a.max_y < w_min_y):
                return False
            if (mbr_b.min_x > w_max_x or mbr_b.max_x < w_min_x
                    or mbr_b.min_y > w_max_y or mbr_b.max_y < w_min_y):
                return False
            dx = mbr_a.min_x - mbr_b.max_x
            if dx < 0.0:
                dx = mbr_b.min_x - mbr_a.max_x
                if dx < 0.0:
                    dx = 0.0
            dy = mbr_a.min_y - mbr_b.max_y
            if dy < 0.0:
                dy = mbr_b.min_y - mbr_a.max_y
                if dy < 0.0:
                    dy = 0.0
            return dx * dx + dy * dy <= threshold_sq

        expand_cache: Dict[Tuple[int, str], List[Tuple]] = {}

        def expand(side: Tuple) -> List[Tuple]:
            nonlocal virtual_hit
            if side[1] == self.virtual_root_id:
                virtual_hit = True
                if allowed is None:
                    return [("node", shard.root_id, "", shard.root_mbr, index)
                            for index, shard in self.live_shards()]
                sides: List[Tuple] = []
                for index, shard in self.live_shards():
                    if index in allowed:
                        sides.append(("node", shard.root_id, "",
                                      shard.root_mbr, index))
                    elif shard.root_mbr.intersects(window):
                        note_skip(index)
                    else:
                        self.stats.record_prune(index)
                return sides
            cache_key = (side[1], side[2])
            cached = expand_cache.get(cache_key)
            if cached is not None:
                return cached
            index = side[4]
            recorder = recorders.setdefault(index, {})
            sides: List[Tuple] = []
            for owner, element in self.shards[index].server._start_node(
                    side[1], side[2], recorder, policy):
                if isinstance(element, SuperEntry):
                    sides.append(("node", owner, element.code, element.mbr, index))
                elif element.is_leaf_entry:
                    sides.append(("object", element.object_id, element.mbr,
                                  owner, index))
                else:
                    sides.append(("node", element.child_id, "", element.mbr,
                                  index))
            expand_cache[cache_key] = sides
            return sides

        stack: List[Tuple[Tuple, Tuple, bool]] = []
        for item in frontier:
            sides = [target_to_side(target) for target in item]
            if any(side is None for side in sides):
                continue
            if len(sides) == 2:
                stack.append((sides[0], sides[1], False))
            else:
                stack.append((sides[0], sides[0], False))
        seen: set = set()

        while stack:
            side_a, side_b, prequalified = stack.pop()
            examined += 1
            if not prequalified and not qualifies(side_a, side_b):
                continue
            key_a, key_b = side_key(side_a), side_key(side_b)
            pair_key = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
            if pair_key in seen:
                continue
            seen.add(pair_key)

            a_is_object = side_a[0] == "object"
            b_is_object = side_b[0] == "object"
            if a_is_object and b_is_object:
                if side_a[1] == side_b[1]:
                    continue
                for side in (side_a, side_b):
                    if side[1] not in results:
                        results[side[1]] = side[3]
                continue
            if not a_is_object:
                children, other = expand(side_a), side_b
            else:
                children, other = expand(side_b), side_a
            o_mbr = other[3] if other[0] == "node" else other[2]
            o_min_x, o_min_y = o_mbr.min_x, o_mbr.min_y
            o_max_x, o_max_y = o_mbr.max_x, o_mbr.max_y
            push = stack.append
            for child in children:
                c_mbr = child[3] if child[0] == "node" else child[2]
                if (c_mbr.min_x > w_max_x or c_mbr.max_x < w_min_x
                        or c_mbr.min_y > w_max_y or c_mbr.max_y < w_min_y):
                    continue
                dx = c_mbr.min_x - o_max_x
                if dx < 0.0:
                    dx = o_min_x - c_mbr.max_x
                    if dx < 0.0:
                        dx = 0.0
                dy = c_mbr.min_y - o_max_y
                if dy < 0.0:
                    dy = o_min_y - c_mbr.max_y
                    if dy < 0.0:
                        dy = 0.0
                if dx * dx + dy * dy <= threshold_sq:
                    push((child, other, True))

        if cache is not None and results:
            # Hit-set strengthening: every result object intersects the
            # window, so its owning shard is positively non-empty for the
            # window's variants.
            for owner in sorted({self._owner[object_id]
                                 for object_id in results
                                 if object_id in self._owner}):
                cache.record_range_delivery(window, owner)
        merged = ServerResponse(
            deliveries=[ObjectDelivery(self.tree.objects[object_id], parent,
                                       confirm_only=object_id in client_held)
                        for object_id, parent in sorted(results.items())],
            examined_elements=examined)
        if virtual_hit:
            self._attach_virtual(merged)
        for index in sorted(recorders):
            recorder = recorders[index]
            if not recorder:
                continue
            merged.index_snapshots.extend(
                self.shards[index].server._build_snapshots(recorder, policy))
            merged.accessed_node_count += len(recorder)
            self.stats.record_visit(index, len(recorder))
        return merged
