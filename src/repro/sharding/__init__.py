"""Sharded multi-server deployments: partitioner, shard servers, router.

The single proactive-caching server of the paper is this reproduction's
scalability ceiling: one R-tree, one query processor, one machine.  This
package threads a horizontal execution tier between the clients and the
server kernels:

* :mod:`repro.sharding.partitioner` — spatial partitioners (uniform grid /
  kd-split) emitting per-shard object slices and regions;
* :mod:`repro.sharding.shard` — one R-tree + query processor + storage
  backend per shard, with globally disjoint page-id ranges;
* :mod:`repro.sharding.router` — the scatter-gather
  :class:`ShardRouter`: plans range / kNN / join queries across shards
  (MBR overlap pruning, a global k-th-best bound for kNN, cross-shard pair
  traversal for joins) and merges one client-visible response, so the
  proactive sessions and the cache layer run unchanged;
* :mod:`repro.sharding.updater` — routes dynamic dataset updates to their
  owning shard under one shared version registry;
* :mod:`repro.sharding.storage` — one ``.rpro`` file per shard plus a
  manifest, reopenable read-only, copy-on-write or durable (a write-ahead
  log per shard, packed per shard);
* :mod:`repro.sharding.state` — builds or reopens whole deployments.

Equivalence contract: a one-shard deployment is *byte-identical* to the
single server (same ids, same responses, same page counts); an N-shard
deployment returns *result-identical* answers with per-shard page reads
rolled up into the ordinary cost accounting.  See ``docs/sharding.md``.
"""

from repro.sharding.partitioner import PARTITIONER_METHODS, ShardPlan, make_plan
from repro.sharding.result_cache import (
    DEFAULT_CACHE_BYTES,
    PartitionResultCache,
)
from repro.sharding.router import (
    RouterStats,
    ShardRouter,
    ShardStats,
    ShardedTreeView,
)
from repro.sharding.shard import (
    NODE_ID_STRIDE,
    ShardServer,
    build_shard,
    build_shards,
    shard_index_for_node,
)
from repro.sharding.state import (
    ShardedServerState,
    build_sharded_state,
    config_meta,
    save_sharded_state,
)
from repro.sharding.storage import (
    MANIFEST_NAME,
    load_shards,
    pack_shards,
    read_manifest,
    save_shards,
    shard_wal_summaries,
)
from repro.sharding.updater import ShardedUpdater

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "MANIFEST_NAME",
    "NODE_ID_STRIDE",
    "PARTITIONER_METHODS",
    "PartitionResultCache",
    "RouterStats",
    "ShardPlan",
    "ShardRouter",
    "ShardServer",
    "ShardStats",
    "ShardedServerState",
    "ShardedTreeView",
    "ShardedUpdater",
    "build_shard",
    "build_shards",
    "build_sharded_state",
    "config_meta",
    "load_shards",
    "make_plan",
    "pack_shards",
    "read_manifest",
    "save_shards",
    "save_sharded_state",
    "shard_index_for_node",
    "shard_wal_summaries",
]
