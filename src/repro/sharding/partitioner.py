"""Spatial partitioners: split one object set into per-shard slices.

A partitioner takes the full dataset (the same deterministic record list a
single server would bulk-load) and emits a :class:`ShardPlan`: one record
slice per shard plus a disjoint *region* rectangle per shard.  The regions
drive two things downstream:

* **insert routing** — a dynamically inserted object goes to the shard whose
  region contains its centre, so ownership stays deterministic while the
  dataset churns;
* **documentation of the split** — the region list is persisted in the shard
  manifest so a saved shard set can be reopened with the same routing rule.

Query pruning deliberately does *not* use the static regions: the router
prunes against each shard's live R-tree root MBR, which tracks inserts and
deletes exactly (a region is where objects are *assigned*, a root MBR is
where the shard's objects actually *are*).

Two methods are provided:

``grid``
    A uniform ``rows × cols`` grid over the unit square with exactly one
    cell per shard (``rows`` is the largest divisor of the shard count not
    exceeding its square root, so 4 shards form a 2×2 grid and a prime
    count degrades to vertical strips).  Objects are assigned by MBR centre.
``kd``
    A kd-split: the record set is recursively median-split along the wider
    axis of the current region, shard counts divided as evenly as possible,
    so shards get near-equal object counts even on skewed data.

Both are pure functions of their inputs — the same records and shard count
always produce the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry import Point, Rect
from repro.rtree.entry import ObjectRecord

#: Partitioner names accepted by the fleet / CLI.
PARTITIONER_METHODS = ("grid", "kd")


@dataclass(frozen=True)
class ShardPlan:
    """The outcome of partitioning: per-shard record slices and regions."""

    method: str
    shard_records: Tuple[Tuple[ObjectRecord, ...], ...]
    regions: Tuple[Rect, ...]

    def __post_init__(self) -> None:
        if len(self.shard_records) != len(self.regions):
            raise ValueError("one region per shard slice is required")

    @property
    def shard_count(self) -> int:
        """Number of shards the plan prescribes."""
        return len(self.shard_records)

    def region_index_for(self, point: Point) -> int:
        """The shard whose region owns ``point`` (insert routing).

        Region edges are shared between neighbouring cells; the first
        containing region in shard order wins, so the rule is deterministic.
        Points outside every region (possible after aggressive kd splits of
        a sparse corner) fall back to the region with the nearest centre.
        """
        for index, region in enumerate(self.regions):
            if region.contains_point(point):
                return index
        distances = [(region.center().distance_to(point), index)
                     for index, region in enumerate(self.regions)]
        return min(distances)[1]

    def summary(self) -> dict:
        """Deterministic description of the plan (manifest / reports)."""
        return {
            "method": self.method,
            "shards": self.shard_count,
            "objects_per_shard": [len(slice_) for slice_ in self.shard_records],
            "regions": [region.as_tuple() for region in self.regions],
        }


def make_plan(records: Sequence[ObjectRecord], shards: int,
              method: str = "grid") -> ShardPlan:
    """Partition ``records`` into ``shards`` slices with the named method.

    ``shards == 1`` short-circuits to a single whole-space shard holding the
    records in their original order — the byte-identity anchor: a one-shard
    plan bulk-loads into exactly the tree a single server would build.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    key = (method or "grid").lower()
    if key not in PARTITIONER_METHODS:
        raise ValueError(f"unknown partitioner {method!r}; expected one of "
                         f"{', '.join(PARTITIONER_METHODS)}")
    records = list(records)
    if shards == 1:
        return ShardPlan(method=key, shard_records=(tuple(records),),
                         regions=(Rect.unit(),))
    if key == "grid":
        slices, regions = _grid_partition(records, shards)
    else:
        slices, regions = _kd_partition(records, shards)
    return ShardPlan(method=key,
                     shard_records=tuple(tuple(slice_) for slice_ in slices),
                     regions=tuple(regions))


# --------------------------------------------------------------------------- #
# uniform grid
# --------------------------------------------------------------------------- #
def _grid_shape(shards: int) -> Tuple[int, int]:
    """``(rows, cols)`` with ``rows * cols == shards`` and rows <= cols."""
    rows = 1
    candidate = int(shards ** 0.5)
    while candidate >= 1:
        if shards % candidate == 0:
            rows = candidate
            break
        candidate -= 1
    return rows, shards // rows


def _grid_partition(records: Sequence[ObjectRecord],
                    shards: int) -> Tuple[List[List[ObjectRecord]], List[Rect]]:
    """Equal-size grid cells over the unit square, assignment by MBR centre."""
    rows, cols = _grid_shape(shards)
    regions = []
    for row in range(rows):
        for col in range(cols):
            regions.append(Rect(col / cols, row / rows,
                                (col + 1) / cols, (row + 1) / rows))
    slices: List[List[ObjectRecord]] = [[] for _ in range(shards)]
    for record in records:
        center = record.mbr.center()
        col = min(cols - 1, max(0, int(center.x * cols)))
        row = min(rows - 1, max(0, int(center.y * rows)))
        slices[row * cols + col].append(record)
    return slices, regions


# --------------------------------------------------------------------------- #
# kd split
# --------------------------------------------------------------------------- #
def _kd_partition(records: Sequence[ObjectRecord],
                  shards: int) -> Tuple[List[List[ObjectRecord]], List[Rect]]:
    """Recursive median splits along the wider axis of the current region."""
    slices: List[List[ObjectRecord]] = []
    regions: List[Rect] = []

    def split(subset: List[ObjectRecord], count: int, region: Rect) -> None:
        if count == 1:
            slices.append(subset)
            regions.append(region)
            return
        left_count = count // 2
        right_count = count - left_count
        horizontal = region.width >= region.height
        if horizontal:
            ordered = sorted(subset,
                             key=lambda r: (r.mbr.center().x, r.object_id))
        else:
            ordered = sorted(subset,
                             key=lambda r: (r.mbr.center().y, r.object_id))
        cut = round(len(ordered) * left_count / count)
        cut = min(max(cut, 0), len(ordered))
        if not ordered:
            boundary_value = (region.min_x + region.max_x) / 2 if horizontal \
                else (region.min_y + region.max_y) / 2
        elif cut == 0:
            boundary_value = region.min_x if horizontal else region.min_y
        elif cut == len(ordered):
            boundary_value = region.max_x if horizontal else region.max_y
        else:
            before = ordered[cut - 1].mbr.center()
            after = ordered[cut].mbr.center()
            boundary_value = ((before.x + after.x) / 2 if horizontal
                              else (before.y + after.y) / 2)
        if horizontal:
            boundary_value = min(max(boundary_value, region.min_x), region.max_x)
            left_region = Rect(region.min_x, region.min_y,
                               boundary_value, region.max_y)
            right_region = Rect(boundary_value, region.min_y,
                                region.max_x, region.max_y)
        else:
            boundary_value = min(max(boundary_value, region.min_y), region.max_y)
            left_region = Rect(region.min_x, region.min_y,
                               region.max_x, boundary_value)
            right_region = Rect(region.min_x, boundary_value,
                                region.max_x, region.max_y)
        split(ordered[:cut], left_count, left_region)
        split(ordered[cut:], right_count, right_region)

    split(list(records), shards, Rect.unit())
    return slices, regions
