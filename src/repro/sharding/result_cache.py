"""Router-level partition-result caching (PartitionCache-style shard skipping).

The scatter-gather router re-derives *which shards can answer* from live
root MBRs on every query.  Root-MBR pruning is sound but weak: a shard
whose bounding box overlaps the window may still hold nothing inside it
(clustered data leaves large empty margins inside every root MBR), and the
router pays a full shard visit — page reads, snapshot building, downlink
bytes — to find that out, again and again for repeated hotspot windows.

:class:`PartitionResultCache` memoises that knowledge the way PartitionCache
(Poppinga et al., BTW 2025) memoises partition hit-sets for partitioned SQL
stores:

* **Canonical variants** — a query window is snapped *outward* to a
  ``grid × grid`` alignment and decomposed into three conjunctive variants:
  the x-band (full-height strip), the y-band (full-width strip) and the
  snapped window itself.  The true hit-set of the raw window is contained
  in the intersection of the variants' hit-sets, and band variants are
  shared by every window that projects onto the same cells, so hot regions
  converge onto a tiny number of cached facts.
* **Hit-set facts** — per variant the cache records, shard by shard,
  whether the shard holds *any* object intersecting the variant rectangle.
  Unknown facts are established by an early-exit existence probe over the
  shard's R-tree via ``store.peek`` (probes are router planning work and
  never count as logical page reads); facts are strengthened for free after
  every scatter from the shards that actually delivered results.
* **Version stamping** — every fact carries the
  :class:`~repro.updates.registry.VersionRegistry` ``dataset_version`` it
  was computed at, and the cache tracks the last version that mutated each
  shard (reported by :class:`~repro.sharding.updater.ShardedUpdater`).  A
  fact is served only while its stamp is at least the owning shard's
  last-mutation stamp, so any update batch touching a shard atomically
  invalidates that shard's facts.  kNN / pair-count facts depend on every
  shard at once and are stamped against the *global* last mutation.
* **GRD eviction** — facts live in a byte-budgeted store that duck-types
  the ``ProactiveCache`` surface consumed by
  :class:`~repro.core.replacement.grd.GRD3Policy`, with one flat
  :class:`~repro.core.cache.CacheItemState` per variant.  Eviction ranks
  victims by the paper's ``prob(i)`` access probability, so rarely reused
  variants make room for hot ones.

Safety (why skipping never changes results):

* **range** — the raw window is contained in every variant rectangle, so a
  shard empty for any variant is empty for the window: no search from any
  frontier target inside it can deliver (or confirm) an object.
* **kNN** — the cached fact for ``(cell(p), k)`` is the smallest probed
  cell-aligned square around the cell that contains at least ``k`` objects;
  the max distance from ``p`` to the square's corners upper-bounds the true
  k-th-nearest distance, so shards whose root-MBR MINDIST exceeds it
  cannot contribute.  Applied only to full virtual-root scatters with
  ``k_remaining == k`` — with partial client frontiers the objects counted
  by the square may be client-held rather than deliverable, so those runs
  keep the ordinary candidate-bound pruning.
* **join** — both members of a qualifying pair must intersect the window,
  so shards empty for the window contribute no pair side, and a snapped
  window holding fewer than two objects globally proves the result empty.

The contract mirrors the sharded tier's own: cache-on runs are
**result-identical** to cache-off runs (same per-query result sets and
``result_bytes``); what travels on the wire — snapshots, downlink bytes,
therefore client cache contents — may legitimately differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro._compat import DATACLASS_SLOTS
from repro.core.cache import CacheItemState
from repro.core.replacement.grd import GRD3Policy
from repro.geometry import Point, Rect
from repro.obs import instrument as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sharding.router import ShardRouter
    from repro.sharding.shard import ShardServer

#: Default byte budget of the fact store (``repro fleet --router-cache``).
DEFAULT_CACHE_BYTES = 64 * 1024
#: Canonicalization grid resolution (variants snap to a G x G alignment).
DEFAULT_GRID = 16

#: Deterministic byte ledger of the fact store.  Facts are router metadata,
#: not paper-modelled payloads, so their sizes are a fixed ledger rather
#: than SizeModel quantities: a per-variant overhead plus one slot per
#: recorded shard fact.
ENTRY_BYTES = 48
SHARD_FACT_BYTES = 12


@dataclass(**DATACLASS_SLOTS)
class HitSetFact:
    """Per-shard emptiness knowledge of one canonical variant rectangle.

    ``shards`` maps shard index to ``(nonempty, stamp)``: whether the shard
    held any object intersecting the variant rectangle, observed at
    registry version ``stamp``.
    """

    rect: Rect
    shards: Dict[int, Tuple[bool, int]] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return ENTRY_BYTES + SHARD_FACT_BYTES * len(self.shards)


@dataclass(**DATACLASS_SLOTS)
class GlobalFact:
    """A whole-deployment fact (kNN square radius / pair-count bit)."""

    value: object
    stamp: int

    @property
    def size_bytes(self) -> int:
        return ENTRY_BYTES + SHARD_FACT_BYTES


class FactStore:
    """Byte-budgeted flat store driven by the paper's GRD3 eviction.

    Duck-types the slice of the ``ProactiveCache`` surface
    :meth:`~repro.core.replacement.grd.GRD3Policy.make_room` consumes.
    Every entry is a root-level leaf (``parent_key=None``, no cached
    children), so the constrained eviction degenerates to ranking variants
    by ``prob(i)`` — exactly the PartitionCache eviction story expressed
    with the machinery this repository already trusts.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.items: Dict[str, CacheItemState] = {}
        self.used_bytes = 0
        self.clock = 0
        self.evictions = 0
        self._policy = GRD3Policy()

    # -- the ProactiveCache surface GRD3 consumes -------------------------- #
    def leaf_items(self) -> List[CacheItemState]:
        return list(self.items.values())

    def leaf_keys(self) -> List[str]:
        return list(self.items.keys())

    def evict(self, key: str) -> None:
        state = self.items.pop(key)
        self.used_bytes -= state.size_bytes
        self.evictions += 1

    def evict_subtree(self, key: str) -> None:
        # Flat store: every entry is its own whole subtree.
        self.evict(key)

    def restore_item(self, state: CacheItemState) -> None:
        self.items[state.key] = state
        self.used_bytes += state.size_bytes

    # -- fact-store operations --------------------------------------------- #
    def tick(self) -> int:
        self.clock += 1
        return self.clock

    def lookup(self, key: str) -> Optional[CacheItemState]:
        """The entry for ``key``, touched as a hit of the current query."""
        state = self.items.get(key)
        if state is not None:
            state.hit_queries += 1
            state.last_access = self.clock
        return state

    def admit(self, key: str, payload: object) -> Optional[CacheItemState]:
        """Insert a fresh fact, evicting as needed; ``None`` if it cannot fit."""
        size = payload.size_bytes  # type: ignore[attr-defined]
        if size > self.capacity_bytes:
            return None
        if self.used_bytes + size > self.capacity_bytes:
            self._policy.make_room(self, size, {}, set())
        state = CacheItemState(key=key, payload=payload, size_bytes=size,
                               insert_time=self.clock, parent_key=None)
        state.last_access = self.clock
        self.items[key] = state
        self.used_bytes += size
        return state

    def resize(self, state: CacheItemState) -> None:
        """Re-account an entry whose payload grew (new shard facts)."""
        new_size = state.payload.size_bytes  # type: ignore[attr-defined]
        if new_size == state.size_bytes:
            return
        self.used_bytes += new_size - state.size_bytes
        state.size_bytes = new_size
        if self.used_bytes > self.capacity_bytes:
            self._policy.make_room(self, 0, {}, {state.key})


class PartitionResultCache:
    """Memoised per-variant shard hit-sets for the scatter-gather router.

    Construct, then attach with
    :meth:`~repro.sharding.router.ShardRouter.attach_result_cache`; the
    router consults it in every scatter and the sharded updater reports
    mutations through :meth:`note_shard_mutated`.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES,
                 grid: int = DEFAULT_GRID) -> None:
        if grid < 1:
            raise ValueError("grid must be at least 1")
        self.grid = grid
        self.store = FactStore(capacity_bytes)
        self.router: Optional["ShardRouter"] = None
        #: Registry version that last mutated each shard (0 = never).
        self._shard_stamp: List[int] = []
        self._global_stamp = 0
        # Deterministic consult counters (per consulted query): a *hit*
        # answered entirely from valid facts, a *miss* needed >= 1 probe.
        self.hits = 0
        self.misses = 0
        self.probes = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def bind(self, router: "ShardRouter") -> None:
        self.router = router
        self._shard_stamp = [0] * len(router.shards)

    def _version(self) -> int:
        registry = self.router.registry if self.router is not None else None
        return registry.dataset_version if registry is not None else 0

    def note_shard_mutated(self, shard_index: int) -> None:
        """An update batch touched ``shard_index``: fence its facts.

        Facts stamped before the shard's last mutation are never served
        again; they are lazily re-established by the next probe, which runs
        against the post-mutation tree and therefore stamps at (or above)
        the fence version.
        """
        version = self._version()
        if 0 <= shard_index < len(self._shard_stamp):
            self._shard_stamp[shard_index] = version
        self._global_stamp = version

    def begin_query(self) -> None:
        """Advance the fact store's clock (call once per routed query)."""
        self.store.tick()

    # ------------------------------------------------------------------ #
    # canonicalization
    # ------------------------------------------------------------------ #
    def _snap_axis(self, low: float, high: float) -> Tuple[int, int]:
        """Smallest grid cell range covering ``[low, high]`` (outward snap)."""
        g = self.grid
        first = min(g - 1, max(0, int(math.floor(low * g))))
        last = max(first + 1, min(g, int(math.ceil(high * g))))
        return first, last

    def range_variants(self, window: Rect) -> List[Tuple[str, Rect]]:
        """The conjunctive variant decomposition of ``window``.

        Ordered bands-first: band facts are shared across every window with
        the same axis projection, so they filter most candidates before the
        window-specific variant is even consulted.
        """
        g = float(self.grid)
        x0, x1 = self._snap_axis(window.min_x, window.max_x)
        y0, y1 = self._snap_axis(window.min_y, window.max_y)
        return [
            (f"xb:{x0}:{x1}", Rect(x0 / g, 0.0, x1 / g, 1.0)),
            (f"yb:{y0}:{y1}", Rect(0.0, y0 / g, 1.0, y1 / g)),
            (f"w:{x0}:{y0}:{x1}:{y1}", Rect(x0 / g, y0 / g, x1 / g, y1 / g)),
        ]

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        g = self.grid
        return (min(g - 1, max(0, int(point.x * g))),
                min(g - 1, max(0, int(point.y * g))))

    def _square(self, cx: int, cy: int, radius: int) -> Rect:
        g = float(self.grid)
        return Rect(max(0, cx - radius) / g, max(0, cy - radius) / g,
                    min(self.grid, cx + 1 + radius) / g,
                    min(self.grid, cy + 1 + radius) / g)

    # ------------------------------------------------------------------ #
    # probes (router planning work: peek never counts a logical read)
    # ------------------------------------------------------------------ #
    def _probe_nonempty(self, shard: "ShardServer", rect: Rect) -> bool:
        """Does any object of ``shard`` intersect ``rect``?  Early-exit DFS."""
        self.probes += 1
        if shard.is_empty or not shard.root_mbr.intersects(rect):
            return False
        store = shard.tree.store
        stack = [shard.root_id]
        while stack:
            node = store.peek(stack.pop())
            if node.is_leaf:
                for entry in node.entries:
                    if entry.mbr.intersects(rect):
                        return True
            else:
                for entry in node.entries:
                    if entry.mbr.intersects(rect):
                        stack.append(entry.child_id)
        return False

    def _count_in(self, shard: "ShardServer", rect: Rect, limit: int) -> int:
        """Objects of ``shard`` intersecting ``rect``, early-exit at ``limit``."""
        if limit <= 0 or shard.is_empty \
                or not shard.root_mbr.intersects(rect):
            return 0
        store = shard.tree.store
        stack = [shard.root_id]
        count = 0
        while stack:
            node = store.peek(stack.pop())
            if node.is_leaf:
                for entry in node.entries:
                    if entry.mbr.intersects(rect):
                        count += 1
                        if count >= limit:
                            return count
            else:
                for entry in node.entries:
                    if entry.mbr.intersects(rect):
                        stack.append(entry.child_id)
        return count

    def _count_at_least(self, rect: Rect, needed: int) -> bool:
        self.probes += 1
        assert self.router is not None
        count = 0
        for _, shard in self.router.live_shards():
            count += self._count_in(shard, rect, needed - count)
            if count >= needed:
                return True
        return False

    # ------------------------------------------------------------------ #
    # hit-set facts
    # ------------------------------------------------------------------ #
    def _hitset_state(self, key: str, rect: Rect) -> Optional[CacheItemState]:
        state = self.store.lookup(key)
        if state is None:
            state = self.store.admit(key, HitSetFact(rect=rect))
        return state

    def _shard_nonempty(self, key: str, rect: Rect, index: int,
                        shard: "ShardServer") -> Tuple[bool, bool]:
        """``(nonempty, probed)`` for one shard under one variant."""
        state = self._hitset_state(key, rect)
        fact: Optional[HitSetFact] = (
            state.payload if state is not None else None)  # type: ignore[assignment]
        if fact is not None:
            known = fact.shards.get(index)
            if known is not None and known[1] >= self._shard_stamp[index]:
                return known[0], False
        nonempty = self._probe_nonempty(shard, rect)
        if fact is not None and state is not None:
            fact.shards[index] = (nonempty, self._version())
            self.store.resize(state)
        return nonempty, True

    def _filter_by_variants(
            self, window: Rect,
            candidates: List[Tuple[int, "ShardServer"]],
    ) -> Tuple[List[Tuple[int, "ShardServer"]], bool]:
        survivors = list(candidates)
        clean = True
        for key, rect in self.range_variants(window):
            if not survivors:
                break
            kept = []
            for index, shard in survivors:
                nonempty, probed = self._shard_nonempty(key, rect, index, shard)
                if probed:
                    clean = False
                if nonempty:
                    kept.append((index, shard))
            survivors = kept
        return survivors, clean

    def _record_consult(self, clean: bool) -> None:
        if clean:
            self.hits += 1
        else:
            self.misses += 1
        if obs.ENABLED:
            obs.active().count("repro_router_cache_consults_total", 1.0,
                               outcome="hit" if clean else "miss")

    # ------------------------------------------------------------------ #
    # the router-facing planning surface
    # ------------------------------------------------------------------ #
    def plan_range(self, window: Rect,
                   candidates: List[Tuple[int, "ShardServer"]]
                   ) -> Set[int]:
        """Shards of ``candidates`` that may hold objects in ``window``."""
        survivors, clean = self._filter_by_variants(window, candidates)
        self._record_consult(clean)
        return {index for index, _ in survivors}

    def record_range_delivery(self, window: Rect, shard_index: int) -> None:
        """A scatter observed ``shard_index`` delivering inside ``window``.

        Free positive knowledge: the shard is non-empty for the window and
        therefore for every variant containing it, stamped at the current
        version — later consults of the hot variants skip the probe.
        """
        version = self._version()
        for key, rect in self.range_variants(window):
            state = self._hitset_state(key, rect)
            if state is None:
                continue
            fact: HitSetFact = state.payload  # type: ignore[assignment]
            fact.shards[shard_index] = (True, version)
            self.store.resize(state)

    def knn_bound(self, point: Point, k: int) -> Optional[float]:
        """An upper bound on the k-th-nearest distance from ``point``.

        Derived from the memoised smallest cell-aligned square around
        ``point``'s cell containing at least ``k`` objects; ``None`` when
        the deployment holds fewer than ``k`` objects (no safe bound).
        """
        cx, cy = self._cell_of(point)
        key = f"k:{cx}:{cy}:{k}"
        state = self.store.lookup(key)
        fact: Optional[GlobalFact] = (
            state.payload if state is not None else None)  # type: ignore[assignment]
        if fact is not None and fact.stamp >= self._global_stamp:
            self._record_consult(True)
            radius = fact.value
        else:
            radius = self._probe_radius(cx, cy, k)
            if fact is not None and state is not None:
                fact.value = radius
                fact.stamp = self._version()
            else:
                self.store.admit(key, GlobalFact(value=radius,
                                                 stamp=self._version()))
            self._record_consult(False)
        if radius is None:
            return None
        square = self._square(cx, cy, int(radius))
        far_x = max(point.x - square.min_x, square.max_x - point.x)
        far_y = max(point.y - square.min_y, square.max_y - point.y)
        return math.hypot(far_x, far_y)

    def _probe_radius(self, cx: int, cy: int, k: int) -> Optional[int]:
        """Smallest probed radius (in cells) whose square holds >= k objects.

        Radii double per probe so establishing a fact costs O(log grid)
        counting probes; the square therefore over-covers by at most one
        doubling, which only loosens (never breaks) the distance bound.
        """
        radius = 1
        while True:
            square = self._square(cx, cy, radius)
            if self._count_at_least(square, k):
                return radius
            if square.contains(Rect.unit()):
                return None
            radius *= 2

    def plan_join(self, window: Rect,
                  candidates: List[Tuple[int, "ShardServer"]]
                  ) -> Optional[Set[int]]:
        """Shards a join over ``window`` must expand; ``None`` proves it empty.

        Conjunctive intersection of the window variants' hit-sets, plus a
        pair-count prune: fewer than two objects inside the snapped window
        anywhere in the deployment means no qualifying pair can exist.
        """
        _, _, (window_key, window_rect) = self.range_variants(window)
        pair_key = "c2:" + window_key
        state = self.store.lookup(pair_key)
        fact: Optional[GlobalFact] = (
            state.payload if state is not None else None)  # type: ignore[assignment]
        clean = True
        if fact is not None and fact.stamp >= self._global_stamp:
            pairable = bool(fact.value)
        else:
            clean = False
            pairable = self._count_at_least(window_rect, 2)
            if fact is not None and state is not None:
                fact.value = pairable
                fact.stamp = self._version()
            else:
                self.store.admit(pair_key, GlobalFact(value=pairable,
                                                      stamp=self._version()))
        if not pairable:
            self._record_consult(clean)
            return None
        survivors, variants_clean = self._filter_by_variants(window, candidates)
        self._record_consult(clean and variants_clean)
        return {index for index, _ in survivors}

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Deterministic cache-health counters for reports and benchmarks."""
        return {
            "entries": len(self.store.items),
            "used_bytes": self.store.used_bytes,
            "capacity_bytes": self.store.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "probes": self.probes,
            "evictions": self.store.evictions,
        }
