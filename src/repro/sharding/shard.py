"""One shard: a slice of the dataset behind its own R-tree and server.

A :class:`ShardServer` is the sharded deployment's unit of scale: one
R*-tree over the shard's object slice, one
:class:`~repro.core.server.ServerQueryProcessor` with its own partition-tree
machinery, and one storage backend (in-memory page store, or a per-shard
``.rpro`` file from :mod:`repro.sharding.storage`).

**Global id discipline.**  Every layer above the server addresses pages by
integer id — client caches, remainder frontiers, version registries.  To
keep those ids meaningful across shards without any translation layer, each
shard allocates its page ids from a disjoint range: shard *i* starts at
``i * NODE_ID_STRIDE + 1``.  Shard 0 therefore allocates exactly the ids a
single server would, which is what makes ``--shards 1`` byte-identical to
the unsharded system, and ``node_id // NODE_ID_STRIDE`` recovers the owning
shard of any page id in O(1).  Object ids are already globally unique (the
dataset mints them), so they keep their values and are routed through the
router's owner table instead.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.geometry import Rect
from repro.rtree.bulk import bulk_load_str
from repro.rtree.entry import ObjectRecord
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import PageStore, RTree
from repro.core.server import ServerQueryProcessor
from repro.sharding.partitioner import ShardPlan

#: Width of each shard's page-id range.  Far larger than any reachable page
#: count, so shard ranges can never collide; shard 0's range starts at 1,
#: matching the single-server id sequence exactly.
NODE_ID_STRIDE = 1 << 40


def shard_index_for_node(node_id: int) -> int:
    """The shard whose id range contains ``node_id``."""
    return node_id // NODE_ID_STRIDE


class ShardServer:
    """One shard's tree, query processor and static assignment region."""

    def __init__(self, shard_index: int, tree: RTree, region: Rect) -> None:
        self.shard_index = shard_index
        self.tree = tree
        self.region = region
        self.server = ServerQueryProcessor(tree, size_model=tree.size_model)

    # ------------------------------------------------------------------ #
    # live geometry (queried by the router for pruning)
    # ------------------------------------------------------------------ #
    @property
    def root_id(self) -> int:
        """Page id of this shard's current R-tree root."""
        return self.tree.root_id

    @property
    def root_mbr(self) -> Rect:
        """Live MBR of the shard's root (unit square when empty)."""
        return self.server.root_mbr

    @property
    def is_empty(self) -> bool:
        """True when the shard currently holds no objects."""
        return not self.tree.objects

    @property
    def object_count(self) -> int:
        """Number of objects this shard currently owns."""
        return len(self.tree.objects)

    def close(self) -> None:
        """Release the shard's storage backend."""
        self.tree.store.close()


def offset_page_store(shard_index: int) -> PageStore:
    """An empty in-memory page store allocating from the shard's id range."""
    return PageStore(_next_id=itertools.count(shard_index * NODE_ID_STRIDE + 1))


def build_shard(shard_index: int, records: Sequence[ObjectRecord],
                region: Rect, size_model: Optional[SizeModel] = None) -> ShardServer:
    """Bulk-load one shard's records into a fresh in-memory shard server."""
    tree = bulk_load_str(records, size_model=size_model,
                         store=offset_page_store(shard_index))
    return ShardServer(shard_index, tree, region)


def build_shards(plan: ShardPlan,
                 size_model: Optional[SizeModel] = None) -> List[ShardServer]:
    """Build every shard of ``plan`` in memory (deterministic from inputs)."""
    return [build_shard(index, records, region, size_model=size_model)
            for index, (records, region)
            in enumerate(zip(plan.shard_records, plan.regions))]
