"""Building (or reopening) a whole sharded deployment from a configuration.

:func:`build_sharded_state` is the sharded sibling of
:func:`repro.sim.runner.build_shared_state`: it generates the deterministic
dataset once, partitions it, builds one :class:`ShardServer` per slice (or
reopens a saved shard-store directory) and wires the
:class:`~repro.sharding.router.ShardRouter` over them.  The configuration
object is duck-typed (``dataset_name`` / ``object_count`` / ``dataset_seed``
/ ``mean_object_bytes`` / ``zipf_theta`` / ``page_bytes``), so this module
stays below the simulation layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets import make_dataset
from repro.rtree.sizes import SizeModel
from repro.sharding.partitioner import ShardPlan, make_plan
from repro.sharding.router import ShardRouter, ShardedTreeView
from repro.sharding.shard import ShardServer, build_shards
from repro.sharding.storage import load_shards, save_shards
from repro.storage.backend import StorageError

#: Manifest meta key -> configuration attribute it must match on reopen.
_MANIFEST_META_FIELDS = {
    "dataset": "dataset_name",
    "object_count": "object_count",
    "dataset_seed": "dataset_seed",
    "page_bytes": "page_bytes",
    "mean_object_bytes": "mean_object_bytes",
    "zipf_theta": "zipf_theta",
}


def config_meta(config) -> Dict:
    """The dataset-identity meta block stored in shard manifests."""
    return {key: getattr(config, attribute)
            for key, attribute in _MANIFEST_META_FIELDS.items()}


def _check_manifest(config, shards: int, partitioner: str,
                    manifest: Dict, directory: str) -> None:
    """Reject a shard store that contradicts the requested configuration."""
    problems = []
    if manifest["shards"] != shards:
        problems.append(f"shards: store={manifest['shards']} "
                        f"requested={shards}")
    if manifest["partitioner"] != partitioner:
        problems.append(f"partitioner: store={manifest['partitioner']!r} "
                        f"requested={partitioner!r}")
    meta = manifest.get("meta", {})
    problems.extend(
        f"{key}: store={meta[key]!r} config={getattr(config, attribute)!r}"
        for key, attribute in _MANIFEST_META_FIELDS.items()
        if key in meta and meta[key] != getattr(config, attribute))
    if problems:
        raise StorageError(
            f"{directory} was written for a different sharded configuration "
            f"({'; '.join(problems)}); rerun with matching flags or re-save "
            f"the shards")


@dataclass
class ShardedServerState:
    """Everything one sharded deployment consists of."""

    shards: List[ShardServer]
    plan: ShardPlan
    router: ShardRouter

    @property
    def view(self) -> ShardedTreeView:
        """The client-facing tree facade (``objects`` / ``store`` routing)."""
        return self.router.tree

    @property
    def size_model(self) -> SizeModel:
        return self.router.size_model

    def shard_summary(self, partitioner: str = "grid") -> Dict:
        """The fleet-facing routing summary block of this deployment.

        The *single* assembly point shared by the in-process and networked
        fleet runners, so counter keys cannot drift between the two (the
        nets-vs-inproc equivalence tests compare these dicts wholesale).
        Always includes the result-cache counters — zero for cache-off
        runs — so downstream consumers see a stable key set.
        """
        summary = dict(self.router.stats.summary())
        summary["shards"] = len(self.shards)
        summary["partitioner"] = (partitioner or "grid").lower()
        summary["objects_per_shard"] = [shard.object_count
                                        for shard in self.shards]
        cache = self.router.result_cache
        summary["router_cache"] = cache is not None
        summary["cache_hits"] = cache.hits if cache is not None else 0
        summary["cache_misses"] = cache.misses if cache is not None else 0
        summary["cache_probes"] = cache.probes if cache is not None else 0
        return summary

    def close(self) -> None:
        """Release every shard's storage backend."""
        for shard in self.shards:
            shard.close()


def dataset_records(config):
    """The deterministic record list of ``config`` (single dataset build)."""
    return make_dataset(config.dataset_name, config.object_count,
                        seed=config.dataset_seed,
                        mean_object_bytes=config.mean_object_bytes,
                        zipf_theta=config.zipf_theta)


def build_sharded_state(config, shards: int, partitioner: str = "grid",
                        store_dir: Optional[str] = None,
                        writable: bool = False,
                        durable: bool = False) -> ShardedServerState:
    """Build a sharded deployment for ``config``.

    In-memory by default: the dataset is generated once, partitioned, and
    every slice bulk-loaded into its shard's offset id range.  With
    ``store_dir`` the shards are reopened from their ``.rpro`` files
    instead (copy-on-write when ``writable``; through per-shard write-ahead
    logs when ``durable``); a store whose manifest contradicts the
    configuration is rejected.
    """
    if durable and store_dir is None:
        raise ValueError("durable sharded mode needs a shard-store "
                         "directory to log to")
    if store_dir is not None:
        shard_servers, plan, manifest = load_shards(store_dir,
                                                    writable=writable,
                                                    durable=durable)
        try:
            _check_manifest(config, shards, (partitioner or "grid").lower(),
                            manifest, store_dir)
        except StorageError:
            for shard in shard_servers:
                shard.close()
            raise
    else:
        records = dataset_records(config)
        plan = make_plan(records, shards, method=partitioner)
        size_model = SizeModel(page_bytes=config.page_bytes)
        shard_servers = build_shards(plan, size_model=size_model)
    router = ShardRouter(shard_servers, plan)
    return ShardedServerState(shards=shard_servers, plan=plan, router=router)


def save_sharded_state(state: ShardedServerState, directory: str,
                       meta: Optional[Dict] = None) -> Dict:
    """Checkpoint every shard of ``state`` into ``directory``."""
    return save_shards(state.shards, state.plan, directory, meta=meta)
