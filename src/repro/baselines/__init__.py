"""Baseline caching models the paper compares against.

* :mod:`repro.baselines.page` — page/object caching (PAG): objects are cached
  and looked up by identifier only; no query semantics are stored.
* :mod:`repro.baselines.semantic` — semantic caching (SEM): query
  descriptions plus their results are cached; range queries are trimmed
  against cached range regions (Ren & Dunham) and kNN queries are answered
  from cached kNN validity circles (Zheng & Lee).  Join queries fall through
  to the server.
"""

from repro.baselines.page import PageCache
from repro.baselines.semantic import SemanticCache, RangeRegion, KnnRegion

__all__ = ["PageCache", "SemanticCache", "RangeRegion", "KnnRegion"]
