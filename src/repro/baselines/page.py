"""Page (object) caching — the PAG baseline.

Objects are cached and addressed purely by identifier.  Because no query
semantics are stored, the client cannot answer any part of a spatial query
locally; it ships the query together with the identifiers of every cached
object, and the server omits those objects from its answer.  The cache hit
rate is therefore zero by construction, while downlink traffic is minimal —
exactly the trade-off Figure 6 of the paper shows.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set

from repro.core.items import CachedObject
from repro.rtree.entry import ObjectRecord


class PageCache:
    """A byte-budgeted LRU cache of data objects keyed by object id."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._objects: "OrderedDict[int, CachedObject]" = OrderedDict()
        self.used_bytes = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def object_ids(self) -> Set[int]:
        """Ids of all cached objects."""
        return set(self._objects.keys())

    def get(self, object_id: int) -> Optional[CachedObject]:
        """Fetch an object and mark it most recently used."""
        cached = self._objects.get(object_id)
        if cached is not None:
            self._objects.move_to_end(object_id)
        return cached

    def touch(self, object_id: int) -> None:
        """Mark an object as most recently used without returning it."""
        if object_id in self._objects:
            self._objects.move_to_end(object_id)

    def insert(self, record: ObjectRecord) -> bool:
        """Insert an object, evicting LRU entries as needed.

        Returns False when the object is larger than the whole cache.
        """
        if record.size_bytes > self.capacity_bytes:
            return False
        if record.object_id in self._objects:
            self._objects.move_to_end(record.object_id)
            return True
        while self.used_bytes + record.size_bytes > self.capacity_bytes and self._objects:
            _, evicted = self._objects.popitem(last=False)
            self.used_bytes -= evicted.size_bytes
            self.evictions += 1
        self._objects[record.object_id] = CachedObject(
            object_id=record.object_id, mbr=record.mbr, size_bytes=record.size_bytes)
        self.used_bytes += record.size_bytes
        return True

    def insert_many(self, records: Iterable[ObjectRecord]) -> None:
        """Insert several objects."""
        for record in records:
            self.insert(record)

    def cached_bytes_of(self, object_ids: Iterable[int]) -> int:
        """Total cached bytes among ``object_ids``."""
        return sum(self._objects[oid].size_bytes for oid in object_ids if oid in self._objects)
