"""Semantic caching (SEM) for range and kNN queries."""

from repro.baselines.semantic.regions import RangeRegion, KnnRegion, Region
from repro.baselines.semantic.cache import SemanticCache

__all__ = ["RangeRegion", "KnnRegion", "Region", "SemanticCache"]
