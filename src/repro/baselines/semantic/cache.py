"""The semantic cache: regions + a reference-counted object pool.

The cache stores semantic *regions* (cached query descriptions with the ids
of their result objects) and the result objects themselves in a shared,
reference-counted pool so that an object returned by several cached queries
occupies space only once.  Replacement operates at region granularity, using
either FAR (evict the region farthest from the client, Ren & Dunham) or LRU.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.baselines.semantic.regions import KnnRegion, RangeRegion, Region
from repro.core.items import CachedObject
from repro.geometry import Point, Rect
from repro.geometry.distance import circle_contains_circle
from repro.rtree.entry import ObjectRecord
from repro.rtree.sizes import SizeModel


class SemanticCache:
    """Byte-budgeted cache of semantic regions and their result objects.

    Parameters
    ----------
    capacity_bytes:
        Total budget shared by region descriptors and object payloads.
    size_model:
        Byte accounting model.
    replacement:
        ``"FAR"`` (default, the paper's choice for SEM) or ``"LRU"``.
    coalesce:
        When True, a new range region fully containing an older one absorbs
        it (a simple form of the coalescing decision discussed in the paper);
        the default keeps regions separate.
    """

    def __init__(self, capacity_bytes: int, size_model: Optional[SizeModel] = None,
                 replacement: str = "FAR", coalesce: bool = False) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.size_model = size_model or SizeModel()
        replacement = replacement.upper()
        if replacement not in ("FAR", "LRU"):
            raise ValueError("replacement must be 'FAR' or 'LRU'")
        self.replacement = replacement
        self.coalesce = coalesce

        self._region_ids = itertools.count(1)
        self.range_regions: Dict[int, RangeRegion] = {}
        self.knn_regions: Dict[int, KnnRegion] = {}
        self._pool: Dict[int, CachedObject] = {}
        self._refcounts: Dict[int, int] = {}
        self.used_bytes = 0
        self.clock = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def tick(self) -> int:
        """Advance the query clock."""
        self.clock += 1
        return self.clock

    def __len__(self) -> int:
        return len(self.range_regions) + len(self.knn_regions)

    def regions(self) -> List[Region]:
        """All cached regions."""
        return list(self.range_regions.values()) + list(self.knn_regions.values())

    def cached_object_ids(self) -> Set[int]:
        """Ids of every object currently held in the pool."""
        return set(self._pool.keys())

    def get_object(self, object_id: int) -> Optional[CachedObject]:
        """An object from the pool, if cached."""
        return self._pool.get(object_id)

    def object_bytes(self) -> int:
        """Bytes occupied by object payloads."""
        return sum(obj.size_bytes for obj in self._pool.values())

    def descriptor_bytes(self) -> int:
        """Bytes occupied by the semantic descriptions."""
        return sum(region.descriptor_bytes(self.size_model) for region in self.regions())

    # ------------------------------------------------------------------ #
    # probing (query trimming)
    # ------------------------------------------------------------------ #
    def probe_range(self, window: Rect) -> Tuple[Dict[int, CachedObject], List[Rect]]:
        """Trim a range query against the cached range regions.

        Returns the locally available result objects and the remainder
        rectangles that still need to be asked of the server.  Only *range*
        regions participate — sharing across query types is exactly what
        semantic caching cannot do.
        """
        overlapping = [region for region in self.range_regions.values()
                       if region.window.intersects(window)]
        saved: Dict[int, CachedObject] = {}
        for region in overlapping:
            region.last_access = self.clock
            for object_id in region.object_ids:
                cached = self._pool.get(object_id)
                if cached is not None and cached.mbr.intersects(window):
                    saved[object_id] = cached
        remainders = Rect.difference_many(window, [r.window for r in overlapping])
        return saved, remainders

    def probe_knn(self, point: Point, k: int) -> Optional[List[CachedObject]]:
        """Answer a kNN query from a cached kNN region, if one is valid for it.

        Returns the k nearest cached objects when some cached kNN region's
        validity circle provably contains them all, otherwise ``None`` (the
        whole query must go to the server).
        """
        for region in self.knn_regions.values():
            if region.k < k:
                continue
            objects = [self._pool[oid] for oid in region.object_ids if oid in self._pool]
            if len(objects) < k:
                continue
            objects.sort(key=lambda obj: obj.mbr.min_dist_to_point(point))
            kth_distance = max(obj.mbr.max_dist_to_point(point) for obj in objects[:k])
            if circle_contains_circle(region.center, region.radius, point, kth_distance):
                region.last_access = self.clock
                return objects[:k]
        return None

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert_range_region(self, window: Rect, records: Iterable[ObjectRecord],
                            client_position: Optional[Point] = None) -> Optional[int]:
        """Cache a range query's window and results; returns the region id."""
        records = list(records)
        region = RangeRegion(region_id=next(self._region_ids), window=window,
                             object_ids=[r.object_id for r in records],
                             created_at=self.clock, last_access=self.clock)
        if self.coalesce:
            absorbed = [rid for rid, existing in self.range_regions.items()
                        if window.contains(existing.window)]
            for rid in absorbed:
                self._drop_region(rid)
        return self._insert_region(region, records, client_position)

    def insert_knn_region(self, center: Point, k: int, records: Iterable[ObjectRecord],
                          client_position: Optional[Point] = None) -> Optional[int]:
        """Cache a kNN query's results with its validity radius."""
        records = list(records)
        if not records:
            return None
        radius = max(record.mbr.max_dist_to_point(center) for record in records)
        region = KnnRegion(region_id=next(self._region_ids), center=center, k=k,
                           radius=radius, object_ids=[r.object_id for r in records],
                           created_at=self.clock, last_access=self.clock)
        return self._insert_region(region, records, client_position)

    def _insert_region(self, region: Region, records: List[ObjectRecord],
                       client_position: Optional[Point]) -> Optional[int]:
        # Making room can evict regions whose objects this region was counting
        # on sharing, which grows the space actually required — recompute and
        # retry until the requirement is stable (or provably does not fit).
        for _ in range(5):
            new_object_bytes = sum(r.size_bytes for r in records
                                   if r.object_id not in self._pool)
            needed = region.descriptor_bytes(self.size_model) + new_object_bytes
            if self.used_bytes + needed <= self.capacity_bytes:
                break
            if not self._make_room(needed, client_position):
                return None
        new_object_bytes = sum(r.size_bytes for r in records
                               if r.object_id not in self._pool)
        needed = region.descriptor_bytes(self.size_model) + new_object_bytes
        if self.used_bytes + needed > self.capacity_bytes:
            return None
        for record in records:
            if record.object_id not in self._pool:
                self._pool[record.object_id] = CachedObject(
                    object_id=record.object_id, mbr=record.mbr, size_bytes=record.size_bytes)
                self._refcounts[record.object_id] = 0
                self.used_bytes += record.size_bytes
            self._refcounts[record.object_id] += 1
        if isinstance(region, RangeRegion):
            self.range_regions[region.region_id] = region
        else:
            self.knn_regions[region.region_id] = region
        self.used_bytes += region.descriptor_bytes(self.size_model)
        return region.region_id

    # ------------------------------------------------------------------ #
    # replacement
    # ------------------------------------------------------------------ #
    def _make_room(self, bytes_needed: int, client_position: Optional[Point]) -> bool:
        if bytes_needed > self.capacity_bytes:
            return False
        while self.used_bytes + bytes_needed > self.capacity_bytes:
            victim = self._pick_victim(client_position)
            if victim is None:
                return False
            self._drop_region(victim)
            self.evictions += 1
        return True

    def _pick_victim(self, client_position: Optional[Point]) -> Optional[int]:
        regions = self.regions()
        if not regions:
            return None
        if self.replacement == "FAR" and client_position is not None:
            def distance(region: Region) -> float:
                center = region.center if isinstance(region, RangeRegion) else region.center
                return client_position.distance_to(center)
            victim = max(regions, key=lambda r: (distance(r), -r.last_access))
        else:
            victim = min(regions, key=lambda r: r.last_access)
        return victim.region_id

    def _drop_region(self, region_id: int) -> None:
        region = self.range_regions.pop(region_id, None)
        if region is None:
            region = self.knn_regions.pop(region_id, None)
        if region is None:
            return
        self.used_bytes -= region.descriptor_bytes(self.size_model)
        for object_id in region.object_ids:
            count = self._refcounts.get(object_id)
            if count is None:
                continue
            count -= 1
            if count <= 0:
                cached = self._pool.pop(object_id, None)
                self._refcounts.pop(object_id, None)
                if cached is not None:
                    self.used_bytes -= cached.size_bytes
            else:
                self._refcounts[object_id] = count

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check byte accounting and refcount consistency (tests only)."""
        expected = self.descriptor_bytes() + self.object_bytes()
        assert expected == self.used_bytes, "semantic cache byte accounting drifted"
        counted: Dict[int, int] = {}
        for region in self.regions():
            for object_id in region.object_ids:
                if object_id in self._pool:
                    counted[object_id] = counted.get(object_id, 0) + 1
        for object_id, count in counted.items():
            assert self._refcounts.get(object_id) == count, f"refcount mismatch for {object_id}"
