"""Cached semantic regions: range windows and kNN validity circles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.geometry import Point, Rect
from repro.rtree.sizes import SizeModel


@dataclass
class RangeRegion:
    """A cached range query: its window and the ids of its result objects."""

    region_id: int
    window: Rect
    object_ids: List[int] = field(default_factory=list)
    created_at: int = 0
    last_access: int = 0

    @property
    def center(self) -> Point:
        """Centre of the cached window (used by FAR replacement)."""
        return self.window.center()

    def descriptor_bytes(self, size_model: SizeModel) -> int:
        """Cache footprint of the semantic description (excluding the objects)."""
        return (size_model.query_header_bytes + size_model.rect_bytes()
                + len(self.object_ids) * size_model.object_id_bytes)


@dataclass
class KnnRegion:
    """A cached kNN query: centre, k, validity radius and its result objects.

    Following Zheng & Lee, the cached result of a kNN query at ``center`` is
    valid for a later k'NN query at point ``p`` (k' <= k) exactly when the
    circle around ``p`` containing its k' nearest cached objects lies entirely
    inside this region's circle of radius ``radius``.
    """

    region_id: int
    center: Point
    k: int
    radius: float
    object_ids: List[int] = field(default_factory=list)
    created_at: int = 0
    last_access: int = 0

    def descriptor_bytes(self, size_model: SizeModel) -> int:
        """Cache footprint of the semantic description (excluding the objects)."""
        return (size_model.query_header_bytes + size_model.point_bytes()
                + 2 * size_model.coordinate_bytes
                + len(self.object_ids) * size_model.object_id_bytes)


Region = Union[RangeRegion, KnnRegion]
