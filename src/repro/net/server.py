"""The asyncio server: many concurrent sessions over TCP and UNIX sockets.

:class:`ReproServer` fronts an in-process
:class:`~repro.core.server.ServerQueryProcessor` (or the sharded router —
anything with the same duck-typed surface) with the framed wire protocol:

* **batched query admission** — readers push decoded queries into one
  bounded :class:`asyncio.Queue`; a single dispatcher task drains them in
  batches and executes them serially.  Query execution is a deterministic
  function of (query, remainder, policy) and server state, and nothing
  else runs while it executes, so any interleaving of N clients produces
  exactly the per-client answers of a serial replay — the concurrency
  regression suite pins this.
* **bounded backpressure** — when the admission queue is full the reader
  coroutine blocks on ``put()``, stops consuming its socket, and the
  kernel's TCP window pushes back on the client.
* **per-connection byte ledgers** — the server bills each query's
  modelled uplink/downlink bytes with the *same formulas the client
  uses*, so the final ledger (shipped in BYE_ACK) reconciles exactly
  with the client's :class:`~repro.network.channel.WirelessChannel`
  totals; raw wire bytes are tracked separately.

Consistency validation (SYNC / VERSIONS) is answered from an optional
:class:`~repro.updates.validation.ValidationService`; metadata requests
(CATALOG_REQ, NODE_REQ, VERSIONS) are free, matching the in-process
deployment where they are plain attribute reads.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional, Tuple, cast

from repro.geometry import Rect
from repro.net import codec, frames
from repro.net.frames import ConnectionLost, FrameError
from repro.rtree.serialize import encode_node
from repro.rtree.sizes import SizeModel
from repro.updates.validation import ValidationService

#: Default bound of the shared query-admission queue.
DEFAULT_MAX_PENDING = 64

#: Default number of admitted queries one dispatcher drain executes.
DEFAULT_BATCH_SIZE = 8


class _Connection:
    """Per-connection state: streams, identity, and the byte ledger."""

    __slots__ = ("reader", "writer", "name", "ledger", "closed")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.name = "?"
        self.closed = False
        self.ledger: Dict[str, int] = {field: 0
                                       for field in codec.LEDGER_FIELDS}

    async def send(self, frame_type: int, payload: bytes) -> None:
        """Write one frame and count its wire bytes."""
        data = frames.encode_frame(frame_type, payload)
        try:
            self.writer.write(data)
            await self.writer.drain()
        except (ConnectionError, OSError) as error:
            raise ConnectionLost(f"connection lost: {error}") from error
        self.ledger["wire_bytes_out"] += len(data)

    async def send_error(self, code: str, message: str) -> None:
        """Best-effort ERROR frame (the peer may already be gone)."""
        try:
            await self.send(frames.ERROR, codec.encode_error(code, message))
        except ConnectionLost:
            pass


class ReproServer:
    """Serve the wire protocol for one in-process query processor.

    ``server`` is duck-typed — a
    :class:`~repro.core.server.ServerQueryProcessor` or a
    :class:`~repro.sharding.router.ShardRouter`.  ``validation`` answers
    the versioned protocol's SYNC exchange; without one, SYNC gets a typed
    error (static fleets never send it).
    """

    def __init__(self, server: object, size_model: SizeModel,
                 validation: Optional[ValidationService] = None,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if max_pending < 1 or batch_size < 1:
            raise ValueError("max_pending and batch_size must be positive")
        self.server = server
        self.size_model = size_model
        self.validation = validation
        self.max_pending = max_pending
        self.batch_size = batch_size
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._listeners: List[asyncio.AbstractServer] = []
        #: Final ledgers of connections that completed a BYE handshake,
        #: keyed by client name (reconciliation tests read these).
        self.final_ledgers: Dict[str, Dict[str, int]] = {}
        #: Every connection ever accepted (closed ones keep their flag set);
        #: the status server reads live ledgers out of this list.
        self._connections: List[_Connection] = []

    # ------------------------------------------------------------------ #
    # status-server surface (read from another thread; plain int reads
    # are atomic enough under the GIL for monitoring purposes)
    # ------------------------------------------------------------------ #
    def queue_depth(self) -> int:
        """Queries admitted but not yet dispatched."""
        return self._queue.qsize() if self._queue is not None else 0

    def connection_ledgers(self) -> Dict[str, Dict[str, int]]:
        """Per-client wire ledgers: live connections overlaid on final ones."""
        ledgers = {name: dict(ledger)
                   for name, ledger in sorted(self.final_ledgers.items())}
        for connection in self._connections:
            if not connection.closed and connection.name:
                ledgers[connection.name] = dict(connection.ledger)
        return ledgers

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Create the admission queue and the dispatcher task."""
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.max_pending)
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop())

    async def listen_tcp(self, host: str = "127.0.0.1",
                         port: int = 0) -> Tuple[str, int]:
        """Listen on TCP; returns the bound ``(host, port)``."""
        await self.start()
        listener = await asyncio.start_server(self._handle, host=host,
                                              port=port)
        self._listeners.append(listener)
        bound = listener.sockets[0].getsockname()
        return bound[0], bound[1]

    async def listen_uds(self, path: str) -> str:
        """Listen on a UNIX socket; returns the bound path."""
        await self.start()
        listener = await asyncio.start_unix_server(self._handle, path=path)
        self._listeners.append(listener)
        return path

    async def close(self) -> None:
        """Stop listening and cancel the dispatcher."""
        for listener in self._listeners:
            listener.close()
            await listener.wait_closed()
        self._listeners.clear()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        self._queue = None

    # ------------------------------------------------------------------ #
    # the dispatcher: batched, serial, deterministic
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            while (len(batch) < self.batch_size
                   and not self._queue.empty()):
                batch.append(self._queue.get_nowait())
            for connection, payload in batch:
                await self._serve_query(connection, payload)

    async def _serve_query(self, connection: _Connection,
                           payload: bytes) -> None:
        try:
            query, remainder, policy = codec.decode_query_request(payload)
        except FrameError as error:
            await connection.send_error("bad-query", str(error))
            return
        try:
            response = self.server.execute(  # type: ignore[attr-defined]
                query, remainder, policy)
        except Exception as error:  # surfaced to the client, not swallowed
            await connection.send_error("server-error",
                                        f"{type(error).__name__}: {error}")
            return
        if remainder is not None:
            uplink = remainder.size_bytes(self.size_model)
        else:
            uplink = query.descriptor_bytes(self.size_model)
        downlink = response.downlink_bytes(self.size_model)
        reply = codec.encode_response(response, self._root_id(),
                                      self._root_mbr())
        try:
            await connection.send(frames.RESPONSE, reply)
        except ConnectionLost:
            # The client vanished before the answer shipped; nothing was
            # acknowledged, so nothing lands in the ledger — mirroring the
            # client, which only bills a decoded response.
            connection.closed = True
            return
        connection.ledger["queries_served"] += 1
        connection.ledger["uplink_bytes"] += uplink
        connection.ledger["downlink_bytes"] += downlink

    # ------------------------------------------------------------------ #
    # per-connection protocol loop
    # ------------------------------------------------------------------ #
    def _root_id(self) -> int:
        return int(self.server.root_id)  # type: ignore[attr-defined]

    def _root_mbr(self) -> Rect:
        mbr = self.server.root_mbr  # type: ignore[attr-defined]
        return cast(Rect, mbr)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        connection = _Connection(reader, writer)
        self._connections.append(connection)
        try:
            if not await self._handshake(connection):
                return
            await self._serve_frames(connection)
        except ConnectionLost:
            pass  # the peer is gone either way
        except FrameError as error:
            # Garbled bytes: frame boundaries can no longer be trusted, so
            # report once and drop the connection.
            await connection.send_error("bad-frame", str(error))
        finally:
            connection.closed = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read(self, connection: _Connection) -> Tuple[int, bytes]:
        frame_type, payload = await frames.read_frame_async(connection.reader)
        connection.ledger["wire_bytes_in"] += (frames.HEADER_BYTES
                                               + len(payload))
        return frame_type, payload

    async def _handshake(self, connection: _Connection) -> bool:
        frame_type, payload = await self._read(connection)
        if frame_type != frames.HELLO:
            await connection.send_error(
                "bad-hello", f"expected HELLO, got "
                f"{frames.frame_name(frame_type)}")
            return False
        version, name, model = codec.decode_hello(payload)
        if version != codec.PROTOCOL_VERSION:
            await connection.send_error(
                "version-mismatch", f"server speaks protocol "
                f"{codec.PROTOCOL_VERSION}, client {version}")
            return False
        expected = codec.size_model_tuple(self.size_model)
        if model != expected:
            await connection.send_error(
                "size-model-mismatch", f"server models bytes with "
                f"{expected}, client with {model}")
            return False
        connection.name = name
        ack = codec.encode_hello_ack(self._root_id(), self._root_mbr(),
                                     self.validation is not None)
        await connection.send(frames.HELLO_ACK, ack)
        return True

    async def _serve_frames(self, connection: _Connection) -> None:
        assert self._queue is not None
        while True:
            frame_type, payload = await self._read(connection)
            if frame_type == frames.QUERY:
                await self._queue.put((connection, payload))
            elif frame_type == frames.SYNC:
                await self._serve_sync(connection, payload)
            elif frame_type == frames.SYNC_DONE:
                applied = codec.decode_sync_done(payload)
                connection.ledger["sync_downlink_bytes"] += applied
            elif frame_type == frames.VERSIONS:
                await self._serve_versions(connection, payload)
            elif frame_type == frames.NODE_REQ:
                await self._serve_node(connection, payload)
            elif frame_type == frames.CATALOG_REQ:
                ack = codec.encode_catalog(self._root_id(), self._root_mbr())
                await connection.send(frames.CATALOG_ACK, ack)
            elif frame_type == frames.BYE:
                self.final_ledgers[connection.name] = dict(connection.ledger)
                await connection.send(frames.BYE_ACK,
                                      codec.encode_bye_ack(connection.ledger))
                return
            else:
                await connection.send_error(
                    "unexpected-frame", f"{frames.frame_name(frame_type)} "
                    "is not a request frame")
                return

    async def _serve_sync(self, connection: _Connection,
                          payload: bytes) -> None:
        if self.validation is None:
            await connection.send_error(
                "no-validation", "this server has no validation service "
                "(static deployment)")
            return
        stamps = codec.decode_sync_request(payload)
        verdicts = self.validation.validate(stamps)
        stamp_bytes = self.size_model.pointer_bytes + 4
        connection.ledger["sync_uplink_bytes"] += (
            self.size_model.query_header_bytes + stamp_bytes * len(stamps))
        ack = codec.encode_sync_ack(verdicts, self._root_id(),
                                    self._root_mbr())
        await connection.send(frames.SYNC_ACK, ack)

    async def _serve_versions(self, connection: _Connection,
                              payload: bytes) -> None:
        if self.validation is None:
            await connection.send_error(
                "no-validation", "this server has no validation service "
                "(static deployment)")
            return
        node_ids, object_ids = codec.decode_versions_request(payload)
        node_versions, object_versions = self.validation.current_versions(
            node_ids, object_ids)
        ack = codec.encode_versions_ack(node_versions, object_versions,
                                        node_ids, object_ids)
        await connection.send(frames.VERSIONS_ACK, ack)

    async def _serve_node(self, connection: _Connection,
                          payload: bytes) -> None:
        node_id = codec.decode_node_request(payload)
        page: Optional[bytes] = None
        try:
            tree = self.server.tree  # type: ignore[attr-defined]
            if node_id in tree.store:
                page = encode_node(tree.store.peek(node_id))
        except (AttributeError, KeyError):
            page = None
        await connection.send(frames.NODE_ACK, codec.encode_node_ack(page))


class ServerThread:
    """Run a :class:`ReproServer` on a dedicated event-loop thread.

    The loopback fleet runner and the tests drive synchronous clients from
    the calling thread, so the server needs its own loop.  ``start()``
    returns once the listener is bound (exposing the resolved endpoint);
    ``stop()`` tears the loop down and joins the thread.
    """

    def __init__(self, server: ReproServer, transport: str,
                 path: Optional[str] = None, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        if transport not in ("tcp", "uds"):
            raise ValueError(f"unknown transport {transport!r}")
        if transport == "uds" and not path:
            raise ValueError("uds transport needs a socket path")
        self.server = server
        self.transport = transport
        self.path = path
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- what clients connect to ----------------------------------------- #
    @property
    def address(self) -> Tuple[str, object]:
        """``("uds", path)`` or ``("tcp", (host, port))`` once started."""
        if self.transport == "uds":
            return ("uds", self.path)
        return ("tcp", (self.host, self.port))

    def start(self) -> None:
        """Spawn the loop thread; blocks until the listener is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-net-server", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            raise RuntimeError(f"server failed to start: {error}")

    def stop(self) -> None:
        """Shut the loop down and join the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            loop, event = self._loop, self._stop_event
            loop.call_soon_threadsafe(event.set)
        self._thread.join()
        self._thread = None
        self._loop = None
        self._stop_event = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # startup failures surface in start()
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            if self.transport == "uds":
                assert self.path is not None
                await self.server.listen_uds(self.path)
            else:
                self.host, self.port = await self.server.listen_tcp(
                    self.host, self.port)
        except Exception as error:
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.close()
