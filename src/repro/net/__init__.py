"""Loopback-networked deployment of the proactive-caching server.

Everything else in the reproduction runs as in-process function calls —
"server" and "shard" are objects.  This package puts the same logical API
behind a real transport, following the ZEO-style client/server storage
split: the client-facing surface is *identical* whether the server lives in
the same process or behind a socket, so sessions, consistency protocols and
the sharded router run unchanged against a remote endpoint.

Layers (bottom up):

* :mod:`repro.net.frames` — length-prefixed, CRC-checked binary frames and
  the typed error taxonomy (torn frame / garbled frame / lost connection /
  remote failure);
* :mod:`repro.net.codec` — deterministic payload codecs for the query,
  response, consistency-validation and session-control frame types;
* :mod:`repro.net.server` — :class:`~repro.net.server.ReproServer`, an
  asyncio server multiplexing concurrent sessions over TCP and UNIX
  sockets with batched query admission, a bounded backpressure queue and
  per-connection byte ledgers;
* :mod:`repro.net.client` — the synchronous
  :class:`~repro.net.client.RemoteSessionClient` (a drop-in for the
  sessions' server handle) and its connection pool;
* :mod:`repro.net.fleet` — the loopback fleet runner behind
  ``repro fleet --transport {uds,tcp}``, pinned byte-identical to the
  in-process fleet by the equivalence suite.
"""

from repro.net.client import ClientPool, Endpoint, NetValidationService, RemoteSessionClient
from repro.net.frames import (
    ConnectionLost,
    FrameError,
    NetError,
    ProtocolError,
    RemoteError,
)
from repro.net.server import ReproServer, ServerThread
from repro.net.fleet import TRANSPORTS, run_networked_fleet

__all__ = [
    "ClientPool",
    "ConnectionLost",
    "Endpoint",
    "FrameError",
    "NetError",
    "NetValidationService",
    "ProtocolError",
    "RemoteError",
    "RemoteSessionClient",
    "ReproServer",
    "ServerThread",
    "TRANSPORTS",
    "run_networked_fleet",
]
