"""Deterministic payload codecs for every wire frame type.

Same conventions as the page codecs of :mod:`repro.rtree.serialize`: all
integers little-endian fixed width, all coordinates IEEE-754 doubles (so
every ``Rect`` round-trips bit-exactly and traversal decisions over decoded
values are identical to the originals), absent optional ids encoded behind
a presence flag, and element order preserved everywhere — a decoded
response re-encodes to the identical byte string.

Codecs decode through :class:`~repro.net.frames.PayloadReader`, so a
truncated or trailing-garbage payload raises
:class:`~repro.net.frames.FrameError` rather than an uncaught
``struct.error`` — the fuzz battery leans on this.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.items import CachedIndexNode, CacheEntry, FrontierTarget, TargetKind
from repro.core.remainder import FrontierItem, RemainderQuery
from repro.core.server import IndexNodeSnapshot, ObjectDelivery, ServerResponse
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy
from repro.geometry import Point, Rect
from repro.net.frames import FrameError, PayloadReader
from repro.rtree.entry import ObjectRecord
from repro.rtree.sizes import SizeModel
from repro.updates.validation import (
    DROP,
    REFRESH,
    VALID,
    ValidationStamp,
    ValidationVerdict,
)
from repro.workload.queries import JoinQuery, KNNQuery, Query, RangeQuery

#: Wire protocol revision; bumped on any incompatible frame/payload change.
PROTOCOL_VERSION = 1

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_RECT = struct.Struct("<4d")
_POINT = struct.Struct("<2d")

_QUERY_RANGE = 0
_QUERY_KNN = 1
_QUERY_JOIN = 2

_TARGET_KINDS = (TargetKind.NODE, TargetKind.OBJECT, TargetKind.SUPER)

_ENTRY_SUPER = 0
_ENTRY_CHILD = 1
_ENTRY_OBJECT = 2

_FORMS = (IndexForm.FULL, IndexForm.COMPACT, IndexForm.ADAPTIVE)


# --------------------------------------------------------------------------- #
# primitive helpers
# --------------------------------------------------------------------------- #
def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ValueError(f"string of {len(data)} bytes exceeds the u16 "
                         "length prefix")
    return _U16.pack(len(data)) + data


def _read_str(reader: PayloadReader) -> str:
    (length,) = reader.unpack(_U16)
    data = reader.read_bytes(int(length))
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise FrameError(f"garbled string field: {error}") from error


def _pack_opt_id(value: Optional[int]) -> bytes:
    if value is None:
        return _U8.pack(0)
    return _U8.pack(1) + _I64.pack(value)


def _read_opt_id(reader: PayloadReader) -> Optional[int]:
    (present,) = reader.unpack(_U8)
    if present == 0:
        return None
    if present != 1:
        raise FrameError(f"bad presence flag {present}")
    (value,) = reader.unpack(_I64)
    return int(value)


def _pack_rect(rect: Rect) -> bytes:
    return _RECT.pack(rect.min_x, rect.min_y, rect.max_x, rect.max_y)


def _read_rect(reader: PayloadReader) -> Rect:
    min_x, min_y, max_x, max_y = reader.unpack(_RECT)
    return Rect(float(min_x), float(min_y), float(max_x), float(max_y))


def _read_bool(reader: PayloadReader) -> bool:
    (value,) = reader.unpack(_U8)
    if value not in (0, 1):
        raise FrameError(f"bad boolean flag {value}")
    return bool(value)


def _read_count(reader: PayloadReader, what: str,
                limit: int = 1 << 24) -> int:
    (count,) = reader.unpack(_U32)
    if count > limit:
        raise FrameError(f"implausible {what} count {count}")
    return int(count)


# --------------------------------------------------------------------------- #
# queries
# --------------------------------------------------------------------------- #
def encode_query(query: Query) -> bytes:
    """Serialise one query (range / kNN / join)."""
    if isinstance(query, RangeQuery):
        return _U8.pack(_QUERY_RANGE) + _pack_rect(query.window)
    if isinstance(query, KNNQuery):
        return (_U8.pack(_QUERY_KNN)
                + _POINT.pack(query.point.x, query.point.y)
                + _I64.pack(query.k))
    if isinstance(query, JoinQuery):
        return (_U8.pack(_QUERY_JOIN) + _pack_rect(query.window)
                + _F64.pack(query.threshold))
    raise TypeError(f"unsupported query type {type(query)!r}")


def read_query(reader: PayloadReader) -> Query:
    """Decode one query."""
    (kind,) = reader.unpack(_U8)
    if kind == _QUERY_RANGE:
        return RangeQuery(window=_read_rect(reader))
    if kind == _QUERY_KNN:
        x, y = reader.unpack(_POINT)
        (k,) = reader.unpack(_I64)
        if k <= 0:
            raise FrameError(f"bad kNN k {k}")
        return KNNQuery(point=Point(float(x), float(y)), k=int(k))
    if kind == _QUERY_JOIN:
        window = _read_rect(reader)
        (threshold,) = reader.unpack(_F64)
        if threshold < 0:
            raise FrameError(f"bad join threshold {threshold}")
        return JoinQuery(window=window, threshold=float(threshold))
    raise FrameError(f"unknown query kind {kind}")


# --------------------------------------------------------------------------- #
# frontier / remainder
# --------------------------------------------------------------------------- #
def encode_target(target: FrontierTarget) -> bytes:
    """Serialise one frontier target."""
    parts = [_U8.pack(_TARGET_KINDS.index(target.kind)),
             _pack_rect(target.mbr),
             _F64.pack(target.priority),
             _pack_opt_id(target.node_id),
             _pack_opt_id(target.object_id),
             _pack_str(target.code),
             _pack_opt_id(target.parent_node_id),
             _U8.pack(1 if target.confirm_only else 0)]
    return b"".join(parts)


def read_target(reader: PayloadReader) -> FrontierTarget:
    """Decode one frontier target."""
    (kind_index,) = reader.unpack(_U8)
    if kind_index >= len(_TARGET_KINDS):
        raise FrameError(f"unknown frontier target kind {kind_index}")
    mbr = _read_rect(reader)
    (priority,) = reader.unpack(_F64)
    node_id = _read_opt_id(reader)
    object_id = _read_opt_id(reader)
    code = _read_str(reader)
    parent_node_id = _read_opt_id(reader)
    confirm_only = _read_bool(reader)
    return FrontierTarget(kind=_TARGET_KINDS[kind_index], mbr=mbr,
                          priority=float(priority), node_id=node_id,
                          object_id=object_id, code=code,
                          parent_node_id=parent_node_id,
                          confirm_only=confirm_only)


def encode_remainder(remainder: RemainderQuery) -> bytes:
    """Serialise one remainder query (without its embedded query)."""
    parts = [_U32.pack(len(remainder.frontier))]
    for item in remainder.frontier:
        parts.append(_U8.pack(len(item)))
        for target in item:
            parts.append(encode_target(target))
    if remainder.k_remaining is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1) + _I64.pack(remainder.k_remaining))
    if remainder.reported_fmr is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1) + _F64.pack(remainder.reported_fmr))
    return b"".join(parts)


def read_remainder(reader: PayloadReader, query: Query) -> RemainderQuery:
    """Decode one remainder query around its already-decoded query."""
    item_count = _read_count(reader, "frontier item")
    frontier: List[FrontierItem] = []
    for _ in range(item_count):
        (width,) = reader.unpack(_U8)
        if width not in (1, 2):
            raise FrameError(f"bad frontier item width {width}")
        frontier.append(tuple(read_target(reader) for _ in range(width)))
    k_remaining: Optional[int] = None
    if _read_bool(reader):
        (k_value,) = reader.unpack(_I64)
        k_remaining = int(k_value)
    reported_fmr: Optional[float] = None
    if _read_bool(reader):
        (fmr,) = reader.unpack(_F64)
        reported_fmr = float(fmr)
    return RemainderQuery(query=query, frontier=frontier,
                          k_remaining=k_remaining, reported_fmr=reported_fmr)


def encode_policy(policy: SupportingIndexPolicy) -> bytes:
    """Serialise the supporting-index policy shipped with a query."""
    return (_U8.pack(_FORMS.index(policy.form)) + _I32.pack(policy.depth)
            + _I32.pack(policy.max_depth))


def read_policy(reader: PayloadReader) -> SupportingIndexPolicy:
    """Decode a supporting-index policy."""
    (form_index,) = reader.unpack(_U8)
    if form_index >= len(_FORMS):
        raise FrameError(f"unknown index form {form_index}")
    depth, max_depth = reader.unpack(struct.Struct("<ii"))
    if depth < 0:
        raise FrameError(f"bad policy depth {depth}")
    return SupportingIndexPolicy(form=_FORMS[form_index], depth=int(depth),
                                 max_depth=int(max_depth))


def encode_query_request(query: Query,
                         remainder: Optional[RemainderQuery],
                         policy: Optional[SupportingIndexPolicy]) -> bytes:
    """The QUERY frame payload: query + optional remainder + policy."""
    parts = [encode_query(query)]
    if remainder is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1) + encode_remainder(remainder))
    if policy is None:
        parts.append(_U8.pack(0))
    else:
        parts.append(_U8.pack(1) + encode_policy(policy))
    return b"".join(parts)


def decode_query_request(payload: bytes) -> Tuple[
        Query, Optional[RemainderQuery], Optional[SupportingIndexPolicy]]:
    """Decode a QUERY frame payload."""
    reader = PayloadReader(payload)
    query = read_query(reader)
    remainder = read_remainder(reader, query) if _read_bool(reader) else None
    policy = read_policy(reader) if _read_bool(reader) else None
    reader.expect_end()
    return query, remainder, policy


# --------------------------------------------------------------------------- #
# cache entries / node snapshots / responses
# --------------------------------------------------------------------------- #
def encode_cache_entry(entry: CacheEntry) -> bytes:
    """Serialise one cached-node element (real or super entry)."""
    if entry.object_id is not None:
        kind, ref = _ENTRY_OBJECT, entry.object_id
    elif entry.child_id is not None:
        kind, ref = _ENTRY_CHILD, entry.child_id
    else:
        kind, ref = _ENTRY_SUPER, 0
    return (_U8.pack(kind) + _pack_rect(entry.mbr) + _pack_str(entry.code)
            + _I64.pack(ref))


def read_cache_entry(reader: PayloadReader) -> CacheEntry:
    """Decode one cached-node element."""
    (kind,) = reader.unpack(_U8)
    mbr = _read_rect(reader)
    code = _read_str(reader)
    (ref,) = reader.unpack(_I64)
    if kind == _ENTRY_SUPER:
        return CacheEntry(mbr=mbr, code=code)
    if kind == _ENTRY_CHILD:
        return CacheEntry(mbr=mbr, code=code, child_id=int(ref))
    if kind == _ENTRY_OBJECT:
        return CacheEntry(mbr=mbr, code=code, object_id=int(ref))
    raise FrameError(f"unknown cache entry kind {kind}")


def encode_object_record(record: ObjectRecord) -> bytes:
    """Serialise one object record (id, payload size, MBR)."""
    return (_I64.pack(record.object_id) + _I64.pack(record.size_bytes)
            + _pack_rect(record.mbr))


def read_object_record(reader: PayloadReader) -> ObjectRecord:
    """Decode one object record."""
    (object_id,) = reader.unpack(_I64)
    (size_bytes,) = reader.unpack(_I64)
    mbr = _read_rect(reader)
    return ObjectRecord(object_id=int(object_id), mbr=mbr,
                        size_bytes=int(size_bytes))


def encode_snapshot(snapshot: IndexNodeSnapshot) -> bytes:
    """Serialise one shipped index-node snapshot (element order preserved)."""
    parts = [_I64.pack(snapshot.node_id), _I32.pack(snapshot.level),
             _pack_opt_id(snapshot.parent_id),
             _U32.pack(len(snapshot.elements))]
    parts.extend(encode_cache_entry(element) for element in snapshot.elements)
    return b"".join(parts)


def read_snapshot(reader: PayloadReader) -> IndexNodeSnapshot:
    """Decode one index-node snapshot."""
    (node_id,) = reader.unpack(_I64)
    (level,) = reader.unpack(_I32)
    parent_id = _read_opt_id(reader)
    element_count = _read_count(reader, "snapshot element")
    elements = [read_cache_entry(reader) for _ in range(element_count)]
    return IndexNodeSnapshot(node_id=int(node_id), level=int(level),
                             parent_id=parent_id, elements=elements)


def encode_catalog(root_id: int, root_mbr: Rect) -> bytes:
    """The root-catalogue payload piggybacked on acks."""
    return _I64.pack(root_id) + _pack_rect(root_mbr)


def read_catalog(reader: PayloadReader) -> Tuple[int, Rect]:
    """Decode a root-catalogue payload."""
    (root_id,) = reader.unpack(_I64)
    return int(root_id), _read_rect(reader)


def encode_response(response: ServerResponse, root_id: int,
                    root_mbr: Rect) -> bytes:
    """The RESPONSE frame payload: the full response + catalogue piggyback."""
    parts = [encode_catalog(root_id, root_mbr),
             _U32.pack(len(response.deliveries))]
    for delivery in response.deliveries:
        parts.append(encode_object_record(delivery.record))
        parts.append(_pack_opt_id(delivery.parent_node_id))
        parts.append(_U8.pack(1 if delivery.confirm_only else 0))
    parts.append(_U32.pack(len(response.index_snapshots)))
    parts.extend(encode_snapshot(snapshot)
                 for snapshot in response.index_snapshots)
    parts.append(_I64.pack(response.accessed_node_count))
    parts.append(_I64.pack(response.examined_elements))
    parts.append(_F64.pack(response.cpu_seconds))
    return b"".join(parts)


def decode_response(payload: bytes) -> Tuple[ServerResponse, int, Rect]:
    """Decode a RESPONSE frame payload → (response, root_id, root_mbr)."""
    reader = PayloadReader(payload)
    root_id, root_mbr = read_catalog(reader)
    delivery_count = _read_count(reader, "delivery")
    deliveries: List[ObjectDelivery] = []
    for _ in range(delivery_count):
        record = read_object_record(reader)
        parent_node_id = _read_opt_id(reader)
        confirm_only = _read_bool(reader)
        deliveries.append(ObjectDelivery(record=record,
                                         parent_node_id=parent_node_id,
                                         confirm_only=confirm_only))
    snapshot_count = _read_count(reader, "snapshot")
    snapshots = [read_snapshot(reader) for _ in range(snapshot_count)]
    (accessed,) = reader.unpack(_I64)
    (examined,) = reader.unpack(_I64)
    (cpu_seconds,) = reader.unpack(_F64)
    reader.expect_end()
    response = ServerResponse(deliveries=deliveries, index_snapshots=snapshots,
                              accessed_node_count=int(accessed),
                              examined_elements=int(examined),
                              cpu_seconds=float(cpu_seconds))
    return response, root_id, root_mbr


# --------------------------------------------------------------------------- #
# session control
# --------------------------------------------------------------------------- #
def encode_hello(client_name: str, size_model: SizeModel) -> bytes:
    """The HELLO payload: protocol version, client name, size-model check.

    Client and server must model bytes with the same parameters or every
    cost figure silently diverges; the handshake pins the five size-model
    constants and the server rejects a mismatch with a typed error.
    """
    return (_U16.pack(PROTOCOL_VERSION) + _pack_str(client_name)
            + struct.pack("<5I", size_model.page_bytes,
                          size_model.coordinate_bytes,
                          size_model.pointer_bytes,
                          size_model.query_header_bytes,
                          size_model.object_id_bytes))


def decode_hello(payload: bytes) -> Tuple[int, str, Tuple[int, ...]]:
    """Decode a HELLO payload → (version, client name, size-model tuple)."""
    reader = PayloadReader(payload)
    (version,) = reader.unpack(_U16)
    name = _read_str(reader)
    model = tuple(int(value) for value in reader.unpack(struct.Struct("<5I")))
    reader.expect_end()
    return int(version), name, model


def size_model_tuple(size_model: SizeModel) -> Tuple[int, ...]:
    """The five pinned size-model constants, in wire order."""
    return (size_model.page_bytes, size_model.coordinate_bytes,
            size_model.pointer_bytes, size_model.query_header_bytes,
            size_model.object_id_bytes)


def encode_hello_ack(root_id: int, root_mbr: Rect,
                     has_validation: bool) -> bytes:
    """The HELLO_ACK payload: catalogue + whether SYNC is answerable."""
    return (encode_catalog(root_id, root_mbr)
            + _U8.pack(1 if has_validation else 0))


def decode_hello_ack(payload: bytes) -> Tuple[int, Rect, bool]:
    """Decode a HELLO_ACK payload."""
    reader = PayloadReader(payload)
    root_id, root_mbr = read_catalog(reader)
    has_validation = _read_bool(reader)
    reader.expect_end()
    return root_id, root_mbr, has_validation


def decode_catalog_ack(payload: bytes) -> Tuple[int, Rect]:
    """Decode a CATALOG_ACK payload."""
    reader = PayloadReader(payload)
    root_id, root_mbr = read_catalog(reader)
    reader.expect_end()
    return root_id, root_mbr


def encode_error(code: str, message: str) -> bytes:
    """The ERROR payload: a machine code plus a human message."""
    return _pack_str(code) + _pack_str(message)


def decode_error(payload: bytes) -> Tuple[str, str]:
    """Decode an ERROR payload."""
    reader = PayloadReader(payload)
    code = _read_str(reader)
    message = _read_str(reader)
    reader.expect_end()
    return code, message


# --------------------------------------------------------------------------- #
# consistency validation
# --------------------------------------------------------------------------- #
def encode_sync_request(stamps: Sequence[ValidationStamp]) -> bytes:
    """The SYNC payload: one stamp per cached item."""
    parts = [_U32.pack(len(stamps))]
    for stamp in stamps:
        parts.append(_U8.pack(1 if stamp.is_node else 0))
        parts.append(_I64.pack(stamp.item_id))
        parts.append(_U32.pack(stamp.cached_version))
        parts.append(_pack_opt_id(stamp.parent_id))
    return b"".join(parts)


def decode_sync_request(payload: bytes) -> List[ValidationStamp]:
    """Decode a SYNC payload."""
    reader = PayloadReader(payload)
    stamp_count = _read_count(reader, "stamp")
    stamps: List[ValidationStamp] = []
    for _ in range(stamp_count):
        is_node = _read_bool(reader)
        (item_id,) = reader.unpack(_I64)
        (version,) = reader.unpack(_U32)
        parent_id = _read_opt_id(reader)
        stamps.append(ValidationStamp(is_node=is_node, item_id=int(item_id),
                                      cached_version=int(version),
                                      parent_id=parent_id))
    reader.expect_end()
    return stamps


def _encode_cached_node(node: CachedIndexNode) -> bytes:
    parts = [_I64.pack(node.node_id), _I32.pack(node.level),
             _U32.pack(len(node.elements))]
    # Insertion order of the elements dict is the partition-tree build
    # order; preserving it keeps refreshed snapshots digest-identical.
    parts.extend(encode_cache_entry(element)
                 for element in node.elements.values())
    return b"".join(parts)


def _read_cached_node(reader: PayloadReader) -> CachedIndexNode:
    (node_id,) = reader.unpack(_I64)
    (level,) = reader.unpack(_I32)
    element_count = _read_count(reader, "cached-node element")
    elements: Dict[str, CacheEntry] = {}
    for _ in range(element_count):
        entry = read_cache_entry(reader)
        elements[entry.code] = entry
    return CachedIndexNode(node_id=int(node_id), level=int(level),
                           elements=elements)


def encode_sync_ack(verdicts: Sequence[ValidationVerdict], root_id: int,
                    root_mbr: Rect) -> bytes:
    """The SYNC_ACK payload: catalogue piggyback + one verdict per stamp."""
    parts = [encode_catalog(root_id, root_mbr), _U32.pack(len(verdicts))]
    for verdict in verdicts:
        parts.append(_U8.pack(verdict.action))
        if verdict.action != REFRESH:
            continue
        if verdict.node is not None:
            parts.append(_U8.pack(1))
            parts.append(_U32.pack(verdict.version))
            parts.append(_U8.pack(1 if verdict.is_leaf else 0))
            parts.append(_encode_cached_node(verdict.node))
        elif verdict.record is not None:
            parts.append(_U8.pack(0))
            parts.append(_U32.pack(verdict.version))
            parts.append(encode_object_record(verdict.record))
        else:
            raise ValueError("a REFRESH verdict needs a node or a record")
    return b"".join(parts)


def decode_sync_ack(payload: bytes
                    ) -> Tuple[List[ValidationVerdict], int, Rect]:
    """Decode a SYNC_ACK payload → (verdicts, root_id, root_mbr)."""
    reader = PayloadReader(payload)
    root_id, root_mbr = read_catalog(reader)
    verdict_count = _read_count(reader, "verdict")
    verdicts: List[ValidationVerdict] = []
    for _ in range(verdict_count):
        (action,) = reader.unpack(_U8)
        if action in (VALID, DROP):
            verdicts.append(ValidationVerdict(action=int(action)))
            continue
        if action != REFRESH:
            raise FrameError(f"unknown verdict action {action}")
        is_node = _read_bool(reader)
        (version,) = reader.unpack(_U32)
        if is_node:
            is_leaf = _read_bool(reader)
            node = _read_cached_node(reader)
            verdicts.append(ValidationVerdict(action=REFRESH,
                                              version=int(version),
                                              node=node, is_leaf=is_leaf))
        else:
            record = read_object_record(reader)
            verdicts.append(ValidationVerdict(action=REFRESH,
                                              version=int(version),
                                              record=record))
    reader.expect_end()
    return verdicts, root_id, root_mbr


def encode_sync_done(applied_downlink_bytes: int) -> bytes:
    """The SYNC_DONE payload: the client's applied handshake downlink.

    Drop cascades during verdict application can discard a shipped refresh
    payload, and only the client can see that; this one-way report lets
    the server's per-connection ledger record exactly the *modelled* bytes
    the client billed, which is what the reconciliation tests compare.
    """
    return _I64.pack(applied_downlink_bytes)


def decode_sync_done(payload: bytes) -> int:
    """Decode a SYNC_DONE payload."""
    reader = PayloadReader(payload)
    (applied,) = reader.unpack(_I64)
    reader.expect_end()
    return int(applied)


def encode_versions_request(node_ids: Sequence[int],
                            object_ids: Sequence[int]) -> bytes:
    """The VERSIONS payload: ids whose current stamps the client wants."""
    parts = [_U32.pack(len(node_ids))]
    parts.extend(_I64.pack(node_id) for node_id in node_ids)
    parts.append(_U32.pack(len(object_ids)))
    parts.extend(_I64.pack(object_id) for object_id in object_ids)
    return b"".join(parts)


def decode_versions_request(payload: bytes) -> Tuple[List[int], List[int]]:
    """Decode a VERSIONS payload."""
    reader = PayloadReader(payload)
    node_count = _read_count(reader, "node id")
    node_ids = [int(reader.unpack(_I64)[0]) for _ in range(node_count)]
    object_count = _read_count(reader, "object id")
    object_ids = [int(reader.unpack(_I64)[0]) for _ in range(object_count)]
    reader.expect_end()
    return node_ids, object_ids


def _encode_version_map(versions: Dict[int, int],
                        order: Sequence[int]) -> bytes:
    present = [(item_id, versions[item_id]) for item_id in order
               if item_id in versions]
    parts = [_U32.pack(len(present))]
    for item_id, version in present:
        parts.append(_I64.pack(item_id) + _U32.pack(version))
    return b"".join(parts)


def encode_versions_ack(node_versions: Dict[int, int],
                        object_versions: Dict[int, int],
                        node_order: Sequence[int],
                        object_order: Sequence[int]) -> bytes:
    """The VERSIONS_ACK payload, in the request's id order."""
    return (_encode_version_map(node_versions, node_order)
            + _encode_version_map(object_versions, object_order))


def _read_version_map(reader: PayloadReader) -> Dict[int, int]:
    count = _read_count(reader, "version stamp")
    versions: Dict[int, int] = {}
    for _ in range(count):
        (item_id,) = reader.unpack(_I64)
        (version,) = reader.unpack(_U32)
        versions[int(item_id)] = int(version)
    return versions


def decode_versions_ack(payload: bytes
                        ) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Decode a VERSIONS_ACK payload."""
    reader = PayloadReader(payload)
    node_versions = _read_version_map(reader)
    object_versions = _read_version_map(reader)
    reader.expect_end()
    return node_versions, object_versions


# --------------------------------------------------------------------------- #
# node fetch / session close
# --------------------------------------------------------------------------- #
def encode_node_request(node_id: int) -> bytes:
    """The NODE_REQ payload."""
    return _I64.pack(node_id)


def decode_node_request(payload: bytes) -> int:
    """Decode a NODE_REQ payload."""
    reader = PayloadReader(payload)
    (node_id,) = reader.unpack(_I64)
    reader.expect_end()
    return int(node_id)


def encode_node_ack(page: Optional[bytes]) -> bytes:
    """The NODE_ACK payload: the node's page bytes, or a not-found flag."""
    if page is None:
        return _U8.pack(0)
    return _U8.pack(1) + _U32.pack(len(page)) + page


def decode_node_ack(payload: bytes) -> Optional[bytes]:
    """Decode a NODE_ACK payload → page bytes or ``None``."""
    reader = PayloadReader(payload)
    if not _read_bool(reader):
        reader.expect_end()
        return None
    length = _read_count(reader, "page byte", limit=1 << 26)
    page = reader.read_bytes(length)
    reader.expect_end()
    return page


_LEDGER = struct.Struct("<7q")

#: The per-connection ledger fields, in wire order.
LEDGER_FIELDS = ("queries_served", "uplink_bytes", "downlink_bytes",
                 "sync_uplink_bytes", "sync_downlink_bytes",
                 "wire_bytes_in", "wire_bytes_out")


def encode_bye_ack(ledger: Dict[str, int]) -> bytes:
    """The BYE_ACK payload: the connection's final byte ledger."""
    return _LEDGER.pack(*(int(ledger.get(field, 0))
                          for field in LEDGER_FIELDS))


def decode_bye_ack(payload: bytes) -> Dict[str, int]:
    """Decode a BYE_ACK payload."""
    reader = PayloadReader(payload)
    values = reader.unpack(_LEDGER)
    reader.expect_end()
    return {field: int(value)
            for field, value in zip(LEDGER_FIELDS, values)}
