"""The loopback-networked fleet runner and the saturation probe.

``run_networked_fleet`` runs an ordinary :class:`~repro.sim.fleet
.FleetConfig` with the server behind a real socket: the deterministic
server state is built in-process exactly as the simulated runner builds
it, a :class:`~repro.net.server.ReproServer` serves it from a background
event-loop thread, and every client session gets a
:class:`~repro.net.client.RemoteSessionClient` as its server handle — the
sessions, consistency protocols and replay loops are the *same objects*
running the same code, which is why the equivalence suite can demand
byte-identical per-query costs and cache digests against the in-process
run.

The byte story per client: queries and consistency handshakes bill their
modelled bytes to the client's own
:class:`~repro.network.channel.WirelessChannel`; the server keeps a
mirror ledger per connection; :attr:`FleetResult.net_summary` reports
both sides and whether they reconciled exactly.
"""

from __future__ import annotations

import statistics
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.client import (
    ClientPool,
    Endpoint,
    NetValidationService,
    RemoteSessionClient,
)
from repro.net.server import ReproServer, ServerThread
from repro.network.channel import WirelessChannel
from repro.obs.status import publish
from repro.sim.config import SimulationConfig
from repro.rtree.sizes import SizeModel
from repro.sim.fleet import (
    FleetClientSpec,
    FleetConfig,
    build_dynamic_events,
    build_fleet_events,
    check_dynamic_models,
    finalize_fleet_results,
    replay_dynamic_events,
    replay_fleet_events,
)
from repro.sim.metrics import ClientResult, FleetResult
from repro.sim.runner import (
    SharedServerState,
    build_shared_state,
    generate_trace,
)
from repro.sim.sessions import GroundTruthCache, make_session
from repro.updates.validation import LocalValidationService

#: Transports `repro fleet` accepts; "inproc" is the simulated default.
TRANSPORTS = ("inproc", "uds", "tcp")


def make_endpoint(thread: ServerThread) -> Endpoint:
    """The client-side endpoint of a started :class:`ServerThread`."""
    kind, where = thread.address
    if kind == "uds":
        return Endpoint(transport="uds", path=str(where))
    host, port = where  # type: ignore[misc]
    return Endpoint(transport="tcp", host=host, port=int(port))


class _CatalogInvalidatingUpdater:
    """Apply updates through the real updater, then dirty every catalogue.

    In-process sessions read ``server.root_id`` live, so a root split is
    visible instantly; remote handles cache the catalogue, so each applied
    update marks it stale and the next read re-fetches (free metadata,
    like the in-process property read).
    """

    def __init__(self, updater: object,
                 handles: Sequence[RemoteSessionClient]) -> None:
        self.updater = updater
        self.handles = list(handles)

    def apply(self, event: object) -> None:
        self.updater.apply(event)  # type: ignore[attr-defined]
        for handle in self.handles:
            handle.invalidate_catalog()

    def summary(self) -> Dict[str, object]:
        return dict(self.updater.summary())  # type: ignore[attr-defined]


def _reconcile(channel: WirelessChannel,
               ledger: Dict[str, int]) -> Dict[str, object]:
    """One client's two-sided byte accounting, with the exact-match bit."""
    server_uplink = ledger["uplink_bytes"] + ledger["sync_uplink_bytes"]
    server_downlink = (ledger["downlink_bytes"]
                       + ledger["sync_downlink_bytes"])
    return {
        "client_uplink_bytes": channel.uplink_bytes_total,
        "client_downlink_bytes": channel.downlink_bytes_total,
        "server_uplink_bytes": server_uplink,
        "server_downlink_bytes": server_downlink,
        "queries_served": ledger["queries_served"],
        "wire_bytes_to_server": ledger["wire_bytes_in"],
        "wire_bytes_from_server": ledger["wire_bytes_out"],
        "reconciled": (server_uplink == channel.uplink_bytes_total
                       and server_downlink == channel.downlink_bytes_total),
    }


def run_networked_fleet(fleet: FleetConfig, transport: str) -> FleetResult:
    """Run ``fleet`` with the server behind a loopback socket.

    ``transport`` is ``"uds"`` or ``"tcp"`` (``"inproc"`` belongs to the
    simulated :func:`~repro.sim.fleet.run_fleet`).  Sharded fleets route
    the wire protocol to the scatter-gather router; dynamic fleets apply
    the shared mutation history in-process between queries, exactly as the
    simulated runner does.  Returns the ordinary :class:`FleetResult`
    plus a :attr:`~repro.sim.metrics.FleetResult.net_summary` with the
    per-client byte reconciliation.
    """
    if transport not in ("uds", "tcp"):
        raise ValueError(f"unknown networked transport {transport!r}; "
                         "expected uds or tcp")
    check_dynamic_models(fleet, kind="networked")
    if fleet.is_sharded:
        return _run_sharded(fleet, transport)
    return _run_single(fleet, transport)


def _run_single(fleet: FleetConfig, transport: str) -> FleetResult:
    specs = fleet.client_specs()
    shared = build_shared_state(fleet.base)
    try:
        updater = None
        validation = None
        if fleet.is_dynamic:
            from repro.updates import DatasetUpdater
            updater = DatasetUpdater(shared.tree, shared.server,
                                     ground_truth=shared.ground_truth)
            validation = LocalValidationService(updater)
        result = _serve_and_replay(fleet, specs, shared.server,
                                   shared.size_model, shared.tree,
                                   shared.ground_truth, updater, transport)
        if updater is not None:
            result.update_summary = dict(updater.summary())
            result.update_summary["consistency"] = fleet.consistency
        return result
    finally:
        shared.tree.store.close()


def _run_sharded(fleet: FleetConfig, transport: str) -> FleetResult:
    from repro.sharding import (
        PartitionResultCache,
        ShardedUpdater,
        build_sharded_state,
    )
    shard_count = fleet.shards if fleet.shards is not None else 1
    state = build_sharded_state(fleet.base, shard_count,
                                partitioner=fleet.partitioner)
    specs = fleet.client_specs()
    try:
        if fleet.router_cache:
            state.router.attach_result_cache(
                PartitionResultCache(capacity_bytes=fleet.router_cache_bytes))
        ground_truth = GroundTruthCache(state.view)
        updater = None
        if fleet.is_dynamic:
            updater = ShardedUpdater(state.router, ground_truth=ground_truth)
        result = _serve_and_replay(fleet, specs, state.router,
                                   state.size_model, state.view,
                                   ground_truth, updater, transport)
        result.shard_summary = state.shard_summary(fleet.partitioner)
        if updater is not None:
            result.update_summary = dict(updater.summary())
            result.update_summary["consistency"] = fleet.consistency
        return result
    finally:
        state.close()


def _serve_and_replay(fleet: FleetConfig, specs: Sequence[FleetClientSpec],
                      server: object, size_model: SizeModel, tree: object,
                      ground_truth: GroundTruthCache,
                      updater: Optional[object],
                      transport: str) -> FleetResult:
    """The shared core: serve, dial one handle per client, replay, close."""
    from repro.updates import make_protocol
    validation = (LocalValidationService(updater)
                  if updater is not None else None)
    repro_server = ReproServer(server, size_model, validation=validation)
    with tempfile.TemporaryDirectory(prefix="repro-net-") as workdir:
        thread = ServerThread(repro_server, transport,
                              path=f"{workdir}/server.sock")
        thread.start()
        handles: List[RemoteSessionClient] = []
        try:
            endpoint = make_endpoint(thread)
            sessions = {}
            channels: Dict[int, WirelessChannel] = {}
            for spec in specs:
                channel = WirelessChannel()
                handle = RemoteSessionClient(
                    endpoint, size_model,
                    client_name=f"client-{spec.client_id}", channel=channel)
                handles.append(handle)
                channels[spec.client_id] = channel
                consistency = None
                if fleet.is_dynamic:
                    consistency = make_protocol(
                        fleet.consistency, size_model=size_model,
                        ttl_seconds=fleet.ttl_seconds,
                        service=NetValidationService(handle))
                sessions[spec.client_id] = make_session(
                    spec.model, tree, spec.config, server=handle,
                    replacement_policy=spec.replacement_policy,
                    ground_truth=ground_truth, consistency=consistency)
            results = {spec.client_id: ClientResult(
                client_id=spec.client_id, group=spec.group, model=spec.model)
                for spec in specs}
            publish("net", lambda: {
                "transport": transport,
                "queue_depth": repro_server.queue_depth(),
                "connections": repro_server.connection_ledgers(),
                "latency": latency_summary([lat for handle in handles
                                            for lat in handle.latencies]),
            })
            if fleet.is_dynamic:
                assert updater is not None
                wrapped = _CatalogInvalidatingUpdater(updater, handles)
                replay_dynamic_events(wrapped, sessions, results,
                                      build_dynamic_events(fleet, specs))
            else:
                replay_fleet_events(sessions, results,
                                    build_fleet_events(specs))
            finalize_fleet_results(sessions, results)
            summary: Dict[str, object] = {"transport": transport}
            clients_summary = []
            for spec, handle in zip(specs, handles):
                handle.close()
                entry: Dict[str, object] = {"client_id": spec.client_id}
                entry.update(_reconcile(channels[spec.client_id],
                                        handle.server_ledger()))
                entry["retries"] = handle.retries
                entry["latency"] = latency_summary(handle.latencies)
                clients_summary.append(entry)
            summary["clients"] = clients_summary
            summary["all_reconciled"] = all(entry["reconciled"]
                                            for entry in clients_summary)
            summary["latency"] = latency_summary(
                [lat for handle in handles for lat in handle.latencies])
            result = FleetResult(clients=[results[spec.client_id]
                                          for spec in specs])
            result.net_summary = summary
            return result
        finally:
            for handle in handles:
                handle.close()
            thread.stop()


# --------------------------------------------------------------------------- #
# the saturation probe behind the net_fleet bench scenario
# --------------------------------------------------------------------------- #
def saturation_probe(base: SimulationConfig, connections: Sequence[int],
                     queries_per_connection: int,
                     transport: str = "uds") -> Dict[str, object]:
    """Latency of one server under a ladder of concurrent connections.

    For each rung, ``n`` threads each open their own connection and replay
    ``queries_per_connection`` raw queries (no client cache — every query
    is a full server round trip), recording per-query wall latency.  The
    result ids of every (connection, query) pair are compared against a
    direct in-process execution of the same query, so the fingerprint's
    ``results_match`` bit is deterministic even though the latencies are
    not.
    """
    shared = build_shared_state(base)
    server = ReproServer(shared.server, shared.size_model)
    rows: List[Dict[str, object]] = []
    try:
        with tempfile.TemporaryDirectory(prefix="repro-net-") as workdir:
            thread = ServerThread(server, transport,
                                  path=f"{workdir}/server.sock")
            thread.start()
            try:
                endpoint = make_endpoint(thread)
                for rung in connections:
                    rows.append(_probe_rung(endpoint, shared, base, rung,
                                            queries_per_connection))
            finally:
                thread.stop()
    finally:
        shared.tree.store.close()
    return {
        "transport": transport,
        "queries_per_connection": queries_per_connection,
        "connections": list(connections),
        "rungs": rows,
        "results_match": all(row["results_match"] for row in rows),
    }


def _probe_queries(base: SimulationConfig, worker: int,
                   count: int) -> List[object]:
    """A worker's deterministic query list (distinct per-worker seeds)."""
    config = base.with_overrides(
        query_count=count,
        mobility_seed=base.mobility_seed + 7919 * (worker + 1),
        workload_seed=base.workload_seed + 6007 * (worker + 1))
    return [record.query for record in generate_trace(config)]


def _probe_rung(endpoint: Endpoint, shared: SharedServerState,
                base: SimulationConfig,
                rung: int, per_connection: int) -> Dict[str, object]:
    latencies: List[List[float]] = [[] for _ in range(rung)]
    mismatches = [0] * rung
    errors: List[str] = []
    barrier = threading.Barrier(rung)
    expected = [
        [sorted(shared.server.execute(query).result_object_ids())
         for query in _probe_queries(base, worker, per_connection)]
        for worker in range(rung)]

    def work(worker: int) -> None:
        queries = _probe_queries(base, worker, per_connection)
        pool = ClientPool(endpoint, shared.size_model,
                          client_name=f"probe-{worker}", capacity=1)
        client = RemoteSessionClient(endpoint, shared.size_model, pool=pool)
        try:
            barrier.wait()
            for index, query in enumerate(queries):
                start = time.perf_counter()  # repro: allow[DET02, OBS01] latency measurement of the wire round trip
                response = client.execute(query)
                elapsed = time.perf_counter() - start  # repro: allow[DET02, OBS01] latency measurement of the wire round trip
                latencies[worker].append(elapsed)
                got = sorted(response.result_object_ids())
                if got != expected[worker][index]:
                    mismatches[worker] += 1
        except Exception as error:  # collected, not raised across threads
            errors.append(f"worker {worker}: {type(error).__name__}: "
                          f"{error}")
        finally:
            client.close()

    threads = [threading.Thread(target=work, args=(worker,),
                                name=f"probe-{worker}")
               for worker in range(rung)]
    for worker_thread in threads:
        worker_thread.start()
    for worker_thread in threads:
        worker_thread.join()
    if errors:
        raise RuntimeError("saturation probe failed: " + "; ".join(errors))
    flat = [lat * 1000.0 for worker in latencies for lat in worker]
    row: Dict[str, object] = {"connections": rung}
    row.update(latency_summary(flat))
    row["results_match"] = sum(mismatches) == 0
    return row


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty input)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def latency_summary(values_ms: Sequence[float]) -> Dict[str, object]:
    """p50 / p99 / mean of per-query wall latencies (milliseconds).

    The one latency-reporting shape shared by the saturation probe's
    rungs, the networked fleet's ``net_summary`` latency blocks and the
    status server — wall-clock throughout, so never part of a
    deterministic fingerprint.
    """
    ordered = sorted(values_ms)
    return {
        "queries": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "mean_ms": round(statistics.fmean(ordered), 3) if ordered else 0.0,
    }
