"""The synchronous client: a drop-in for the sessions' server handle.

:class:`RemoteSessionClient` exposes exactly the surface
:class:`~repro.sim.sessions.ProactiveSession` uses on its server —
``execute`` / ``root_id`` / ``root_mbr`` / ``partition_tree_for`` — so
sessions, consistency protocols and the sharded router's callers run
unchanged whether the "server" is an object in the same process or a
:class:`~repro.net.server.ReproServer` behind a socket (the ZEO-style
split: same logical API, pluggable transport).

Billing discipline: the client bills its
:class:`~repro.network.channel.WirelessChannel` the *modelled* bytes of a
query — the same ``remainder.size_bytes`` / ``response.downlink_bytes``
formulas the in-process session records in its
:class:`~repro.core.cost_model.QueryCost` — and only after a response has
been fully decoded.  A retry after a torn connection therefore never
double-bills: the failed attempt acknowledged nothing, so it billed
nothing.  Raw wire bytes (frames, headers, CRCs) are tracked separately
per connection and never enter the cost model.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.core.server import ServerResponse
from repro.core.remainder import RemainderQuery
from repro.core.supporting_index import SupportingIndexPolicy
from repro.geometry import Rect
from repro.net import codec, frames
from repro.net.frames import (
    ConnectionLost,
    ProtocolError,
    RemoteError,
)
from repro.network.channel import WirelessChannel
from repro.obs import instrument as obs
from repro.obs.instrument import perf_clock
from repro.rtree.partition_tree import PartitionTree
from repro.rtree.serialize import decode_node
from repro.rtree.sizes import SizeModel
from repro.updates.validation import (
    ValidationService,
    ValidationStamp,
    ValidationVerdict,
)
from repro.workload.queries import Query


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Endpoint:
    """Where a :class:`~repro.net.server.ReproServer` listens.

    ``transport`` is ``"uds"`` (``path`` set) or ``"tcp"`` (``host`` and
    ``port`` set).
    """

    transport: str
    path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "uds"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.transport == "uds" and not self.path:
            raise ValueError("a uds endpoint needs a socket path")

    def connect(self, timeout: float = 10.0) -> socket.socket:
        """Open a blocking socket; a refused/vanished server raises
        :class:`~repro.net.frames.ConnectionLost` like any other transport
        failure, so dialling participates in the retry discipline."""
        try:
            if self.transport == "uds":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                assert self.path is not None
                sock.connect(self.path)
            else:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as error:
            raise ConnectionLost(f"cannot reach {self.transport} "
                                 f"endpoint: {error}") from error
        return sock


class Connection:
    """One framed connection with its HELLO handshake done."""

    __slots__ = ("sock", "catalog", "has_validation", "wire_bytes_out",
                 "wire_bytes_in")

    def __init__(self, endpoint: Endpoint, size_model: SizeModel,
                 client_name: str, timeout: float) -> None:
        self.sock = endpoint.connect(timeout)
        self.wire_bytes_out = 0
        self.wire_bytes_in = 0
        hello = codec.encode_hello(client_name, size_model)
        reply_type, payload = self.exchange(frames.HELLO, hello)
        if reply_type != frames.HELLO_ACK:
            raise ProtocolError(f"expected HELLO_ACK, got "
                                f"{frames.frame_name(reply_type)}")
        root_id, root_mbr, has_validation = codec.decode_hello_ack(payload)
        self.catalog: Tuple[int, Rect] = (root_id, root_mbr)
        self.has_validation = has_validation

    def send(self, frame_type: int, payload: bytes) -> None:
        """Write one frame (no reply expected)."""
        self.wire_bytes_out += frames.write_frame_socket(
            self.sock, frame_type, payload)

    def receive(self) -> Tuple[int, bytes]:
        """Read one frame, surfacing ERROR frames as typed exceptions."""
        frame_type, payload = frames.read_frame_socket(self.sock)
        self.wire_bytes_in += frames.HEADER_BYTES + len(payload)
        if frame_type == frames.ERROR:
            code, message = codec.decode_error(payload)
            raise RemoteError(code, message)
        return frame_type, payload

    def exchange(self, frame_type: int, payload: bytes) -> Tuple[int, bytes]:
        """One request/response round trip."""
        self.send(frame_type, payload)
        return self.receive()

    def expect(self, frame_type: int, payload: bytes,
               reply: int) -> bytes:
        """A round trip whose answer must be the ``reply`` frame type."""
        got, answer = self.exchange(frame_type, payload)
        if got != reply:
            raise ProtocolError(f"expected {frames.frame_name(reply)}, got "
                                f"{frames.frame_name(got)}")
        return answer

    def close(self) -> None:
        """Drop the socket without a BYE (fault paths, pool teardown)."""
        try:
            self.sock.close()
        except OSError:
            pass


class ClientPool:
    """A small pool of framed connections to one endpoint.

    Connections are reused LIFO; a connection that saw any transport or
    protocol error is discarded, never reused — after a torn frame its
    byte stream can no longer be trusted.
    """

    def __init__(self, endpoint: Endpoint, size_model: SizeModel,
                 client_name: str = "client", capacity: int = 2,
                 timeout: float = 10.0) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be positive")
        self.endpoint = endpoint
        self.size_model = size_model
        self.client_name = client_name
        self.capacity = capacity
        self.timeout = timeout
        self._idle: List[Connection] = []
        self.connections_opened = 0
        #: Wire bytes of connections already retired from the pool.
        self._retired_wire_out = 0
        self._retired_wire_in = 0
        #: Server-side ledgers collected from BYE handshakes at close.
        self.server_ledgers: List[Dict[str, int]] = []

    def get(self) -> Connection:
        """An idle connection, or a freshly dialled one."""
        if self._idle:
            return self._idle.pop()
        self.connections_opened += 1
        return Connection(self.endpoint, self.size_model, self.client_name,
                          self.timeout)

    def release(self, connection: Connection) -> None:
        """Return a healthy connection for reuse."""
        if len(self._idle) < self.capacity:
            self._idle.append(connection)
        else:
            self._retire(connection)

    def discard(self, connection: Connection) -> None:
        """Drop a connection whose stream can no longer be trusted."""
        self._retire(connection)

    def _retire(self, connection: Connection) -> None:
        self._retired_wire_out += connection.wire_bytes_out
        self._retired_wire_in += connection.wire_bytes_in
        connection.close()

    def wire_totals(self) -> Tuple[int, int]:
        """Raw ``(bytes_out, bytes_in)`` across all pool connections."""
        out = self._retired_wire_out + sum(c.wire_bytes_out
                                           for c in self._idle)
        into = self._retired_wire_in + sum(c.wire_bytes_in
                                           for c in self._idle)
        return out, into

    def close(self) -> None:
        """BYE every idle connection, collecting the server's ledgers."""
        for connection in self._idle:
            try:
                answer = connection.expect(frames.BYE, b"",
                                           frames.BYE_ACK)
                self.server_ledgers.append(codec.decode_bye_ack(answer))
            except (frames.NetError, OSError):
                pass
            self._retire(connection)
        self._idle.clear()


class RemoteSessionClient:
    """The sessions' server handle, speaking the wire protocol.

    The root catalogue (``root_id`` / ``root_mbr``) is cached from the
    HELLO_ACK and refreshed by every RESPONSE / SYNC_ACK piggyback; the
    fleet runner calls :meth:`invalidate_catalog` after applying a server
    -side update, and the next catalogue read re-fetches it for free
    (CATALOG_REQ is unbilled metadata, exactly like the in-process
    property read).
    """

    def __init__(self, endpoint: Endpoint, size_model: SizeModel,
                 client_name: str = "client",
                 channel: Optional[WirelessChannel] = None,
                 pool: Optional[ClientPool] = None,
                 max_retries: int = 1) -> None:
        self.size_model = size_model
        self.channel = channel if channel is not None else WirelessChannel()
        self.pool = pool if pool is not None else ClientPool(
            endpoint, size_model, client_name=client_name)
        self.max_retries = max_retries
        self._catalog: Optional[Tuple[int, Rect]] = None
        self._catalog_dirty = False
        #: Transport-level retries that re-sent an unacknowledged query.
        self.retries = 0
        #: Wall-clock round-trip of every executed query, in ms.  Real
        #: socket latency: non-deterministic, surfaced in the net report's
        #: latency block and the status server, never in fingerprints.
        self.latencies: List[float] = []

    # -- catalogue -------------------------------------------------------- #
    @property
    def root_id(self) -> int:
        """Page id of the server's R-tree root."""
        return self._catalogue()[0]

    @property
    def root_mbr(self) -> Rect:
        """MBR of the server's root node."""
        return self._catalogue()[1]

    def invalidate_catalog(self) -> None:
        """Mark the cached root catalogue stale (server-side update)."""
        self._catalog_dirty = True

    def _note_catalog(self, root_id: int, root_mbr: Rect) -> None:
        self._catalog = (root_id, root_mbr)
        self._catalog_dirty = False

    def _catalogue(self) -> Tuple[int, Rect]:
        if self._catalog is None or self._catalog_dirty:
            answer = self._rpc(frames.CATALOG_REQ, b"", frames.CATALOG_ACK)
            self._note_catalog(*codec.decode_catalog_ack(answer))
        assert self._catalog is not None
        return self._catalog

    # -- queries ---------------------------------------------------------- #
    def execute(self, query: Query,
                remainder: Optional[RemainderQuery] = None,
                policy: Optional[SupportingIndexPolicy] = None
                ) -> ServerResponse:
        """Run one (remainder) query on the remote server.

        Mirrors :meth:`repro.core.server.ServerQueryProcessor.execute`
        argument-for-argument.  A connection lost before the response was
        decoded is retried (``max_retries`` times) on a fresh connection:
        nothing was billed for the failed attempt, so the retry cannot
        double-bill, and the server's ledger likewise only counts answers
        it fully shipped.
        """
        start = perf_clock()
        request = codec.encode_query_request(query, remainder, policy)
        payload = self._request_with_retry(frames.QUERY, request,
                                           frames.RESPONSE)
        response, root_id, root_mbr = codec.decode_response(payload)
        self._note_catalog(root_id, root_mbr)
        if remainder is not None:
            uplink = remainder.size_bytes(self.size_model)
        else:
            uplink = query.descriptor_bytes(self.size_model)
        self.channel.send_uplink(uplink)
        downlink = response.downlink_bytes(self.size_model)
        self.channel.send_downlink(downlink)
        self.latencies.append((perf_clock() - start) * 1000.0)
        if obs.ENABLED:
            obs.active().event("net.query", uplink_bytes=uplink,
                               downlink_bytes=downlink,
                               retries_so_far=self.retries)
        return response

    def partition_tree_for(self, node_id: int) -> PartitionTree:
        """Build the node's partition tree from its fetched page."""
        answer = self._rpc(frames.NODE_REQ, codec.encode_node_request(node_id),
                           frames.NODE_ACK)
        page = codec.decode_node_ack(answer)
        if page is None:
            raise KeyError(f"server has no node {node_id}")
        return PartitionTree(decode_node(page))

    # -- plumbing ---------------------------------------------------------- #
    def _request_with_retry(self, frame_type: int, payload: bytes,
                            reply: int) -> bytes:
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                connection = self.pool.get()
            except ConnectionLost:
                if attempt + 1 >= attempts:
                    raise
                self.retries += 1
                continue
            try:
                answer = connection.expect(frame_type, payload, reply)
            except ConnectionLost:
                self.pool.discard(connection)
                if attempt + 1 >= attempts:
                    raise
                self.retries += 1
                continue
            except frames.NetError:
                self.pool.discard(connection)
                raise
            self.pool.release(connection)
            return answer
        raise AssertionError("unreachable")  # pragma: no cover

    def _rpc(self, frame_type: int, payload: bytes, reply: int) -> bytes:
        return self._request_with_retry(frame_type, payload, reply)

    def send_oneway(self, frame_type: int, payload: bytes) -> None:
        """Fire-and-forget frame (SYNC_DONE) on a pooled connection."""
        connection = self.pool.get()
        try:
            connection.send(frame_type, payload)
        except ConnectionLost:
            self.pool.discard(connection)
            raise
        self.pool.release(connection)

    def close(self) -> None:
        """Close the pool, collecting the server-side ledgers."""
        self.pool.close()

    def server_ledger(self) -> Dict[str, int]:
        """Summed server-side ledgers of this client's closed connections."""
        total = {field: 0 for field in codec.LEDGER_FIELDS}
        for ledger in self.pool.server_ledgers:
            for field, value in ledger.items():
                total[field] += value
        return total


class NetValidationService(ValidationService):
    """The versioned protocol's validation service, over the wire.

    Shares the session's :class:`RemoteSessionClient` (same pool, same
    channel), so handshake traffic lands on the same connection ledger as
    the queries it precedes.  ``finish_sync`` bills the handshake's
    modelled bytes to the channel and reports the applied downlink to the
    server with a one-way SYNC_DONE — only the client knows how many
    shipped refresh bytes survived its drop cascades.
    """

    def __init__(self, client: RemoteSessionClient) -> None:
        self.client = client

    def validate(self, stamps: Sequence[ValidationStamp]
                 ) -> List[ValidationVerdict]:
        """Ship the stamp batch, decode the verdict batch."""
        answer = self.client._rpc(frames.SYNC,
                                  codec.encode_sync_request(stamps),
                                  frames.SYNC_ACK)
        verdicts, root_id, root_mbr = codec.decode_sync_ack(answer)
        self.client._note_catalog(root_id, root_mbr)
        return verdicts

    def current_versions(self, node_ids: Sequence[int],
                         object_ids: Sequence[int]
                         ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Fetch current version stamps (free metadata, like in-process)."""
        answer = self.client._rpc(
            frames.VERSIONS,
            codec.encode_versions_request(node_ids, object_ids),
            frames.VERSIONS_ACK)
        return codec.decode_versions_ack(answer)

    def finish_sync(self, uplink_bytes: int, downlink_bytes: int) -> None:
        """Bill the handshake and report the applied downlink upstream."""
        self.client.channel.send_uplink(uplink_bytes)
        self.client.channel.send_downlink(downlink_bytes)
        self.client.send_oneway(frames.SYNC_DONE,
                                codec.encode_sync_done(downlink_bytes))
