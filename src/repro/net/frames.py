"""The wire frame layer: length-prefixed, CRC-checked binary frames.

Every message on a connection is one frame::

    <2s magic "RP"> <B frame type> <I payload length> <I crc32(payload)>
    <payload>

All integers are little-endian fixed width, matching the page codecs of
:mod:`repro.rtree.serialize`.  The CRC covers the payload only; the header
is validated structurally (magic, known type, sane length).  Frames are
self-delimiting, so a reader can always tell a *torn* stream (EOF inside a
frame — the peer died mid-write) from a *garbled* one (bytes arrived but
fail the magic / CRC check) and surfaces each as its own typed error.

The module is transport-agnostic: :func:`read_frame_async` serves the
asyncio server, :func:`read_frame_socket` the synchronous client, and
:class:`PayloadReader` gives the payload codecs bounds-checked access so a
truncated payload is rejected (``FrameError``) instead of crashing in
``struct``.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import zlib
from typing import Tuple

MAGIC = b"RP"

_HEADER = struct.Struct("<2sBII")

#: Encoded size of a frame header.
HEADER_BYTES = _HEADER.size

#: Upper bound on one frame's payload; a length field beyond this is
#: treated as garbage (a garbled header), not an allocation request.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

# Frame types.  Values are wire constants — never renumber, only append.
HELLO = 1
HELLO_ACK = 2
QUERY = 3
RESPONSE = 4
SYNC = 5
SYNC_ACK = 6
SYNC_DONE = 7
VERSIONS = 8
VERSIONS_ACK = 9
NODE_REQ = 10
NODE_ACK = 11
CATALOG_REQ = 12
CATALOG_ACK = 13
BYE = 14
BYE_ACK = 15
ERROR = 16

FRAME_NAMES = {
    HELLO: "HELLO", HELLO_ACK: "HELLO_ACK",
    QUERY: "QUERY", RESPONSE: "RESPONSE",
    SYNC: "SYNC", SYNC_ACK: "SYNC_ACK", SYNC_DONE: "SYNC_DONE",
    VERSIONS: "VERSIONS", VERSIONS_ACK: "VERSIONS_ACK",
    NODE_REQ: "NODE_REQ", NODE_ACK: "NODE_ACK",
    CATALOG_REQ: "CATALOG_REQ", CATALOG_ACK: "CATALOG_ACK",
    BYE: "BYE", BYE_ACK: "BYE_ACK",
    ERROR: "ERROR",
}


class NetError(Exception):
    """Base class of every networking failure the package raises."""


class FrameError(NetError):
    """A garbled or truncated frame: bad magic, bad CRC, bad payload."""


class ConnectionLost(NetError):
    """The peer vanished: EOF, reset, or a torn (half-written) frame."""

    def __init__(self, message: str, torn: bool = False) -> None:
        super().__init__(message)
        #: True when the stream died *inside* a frame — the peer was
        #: killed mid-write — rather than at a clean frame boundary.
        self.torn = torn


class RemoteError(NetError):
    """A failure the server reported through an ERROR frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class ProtocolError(NetError):
    """An unexpected frame where the protocol state machine forbids it."""


def frame_name(frame_type: int) -> str:
    """Human-readable name of a frame type (for error messages)."""
    return FRAME_NAMES.get(frame_type, f"frame#{frame_type}")


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One complete frame: header plus payload."""
    if frame_type not in FRAME_NAMES:
        raise ValueError(f"unknown frame type {frame_type}")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ValueError(f"payload of {len(payload)} bytes exceeds the "
                         f"{MAX_PAYLOAD_BYTES}-byte frame limit")
    return _HEADER.pack(MAGIC, frame_type, len(payload),
                        zlib.crc32(payload)) + payload


def split_header(header: bytes) -> Tuple[int, int, int]:
    """Validate a frame header; returns ``(type, payload_length, crc)``."""
    if len(header) != HEADER_BYTES:
        raise FrameError(f"short frame header ({len(header)} of "
                         f"{HEADER_BYTES} bytes)")
    magic, frame_type, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if frame_type not in FRAME_NAMES:
        raise FrameError(f"unknown frame type {frame_type}")
    if length > MAX_PAYLOAD_BYTES:
        raise FrameError(f"frame length {length} exceeds the "
                         f"{MAX_PAYLOAD_BYTES}-byte limit")
    return frame_type, length, crc


def check_payload(payload: bytes, crc: int) -> None:
    """Reject a payload whose CRC32 does not match its header."""
    actual = zlib.crc32(payload)
    if actual != crc:
        raise FrameError(f"frame CRC mismatch (header {crc:#010x}, "
                         f"payload {actual:#010x})")


def decode_frame(data: bytes) -> Tuple[int, bytes]:
    """Decode one complete frame held in memory (tests, buffers)."""
    frame_type, length, crc = split_header(data[:HEADER_BYTES])
    payload = data[HEADER_BYTES:]
    if len(payload) != length:
        raise FrameError(f"frame payload is {len(payload)} bytes, header "
                         f"says {length}")
    check_payload(payload, crc)
    return frame_type, payload


async def read_frame_async(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one frame from an asyncio stream.

    EOF at a frame boundary raises a clean :class:`ConnectionLost`; EOF
    inside a frame raises a *torn* one.  Garbled bytes raise
    :class:`FrameError` — the caller must drop the connection, since frame
    boundaries can no longer be trusted.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise ConnectionLost("connection closed") from error
        raise ConnectionLost(
            f"torn frame header ({len(error.partial)} of {HEADER_BYTES} "
            f"bytes)", torn=True) from error
    except (ConnectionError, OSError) as error:
        raise ConnectionLost(f"connection lost: {error}") from error
    frame_type, length, crc = split_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionLost(
            f"torn {frame_name(frame_type)} frame ({len(error.partial)} of "
            f"{length} payload bytes)", torn=True) from error
    except (ConnectionError, OSError) as error:
        raise ConnectionLost(f"connection lost: {error}") from error
    check_payload(payload, crc)
    return frame_type, payload


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Blocking exact read; raises ``ConnectionLost`` on EOF/reset."""
    chunks = []
    received = 0
    while received < count:
        try:
            chunk = sock.recv(count - received)
        except (ConnectionError, OSError) as error:
            raise ConnectionLost(f"connection lost: {error}") from error
        if not chunk:
            if received == 0:
                raise ConnectionLost("connection closed")
            raise ConnectionLost(
                f"torn frame ({received} of {count} bytes)", torn=True)
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame_socket(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame from a blocking socket (the synchronous client)."""
    header = _recv_exactly(sock, HEADER_BYTES)
    frame_type, length, crc = split_header(header)
    payload = _recv_exactly(sock, length) if length else b""
    check_payload(payload, crc)
    return frame_type, payload


def write_frame_socket(sock: socket.socket, frame_type: int,
                       payload: bytes) -> int:
    """Write one frame to a blocking socket; returns the wire byte count."""
    data = encode_frame(frame_type, payload)
    try:
        sock.sendall(data)
    except (ConnectionError, OSError) as error:
        raise ConnectionLost(f"connection lost: {error}") from error
    return len(data)


class PayloadReader:
    """Bounds-checked sequential access to one frame payload.

    The payload codecs read through this so a truncated or oversized
    payload surfaces as a :class:`FrameError` — the same taxonomy as a
    failed CRC — rather than an uncaught ``struct.error``.
    """

    __slots__ = ("_data", "_offset")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return len(self._data) - self._offset

    def unpack(self, codec: struct.Struct) -> Tuple[object, ...]:
        """Read one fixed-width struct record."""
        if self.remaining < codec.size:
            raise FrameError(f"truncated payload: needed {codec.size} "
                             f"bytes, {self.remaining} left")
        values = codec.unpack_from(self._data, self._offset)
        self._offset += codec.size
        return values

    def read_bytes(self, count: int) -> bytes:
        """Read a raw byte run (length-prefixed strings, embedded pages)."""
        if count < 0 or self.remaining < count:
            raise FrameError(f"truncated payload: needed {count} bytes, "
                             f"{self.remaining} left")
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def expect_end(self) -> None:
        """Reject trailing garbage after the last decoded field."""
        if self.remaining:
            raise FrameError(f"{self.remaining} trailing bytes after the "
                             "final payload field")
