"""Small version-compatibility shims.

``DATACLASS_SLOTS`` lets the hot dataclasses (geometry primitives, R-tree
entries, cache item metadata) opt into ``__slots__`` on Python 3.10+ —
``@dataclass(slots=True)`` generates the correct ``__getstate__`` /
``__setstate__`` pair so frozen slotted instances still pickle (the fleet
runner ships traces across process boundaries).  On 3.9 the flag does not
exist, so the classes silently fall back to ``__dict__`` storage there.
"""

from __future__ import annotations

import sys

DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}
