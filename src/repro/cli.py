"""Command-line interface for running simulations and paper experiments.

Installed as the ``repro`` console script (also runnable as
``python -m repro.cli``; the legacy ``repro-spatial-cache`` alias is kept).
Five sub-commands are provided:

* ``compare`` — run PAG / SEM / APRO (and optionally FPRO / CPRO) on one
  trace and print the headline metrics;
* ``fleet`` — simulate many heterogeneous clients against one shared server
  and print per-group and server-load metrics;
* ``figure`` — regenerate one of the paper's figures (``6``–``11``,
  ``table61`` or ``overheads``);
* ``params`` — print the Table 6.1 parameter sheet for a configuration;
* ``bench`` — run the perf-regression scenario suite, write a
  ``BENCH_*.json`` report and optionally gate against a committed baseline.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.experiments import fig6, fig7, fig8, fig9, fig10, fig11, overheads, table61
from repro.experiments.report import format_fleet_report, format_table
from repro.sim.config import SimulationConfig
from repro.sim.fleet import ClientGroupSpec, FleetConfig, default_fleet, run_fleet
from repro.sim.runner import run_comparison


_FIGURES = {
    "6": fig6,
    "7": fig7,
    "8": fig8,
    "9": fig9,
    "10": fig10,
    "11": fig11,
    "table61": table61,
    "overheads": overheads,
}


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queries", type=int, default=250,
                        help="number of queries to simulate (default: 250)")
    parser.add_argument("--objects", type=int, default=4_000,
                        help="number of data objects (default: 4000)")
    parser.add_argument("--dataset", choices=("NE", "RD", "UNIFORM"), default="NE",
                        help="synthetic dataset family (default: NE)")
    parser.add_argument("--mobility", choices=("RAN", "DIR"), default="RAN",
                        help="mobility model (default: RAN)")
    parser.add_argument("--cache", type=float, default=0.01,
                        help="cache size as a fraction of the dataset (default: 0.01)")
    parser.add_argument("--replacement", default="GRD3",
                        help="replacement policy for proactive caching (default: GRD3)")
    parser.add_argument("--seed", type=int, default=7, help="dataset seed (default: 7)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full Table 6.1 parameters instead "
                             "of the scaled defaults (very slow in pure Python)")


def config_from_args(args: argparse.Namespace) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from parsed CLI arguments."""
    if getattr(args, "paper_scale", False):
        base = SimulationConfig.paper()
        return base.with_overrides(mobility_model=args.mobility,
                                   cache_fraction=args.cache,
                                   replacement_policy=args.replacement)
    return SimulationConfig.scaled(query_count=args.queries, object_count=args.objects,
                                   seed=args.seed).with_overrides(
        dataset_name=args.dataset,
        mobility_model=args.mobility,
        cache_fraction=args.cache,
        replacement_policy=args.replacement)


def _run_compare(args: argparse.Namespace) -> str:
    config = config_from_args(args)
    models = tuple(model.strip().upper() for model in args.models.split(","))
    results = run_comparison(config, models=models)
    metrics = ("uplink_bytes", "downlink_bytes", "cache_hit_rate", "byte_hit_rate",
               "false_miss_rate", "response_time", "client_cpu_ms")
    rows = [[metric] + [results[m].summary()[metric] for m in models] for metric in metrics]
    return format_table(["metric"] + list(models), rows,
                        title=f"Caching model comparison ({config.query_count} queries, "
                              f"|C|={config.cache_fraction:.1%}, {config.mobility_model})")


_GROUP_MODELS = ("PAG", "SEM", "APRO", "FPRO", "CPRO")
_GROUP_MOBILITY = ("RAN", "DIR")


def parse_group_spec(text: str) -> ClientGroupSpec:
    """Parse one ``--group`` value.

    Format: ``name:count[:mobility[:model[:cache_fraction[:speed_factor]]]]``,
    e.g. ``vehicles:20:DIR:APRO:0.005:8``.  Model and mobility names are
    validated here so a typo fails at parse time, not mid-run (possibly
    inside a worker process).
    """
    parts = text.split(":")
    if len(parts) < 2:
        raise argparse.ArgumentTypeError(
            f"group spec {text!r} must be name:count[:mobility[:model[:cache[:speed]]]]")
    try:
        spec = ClientGroupSpec(
            name=parts[0],
            clients=int(parts[1]),
            mobility_model=parts[2].upper() if len(parts) > 2 and parts[2] else "RAN",
            model=parts[3].upper() if len(parts) > 3 and parts[3] else "APRO",
            cache_fraction=float(parts[4]) if len(parts) > 4 and parts[4] else None,
            speed_factor=float(parts[5]) if len(parts) > 5 and parts[5] else 1.0,
        )
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad group spec {text!r}: {error}")
    if spec.mobility_model not in _GROUP_MOBILITY:
        raise argparse.ArgumentTypeError(
            f"bad group spec {text!r}: mobility must be one of {_GROUP_MOBILITY}")
    if spec.model not in _GROUP_MODELS:
        raise argparse.ArgumentTypeError(
            f"bad group spec {text!r}: model must be one of {_GROUP_MODELS}")
    return spec


def _run_fleet(args: argparse.Namespace) -> str:
    base = SimulationConfig.scaled(query_count=args.queries, object_count=args.objects,
                                   seed=args.seed).with_overrides(
        dataset_name=args.dataset, cache_fraction=args.cache,
        replacement_policy=args.replacement)
    try:
        if args.group:
            fleet = FleetConfig.make(base, args.group, fleet_seed=args.fleet_seed)
        else:
            fleet = default_fleet(args.clients, base=base, fleet_seed=args.fleet_seed)
    except ValueError as error:
        # Cross-group validation (duplicate names, non-positive totals) that
        # parse_group_spec cannot see: fail like an argparse error, not a
        # traceback.
        raise SystemExit(f"repro fleet: error: {error}")
    result = run_fleet(fleet, max_workers=args.workers)
    mode = f"{args.workers} worker processes" if args.workers and args.workers > 1 \
        else "serial"
    return format_fleet_report(
        result, title=f"Fleet simulation — {fleet.total_clients} clients, "
                      f"{len(fleet.groups)} groups, 1 shared server ({mode})")


def _run_figure(args: argparse.Namespace) -> str:
    module = _FIGURES[args.figure]
    config = config_from_args(args)
    if args.figure in ("table61", "overheads"):
        return module.render(module.run(config))
    if args.figure == "11":
        config = fig11.default_config(query_count=config.query_count).with_overrides(
            object_count=config.object_count)
        return module.render(module.run(config))
    return module.render(module.run(config))


def _run_params(args: argparse.Namespace) -> str:
    return table61.render(table61.run(config_from_args(args)))


def _run_bench(args: argparse.Namespace) -> str:
    from repro.perf import (
        compare_to_baseline, format_report, load_report, run_suite,
        scenario_names, write_report,
    )
    if args.check and not args.baseline:
        # A gate that never ran must not look like a gate that passed.
        raise SystemExit("repro bench: error: --check requires --baseline")
    names = args.scenario or scenario_names()
    current = run_suite(names, scale=args.scale, repeats=args.repeats,
                        measure_allocations=not args.no_alloc,
                        label=args.label, progress=print)
    baseline = None
    comparison = None
    if args.baseline:
        baseline = load_report(args.baseline, section=args.baseline_section)
        comparison = compare_to_baseline(current, baseline,
                                         max_regression=args.max_regression)
    if args.output:
        write_report(args.output, current, baseline=baseline,
                     meta={"command": "repro bench", "scale": args.scale})
    report = format_report(current, comparison)
    if args.check and comparison is not None:
        failures = [e.name for e in comparison if e.regressed]
        mismatches = [e.name for e in comparison if e.fingerprint_matches is False]
        if failures or mismatches:
            print(report)
            problems = []
            if failures:
                problems.append(
                    f"wall-clock regression > {args.max_regression:.0%} in: "
                    + ", ".join(failures))
            if mismatches:
                problems.append("behaviour fingerprint mismatch in: "
                                + ", ".join(mismatches))
            raise SystemExit("repro bench: FAILED — " + "; ".join(problems))
    return report


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proactive caching for spatial queries (ICDE 2005) — simulator CLI")
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="compare caching models on one trace")
    compare.add_argument("--models", default="PAG,SEM,APRO",
                         help="comma-separated models (PAG, SEM, APRO, FPRO, CPRO)")
    _add_config_arguments(compare)
    compare.set_defaults(handler=_run_compare)

    fleet = subparsers.add_parser(
        "fleet", help="simulate many heterogeneous clients against one shared server")
    fleet.add_argument("--clients", type=int, default=12,
                       help="total clients, split over the default heterogeneous "
                            "groups when no --group is given (default: 12)")
    fleet.add_argument("--group", action="append", type=parse_group_spec, default=[],
                       metavar="NAME:COUNT[:MOBILITY[:MODEL[:CACHE[:SPEED]]]]",
                       help="explicit client group (repeatable); overrides --clients")
    fleet.add_argument("--queries", type=int, default=40,
                       help="queries per client (default: 40)")
    fleet.add_argument("--objects", type=int, default=4_000,
                       help="number of data objects (default: 4000)")
    fleet.add_argument("--dataset", choices=("NE", "RD", "UNIFORM"), default="NE",
                       help="synthetic dataset family (default: NE)")
    fleet.add_argument("--cache", type=float, default=0.01,
                       help="base cache fraction, groups may scale it (default: 0.01)")
    fleet.add_argument("--replacement", default="GRD3",
                       help="replacement policy for proactive clients (default: GRD3)")
    fleet.add_argument("--seed", type=int, default=7, help="dataset seed (default: 7)")
    fleet.add_argument("--fleet-seed", type=int, default=101,
                       help="seed decorrelating per-client traces (default: 101)")
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker processes; >1 shards the fleet (default: 1)")
    fleet.set_defaults(handler=_run_fleet)

    figure = subparsers.add_parser("figure", help="regenerate a figure from the paper")
    figure.add_argument("figure", choices=sorted(_FIGURES),
                        help="which figure/table to regenerate")
    _add_config_arguments(figure)
    figure.set_defaults(handler=_run_figure)

    params = subparsers.add_parser("params", help="print the Table 6.1 parameter sheet")
    _add_config_arguments(params)
    params.set_defaults(handler=_run_params)

    bench = subparsers.add_parser(
        "bench", help="run the perf-regression scenario suite")
    bench.add_argument("--scenario", action="append", default=[],
                       help="scenario to run (repeatable; default: all)")
    bench.add_argument("--scale", choices=("default", "smoke"), default="default",
                       help="scenario scale: committed-baseline 'default' or "
                            "CI-sized 'smoke' (default: default)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per scenario; best-of is reported "
                            "(default: 3)")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="write the BENCH_*.json report here")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="committed BENCH_*.json to compare against")
    bench.add_argument("--baseline-section", choices=("current", "baseline"),
                       default="current",
                       help="which section of the baseline file to compare "
                            "against (default: current)")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed fractional wall-clock growth before "
                            "--check fails (default: 0.25)")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero on regression or fingerprint mismatch")
    bench.add_argument("--no-alloc", action="store_true",
                       help="skip the tracemalloc instrumentation pass")
    bench.add_argument("--label", default="",
                       help="free-form label stored in the report")
    bench.set_defaults(handler=_run_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.handler(args))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
